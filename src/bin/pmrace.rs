//! `pmrace`: command-line front end for the fuzzer.
//!
//! ```text
//! pmrace list
//! pmrace fuzz --list-targets
//! pmrace fuzz <target> [--secs N] [--campaigns N] [--workers N]
//!                      [--strategy pmrace|delay|none|systematic] [--threads N]
//!                      [--eadr] [--no-checkpoint] [--seed N]
//!                      [--report-dir DIR] [--corpus-dir DIR] [--whitelist RULE]...
//!                      [--telemetry DIR] [--progress SECS]
//! pmrace replay <target> <seed-file>
//! ```
//!
//! `fuzz` runs the PM-aware coverage-guided fuzzer and prints the unique
//! bugs; with `--report-dir` it also writes one detailed report file per
//! bug (including the triggering seed). `--workers N` runs a fleet of N
//! exploration workers sharing one wait-free coverage frontier and a
//! sharded cross-worker seed pool: a seed that unlocks coverage on one
//! worker is evolved by the others within a few campaigns, duplicate
//! findings are absorbed without a global lock, and campaigns are
//! scheduler-sleep-bound, so aggregate execs/sec scales near-linearly even
//! on a single CPU (`repro hotpath`'s `fleet_execs` cells track the curve).
//! `--workers` defaults to the machine's available parallelism (capped at
//! 8); pass `--workers 1` for fully deterministic runs — a single worker
//! executes one campaign at a time with inline validation, so the same
//! seed always reproduces the same bugs byte for byte.
//! Each worker draws from its own deterministic RNG stream, so seeded runs
//! stay replayable; with `--progress`, multi-worker runs print a per-worker
//! execs/s split. `fuzz --list-targets` prints every
//! target registered with the process-global registry (the built-ins, the
//! lock-free suite, plus any runtime-registered plugins; `list` shows just
//! the paper's five) along with each target's seed-grammar summary: key
//! universe, hot-key prefix, value/step bounds, and the relative op
//! weights the mutator draws from. `--telemetry DIR` turns the
//! observability layer on and writes `telemetry.json` + `trace.jsonl` into
//! DIR when the run finishes (render them with `repro stats DIR`;
//! schema in `docs/OBSERVABILITY.md`), and `--progress SECS` prints a
//! progress line to stderr every SECS seconds. `replay` re-executes a seed
//! file from such a report and prints the raw checker findings.

use std::time::Duration;

use pmrace::core::report_io;
use pmrace::core::{run_campaign, CampaignConfig};
use pmrace::{all_targets, target_spec, FuzzConfig, Fuzzer, Seed, StrategyKind};

fn usage() -> ! {
    eprintln!(
        "usage:\n  pmrace list\n  pmrace fuzz --list-targets\n  \
         pmrace fuzz <target> [--secs N] [--campaigns N] \
         [--workers N] [--threads N] [--strategy pmrace|delay|none|systematic] [--eadr] \
         [--no-checkpoint] [--seed N] [--report-dir DIR] [--corpus-dir DIR] [--whitelist RULE]... \
         [--telemetry DIR] [--progress SECS]\n  pmrace replay <target> <seed-file>"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Default `--workers`: the machine's available parallelism, capped at 8 —
/// the largest fleet the tracked `fleet_execs` scaling curve covers, and
/// past the knee of the curve even on a single CPU (campaigns are
/// scheduler-sleep-bound, so worker counts beyond the core count still
/// overlap productively). `--workers 1` is the escape hatch when
/// bit-for-bit deterministic, replayable runs matter more than throughput:
/// a single worker drains one campaign at a time and validates inline.
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().clamp(1, 8))
}

/// One-line seed-grammar summary for `fuzz --list-targets`: the bounds
/// the mutator draws keys/values from plus the relative op weights.
fn grammar_summary(hints: &pmrace::SeedHints) -> String {
    let w = &hints.weights;
    format!(
        "keys 1..={} (hot {}) values <{} steps <{} | weights: insert {} get {} update {} \
         delete {} incr {} decr {}",
        hints.key_range,
        hints.hot_keys,
        hints.max_value,
        hints.max_step,
        w.insert,
        w.get,
        w.update,
        w.delete,
        w.incr,
        w.decr,
    )
}

fn main() {
    // Targets resolve by name through the process-global registry; make
    // the five built-ins and the lock-free suite available before
    // anything looks one up.
    pmrace::register_builtins();
    pmrace::register_lockfree();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available targets (Table 1 of the paper):");
            for spec in all_targets() {
                println!("  {}", spec.name);
            }
        }
        Some("fuzz") if args.iter().any(|a| a == "--list-targets") => {
            // Everything currently registered — built-ins, the lock-free
            // suite, plus whatever plugin targets this process registered
            // at runtime — with each target's op grammar.
            println!("registered targets (registration order):");
            for spec in pmrace::api::all_targets() {
                println!("  {:<16} {}", spec.name, grammar_summary(&spec.hints));
            }
        }
        Some("fuzz") => {
            let Some(target) = args.get(1).filter(|a| !a.starts_with("--")) else {
                usage();
            };
            let mut cfg = FuzzConfig::new(target);
            cfg.wall_budget = Duration::from_secs(
                flag_value(&args, "--secs")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(30),
            );
            if let Some(n) = flag_value(&args, "--campaigns").and_then(|v| v.parse().ok()) {
                cfg.max_campaigns = n;
            } else {
                cfg.max_campaigns = usize::MAX;
            }
            cfg.workers = flag_value(&args, "--workers")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(default_workers);
            if let Some(t) = flag_value(&args, "--threads").and_then(|v| v.parse().ok()) {
                cfg.threads = t;
            }
            if let Some(s) = flag_value(&args, "--seed").and_then(|v| v.parse().ok()) {
                cfg.rng_seed = s;
            }
            cfg.strategy = match flag_value(&args, "--strategy").as_deref() {
                None | Some("pmrace") => StrategyKind::Pmrace,
                Some("delay") => StrategyKind::Delay { max_delay_us: 1000 },
                Some("none") => StrategyKind::None,
                Some("systematic") => StrategyKind::Systematic,
                Some(other) => {
                    eprintln!("unknown strategy {other:?}");
                    std::process::exit(2);
                }
            };
            cfg.eadr = args.iter().any(|a| a == "--eadr");
            if let Some(dir) = flag_value(&args, "--corpus-dir") {
                cfg.corpus_dir = Some(dir.into());
            }
            // Repeatable: --whitelist <rule> adds a site-label substring.
            let mut i = 0;
            while i < args.len() {
                if args[i] == "--whitelist" {
                    if let Some(rule) = args.get(i + 1) {
                        cfg.extra_whitelist.push(rule.clone());
                    }
                }
                i += 1;
            }
            cfg.use_checkpoint = !args.iter().any(|a| a == "--no-checkpoint");
            if let Some(dir) = flag_value(&args, "--telemetry") {
                cfg.telemetry_dir = Some(dir.into());
            }
            if let Some(secs) = flag_value(&args, "--progress").and_then(|v| v.parse::<f64>().ok())
            {
                cfg.progress_interval = Some(Duration::from_secs_f64(secs.max(0.05)));
            }
            let telemetry_dir = cfg.telemetry_dir.clone();

            println!(
                "fuzzing {target} for {:?} ({} workers, {} strategy{})...",
                cfg.wall_budget,
                cfg.workers,
                match cfg.strategy {
                    StrategyKind::Pmrace => "pmrace",
                    StrategyKind::Delay { .. } => "delay-injection",
                    StrategyKind::Systematic => "systematic",
                    StrategyKind::None => "no",
                },
                if cfg.eadr { ", eADR model" } else { "" },
            );
            let fuzzer = match Fuzzer::new(cfg) {
                Ok(f) => f,
                Err(e @ pmrace::runtime::RtError::UnknownTarget(_)) => {
                    eprintln!("error: {e}");
                    eprintln!("hint: `pmrace fuzz --list-targets` shows what this binary knows");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("fuzzing failed: {e}");
                    std::process::exit(1);
                }
            };
            let report = match fuzzer.run() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fuzzing failed: {e}");
                    std::process::exit(1);
                }
            };
            let s = report.stats;
            println!(
                "\n{} campaigns ({:.1}/s, {:.0} PM accesses/s) | alias pairs {} | \
                 candidates {} | inconsistencies {} | validated FP {} | \
                 whitelisted FP {} | sync {} ({} benign)",
                report.campaigns,
                report.execs_per_sec,
                report.accesses_per_sec,
                report.alias_pairs,
                s.inter_candidates + s.intra_candidates,
                s.inter + s.intra,
                s.validated_fp,
                s.whitelisted_fp,
                s.sync,
                s.sync_validated_fp,
            );
            println!("\nunique bugs ({}):", report.bugs.len());
            for bug in &report.bugs {
                println!("  {bug}");
            }
            if let Some(dir) = flag_value(&args, "--report-dir") {
                match report_io::write_reports(std::path::Path::new(&dir), &report) {
                    Ok(paths) => println!("\nwrote {} report file(s) under {dir}", paths.len()),
                    Err(e) => eprintln!("failed to write reports: {e}"),
                }
            }
            if let Some(dir) = telemetry_dir {
                println!(
                    "wrote telemetry.json + trace.jsonl under {} (render with `repro stats`)",
                    dir.display()
                );
            }
        }
        Some("replay") => {
            let (Some(target), Some(path)) = (args.get(1), args.get(2)) else {
                usage();
            };
            let Some(spec) = target_spec(target) else {
                eprintln!("unknown target {target:?}; try `pmrace list`");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            // Accept either a bare seed file or a full bug report (seed at
            // the end, after the marker line).
            let seed_text = text.rsplit("driver thread):\n").next().unwrap_or(&text);
            let seed = match Seed::parse(seed_text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse seed: {e}");
                    std::process::exit(1);
                }
            };
            println!("replaying {seed} against {target}...");
            let cfg = CampaignConfig {
                threads: seed.num_threads(),
                deadline: Duration::from_secs(3),
                ..CampaignConfig::default()
            };
            match run_campaign(&spec, &seed, &cfg, None, None) {
                Ok(res) => {
                    println!(
                        "hang={} | candidates {} | inconsistencies {} | sync updates {}",
                        res.findings.hang,
                        res.findings.candidates.len(),
                        res.findings.inconsistencies.len(),
                        res.findings.sync_updates.len(),
                    );
                    for rec in &res.findings.inconsistencies {
                        println!("  {rec}");
                    }
                    for upd in &res.findings.sync_updates {
                        println!("  {upd}");
                    }
                }
                Err(e) => {
                    eprintln!("replay failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}

//! # PMRace — PM-aware coverage-guided fuzzing for persistent-memory
//! concurrency bugs
//!
//! A Rust reproduction of *"Efficiently Detecting Concurrency Bugs in
//! Persistent Memory Programs"* (ASPLOS 2022). PMRace finds two new classes
//! of crash-consistency bugs that only manifest in concurrent executions:
//!
//! - **PM Inter-thread Inconsistency** — a thread makes durable side
//!   effects based on *non-persisted* data written by another thread; a
//!   crash loses the dependency but keeps the effect.
//! - **PM Synchronization Inconsistency** — synchronization state (locks)
//!   persisted to PM survives a crash while the threads holding it do not,
//!   hanging the restarted program.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`api`] — the public target API (the [`Target`] trait,
//!   [`TargetSpec`], seed-grammar hints, and the process-global target
//!   registry out-of-tree workloads plug into);
//! - [`pmem`] — software PM substrate (volatile/persistent images,
//!   cache-line persistency states, crash snapshots, persistent allocator);
//! - [`runtime`] — instrumentation runtime (hooked access layer, taint,
//!   PM alias-pair coverage, checkers, annotations);
//! - [`sched`] — interleaving exploration (the Fig. 6 conditional-wait
//!   scheduler and the delay-injection baseline);
//! - [`targets`] — the five evaluated PM systems, re-implemented with the
//!   paper's bugs seeded;
//! - [`lockfree`] — the lock-free persistent data-structure suite
//!   (Treiber stack, Harris-style list, Michael–Scott queue) with
//!   CAS-publication bugs planted and an exactly-once recovery audit;
//! - [`core`] — the fuzzer (operation mutator, three-tier exploration,
//!   post-failure validation, bug ledger);
//! - [`replay`] — deterministic record/replay (schedule capture, repro
//!   artifacts, ddmin minimization, the regression corpus);
//! - [`telemetry`] — the observability layer (lock-free metrics registry,
//!   phase spans, `telemetry.json` snapshots; see `docs/OBSERVABILITY.md`).
//!
//! # Quickstart
//!
//! Fuzz one of the bundled targets for a few campaigns and inspect what
//! was found:
//!
//! ```
//! use pmrace::{FuzzConfig, Fuzzer};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), pmrace::runtime::RtError> {
//! pmrace::register_builtins(); // targets resolve through the registry
//! let mut cfg = FuzzConfig::new("clevel");
//! cfg.max_campaigns = 3;
//! cfg.threads = 2;
//! cfg.wall_budget = Duration::from_secs(10);
//! let report = Fuzzer::new(cfg)?.run()?;
//! println!(
//!     "{}: {} campaigns, {} candidates, {} whitelisted FPs, {} bugs",
//!     report.target,
//!     report.campaigns,
//!     report.stats.inter_candidates + report.stats.intra_candidates,
//!     report.stats.whitelisted_fp,
//!     report.bugs.len(),
//! );
//! # Ok(()) }
//! ```
//!
//! See `examples/` for targeted bug hunts, custom checkers, plugin
//! targets (`examples/mpsc_queue/`) and protocol fuzzing, and
//! `crates/bench` for the harness regenerating every table and figure of
//! the paper's evaluation. To fuzz your *own* PM data structure, implement
//! [`Target`], build a [`TargetSpec`], and hand it to
//! [`register_target`] — see "Adding your own target" in the README.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pmrace_api as api;
pub use pmrace_core as core;
pub use pmrace_lockfree as lockfree;
pub use pmrace_pmem as pmem;
pub use pmrace_replay as replay;
pub use pmrace_runtime as runtime;
pub use pmrace_sched as sched;
pub use pmrace_targets as targets;
pub use pmrace_telemetry as telemetry;

pub use pmrace_api::{
    register_target, resolve_target, DuplicateTarget, Op, OpResult, OpWeights, SeedHints, Target,
    TargetCtor, TargetSpec,
};
pub use pmrace_core::{FuzzConfig, FuzzReport, Fuzzer, Ledger, OpMutator, Seed, StrategyKind};
pub use pmrace_lockfree::{lockfree_specs, register_lockfree};
pub use pmrace_pmem::{Pool, PoolOpts};
pub use pmrace_runtime::{PmView, Session, SessionConfig};
pub use pmrace_targets::{all_targets, register_builtins, target_spec};

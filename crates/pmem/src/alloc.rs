//! A crash-consistent persistent allocator over a [`Pool`].
//!
//! Models the slice of PMDK's `libpmemobj` the evaluated systems rely on:
//!
//! - a pool **root offset** (like `pmemobj_root`),
//! - bump allocation with a persistent heap cursor (updated with
//!   non-temporal stores, so allocator metadata itself is always
//!   crash-consistent),
//! - **transactional allocation** with a persistent log: an allocation made
//!   inside an uncommitted transaction is rolled back by
//!   [`PmAllocator::open`] during recovery — the behaviour PMRace's default
//!   whitelist treats as benign (§4.4),
//! - volatile free lists for reuse (frees are not durable across crashes,
//!   like `libvmmalloc`'s non-crash-consistent recycling the paper calls
//!   out).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{PmemError, Pool, SiteTag, ThreadId};

const MAGIC: u64 = 0x504d_5241_4345_3144; // "PMRACE1D"
const OFF_MAGIC: u64 = 0;
const OFF_ROOT: u64 = 8;
const OFF_CURSOR: u64 = 16;
const OFF_TX_ACTIVE: u64 = 24;
const OFF_TX_SAVED_CURSOR: u64 = 32;
/// First byte available to the heap; everything below is allocator metadata.
pub(crate) const HEAP_START: u64 = 4096;

/// Reserved site tag for allocator-internal stores, distinguishable from
/// target instruction sites in reports.
const ALLOC_TAG: SiteTag = SiteTag(0xFFFF_FF00);

/// Aggregate allocator statistics, used by leak-oriented assertions in tests
/// and by the PM-leakage bug reports (bugs 3 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes handed out and still live (not freed).
    pub live_bytes: usize,
    /// Number of live allocations.
    pub live_allocs: usize,
    /// Total heap bytes consumed from the pool (high-water mark).
    pub heap_used: usize,
}

#[derive(Debug, Default)]
struct Volatile {
    /// Size-class free lists (volatile: lost on crash, like libvmmalloc).
    free: HashMap<usize, Vec<u64>>,
    /// Live allocation table `off -> size`.
    live: HashMap<u64, usize>,
}

/// Persistent allocator handle. Clone-cheap (`Arc` inside); all methods take
/// `&self`.
#[derive(Debug, Clone)]
pub struct PmAllocator {
    pool: Arc<Pool>,
    vol: Arc<Mutex<Volatile>>,
}

impl PmAllocator {
    /// Format a fresh pool: write the allocator header and an empty root.
    ///
    /// # Errors
    ///
    /// Propagates pool access errors (pool smaller than the allocator's
    /// metadata region).
    pub fn format(pool: Arc<Pool>, tid: ThreadId) -> Result<Self, PmemError> {
        pool.ntstore_u64(OFF_CURSOR, HEAP_START, tid, ALLOC_TAG)?;
        pool.ntstore_u64(OFF_ROOT, 0, tid, ALLOC_TAG)?;
        pool.ntstore_u64(OFF_TX_ACTIVE, 0, tid, ALLOC_TAG)?;
        pool.ntstore_u64(OFF_TX_SAVED_CURSOR, 0, tid, ALLOC_TAG)?;
        pool.ntstore_u64(OFF_MAGIC, MAGIC, tid, ALLOC_TAG)?;
        Ok(PmAllocator {
            pool,
            vol: Arc::new(Mutex::new(Volatile::default())),
        })
    }

    /// Open an existing (possibly crashed) pool: validate the header and
    /// roll back any allocation transaction that did not commit.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::BadAllocHeader`] if the magic value is missing.
    pub fn open(pool: Arc<Pool>, tid: ThreadId) -> Result<Self, PmemError> {
        let (magic, _) = pool.load_u64(OFF_MAGIC)?;
        if magic != MAGIC {
            return Err(PmemError::BadAllocHeader {
                reason: "bad magic (pool not formatted)",
            });
        }
        let (active, _) = pool.load_u64(OFF_TX_ACTIVE)?;
        if active != 0 {
            // Uncommitted allocation transaction: roll the cursor back,
            // reclaiming everything it allocated (PMDK-style recovery).
            let (saved, _) = pool.load_u64(OFF_TX_SAVED_CURSOR)?;
            pool.ntstore_u64(OFF_CURSOR, saved, tid, ALLOC_TAG)?;
            pool.ntstore_u64(OFF_TX_ACTIVE, 0, tid, ALLOC_TAG)?;
        }
        Ok(PmAllocator {
            pool,
            vol: Arc::new(Mutex::new(Volatile::default())),
        })
    }

    /// The pool this allocator manages.
    #[must_use]
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Offset of the root object (0 = unset).
    ///
    /// # Errors
    ///
    /// Propagates pool access errors.
    pub fn root(&self) -> Result<u64, PmemError> {
        Ok(self.pool.load_u64(OFF_ROOT)?.0)
    }

    /// Durably set the root object offset.
    ///
    /// # Errors
    ///
    /// Propagates pool access errors.
    pub fn set_root(&self, off: u64, tid: ThreadId) -> Result<(), PmemError> {
        self.pool.ntstore_u64(OFF_ROOT, off, tid, ALLOC_TAG)?;
        Ok(())
    }

    fn size_class(size: usize) -> usize {
        size.next_power_of_two().max(64)
    }

    /// Allocate `size` bytes (64-byte aligned), durably advancing the heap
    /// cursor. The returned memory is zeroed on a fresh pool but may hold
    /// stale bytes when recycled from the free list.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc(&self, size: usize, tid: ThreadId) -> Result<u64, PmemError> {
        let class = Self::size_class(size);
        {
            let mut vol = self.vol.lock();
            if let Some(off) = vol.free.get_mut(&class).and_then(Vec::pop) {
                vol.live.insert(off, class);
                return Ok(off);
            }
        }
        let mut vol = self.vol.lock();
        let (cursor, _) = self.pool.load_u64(OFF_CURSOR)?;
        let aligned = cursor.div_ceil(64) * 64;
        let new_cursor = aligned + class as u64;
        if new_cursor > self.pool.size() as u64 {
            return Err(PmemError::OutOfMemory { requested: size });
        }
        self.pool
            .ntstore_u64(OFF_CURSOR, new_cursor, tid, ALLOC_TAG)?;
        vol.live.insert(aligned, class);
        Ok(aligned)
    }

    /// Return an allocation to the (volatile) free list.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::BadFree`] if `off` is not a live allocation.
    pub fn free(&self, off: u64, _tid: ThreadId) -> Result<(), PmemError> {
        let mut vol = self.vol.lock();
        let class = vol.live.remove(&off).ok_or(PmemError::BadFree { off })?;
        vol.free.entry(class).or_default().push(off);
        Ok(())
    }

    /// Begin a transactional allocation scope (PMDK `TX_BEGIN` analog for
    /// allocation). Allocations made through the returned handle are rolled
    /// back by recovery unless [`TxAllocHandle::commit`] runs.
    ///
    /// # Errors
    ///
    /// Propagates pool access errors.
    pub fn begin_tx(&self, tid: ThreadId) -> Result<TxAllocHandle<'_>, PmemError> {
        let (cursor, _) = self.pool.load_u64(OFF_CURSOR)?;
        self.pool
            .ntstore_u64(OFF_TX_SAVED_CURSOR, cursor, tid, ALLOC_TAG)?;
        self.pool.ntstore_u64(OFF_TX_ACTIVE, 1, tid, ALLOC_TAG)?;
        Ok(TxAllocHandle {
            alloc: self,
            tid,
            open: true,
        })
    }

    /// Statistics over live allocations and heap usage.
    #[must_use]
    pub fn stats(&self) -> AllocStats {
        let vol = self.vol.lock();
        let live_bytes = vol.live.values().sum();
        let heap_used = self
            .pool
            .load_u64(OFF_CURSOR)
            .map(|(c, _)| (c.saturating_sub(HEAP_START)) as usize)
            .unwrap_or(0);
        AllocStats {
            live_bytes,
            live_allocs: vol.live.len(),
            heap_used,
        }
    }

    /// Offsets of all live allocations (volatile view), for leak analysis.
    #[must_use]
    pub fn live_offsets(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.vol.lock().live.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Open transactional-allocation scope; see [`PmAllocator::begin_tx`].
///
/// Dropping the handle without committing leaves the persistent transaction
/// flag set, so a crash (or recovery) rolls the allocations back — exactly
/// the PMDK behaviour behind the clevel-hashing benign inconsistency (Fig. 7).
#[derive(Debug)]
pub struct TxAllocHandle<'a> {
    alloc: &'a PmAllocator,
    tid: ThreadId,
    open: bool,
}

impl TxAllocHandle<'_> {
    /// Allocate inside the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::TxClosed`] after commit/abort, otherwise as
    /// [`PmAllocator::alloc`].
    pub fn alloc(&self, size: usize) -> Result<u64, PmemError> {
        if !self.open {
            return Err(PmemError::TxClosed);
        }
        self.alloc.alloc(size, self.tid)
    }

    /// Durably commit: allocations survive crashes from here on.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::TxClosed`] if already closed.
    pub fn commit(mut self) -> Result<(), PmemError> {
        if !self.open {
            return Err(PmemError::TxClosed);
        }
        self.open = false;
        self.alloc
            .pool
            .ntstore_u64(OFF_TX_ACTIVE, 0, self.tid, ALLOC_TAG)?;
        Ok(())
    }

    /// Abort explicitly (equivalent to dropping, but immediate and durable).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::TxClosed`] if already closed.
    pub fn abort(mut self) -> Result<(), PmemError> {
        if !self.open {
            return Err(PmemError::TxClosed);
        }
        self.open = false;
        let (saved, _) = self.alloc.pool.load_u64(OFF_TX_SAVED_CURSOR)?;
        self.alloc
            .pool
            .ntstore_u64(OFF_CURSOR, saved, self.tid, ALLOC_TAG)?;
        self.alloc
            .pool
            .ntstore_u64(OFF_TX_ACTIVE, 0, self.tid, ALLOC_TAG)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolOpts;

    const T0: ThreadId = ThreadId(0);

    fn fresh() -> PmAllocator {
        PmAllocator::format(Arc::new(Pool::new(PoolOpts::small())), T0).unwrap()
    }

    #[test]
    fn format_then_open() {
        let a = fresh();
        let pool = Arc::clone(a.pool());
        drop(a);
        let a2 = PmAllocator::open(pool, T0).unwrap();
        assert_eq!(a2.root().unwrap(), 0);
    }

    #[test]
    fn open_unformatted_pool_fails() {
        let pool = Arc::new(Pool::new(PoolOpts::small()));
        assert!(matches!(
            PmAllocator::open(pool, T0).unwrap_err(),
            PmemError::BadAllocHeader { .. }
        ));
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let a = fresh();
        let x = a.alloc(100, T0).unwrap();
        let y = a.alloc(100, T0).unwrap();
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 128); // size class of 100 is 128
        assert!(x >= HEAP_START);
    }

    #[test]
    fn free_then_realloc_recycles() {
        let a = fresh();
        let x = a.alloc(64, T0).unwrap();
        a.free(x, T0).unwrap();
        let y = a.alloc(64, T0).unwrap();
        assert_eq!(x, y);
        assert!(matches!(
            a.free(12345, T0).unwrap_err(),
            PmemError::BadFree { .. }
        ));
    }

    #[test]
    fn cursor_survives_crash() {
        let a = fresh();
        let _ = a.alloc(64, T0).unwrap();
        let img = a.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let a2 = PmAllocator::open(Arc::clone(&pool2), T0).unwrap();
        // New allocation must not overlap the pre-crash one.
        let z = a2.alloc(64, T0).unwrap();
        assert!(z >= HEAP_START + 64);
    }

    #[test]
    fn uncommitted_tx_alloc_is_rolled_back_on_recovery() {
        let a = fresh();
        let before = a.pool().load_u64(OFF_CURSOR).unwrap().0;
        let tx = a.begin_tx(T0).unwrap();
        let _ = tx.alloc(256).unwrap();
        // Crash without commit.
        let img = a.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let a2 = PmAllocator::open(Arc::clone(&pool2), T0).unwrap();
        assert_eq!(pool2.load_u64(OFF_CURSOR).unwrap().0, before);
        drop(a2);
    }

    #[test]
    fn committed_tx_alloc_survives_recovery() {
        let a = fresh();
        let tx = a.begin_tx(T0).unwrap();
        let off = tx.alloc(256).unwrap();
        tx.commit().unwrap();
        let img = a.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let a2 = PmAllocator::open(Arc::clone(&pool2), T0).unwrap();
        let next = a2.alloc(64, T0).unwrap();
        assert!(next > off);
    }

    #[test]
    fn tx_abort_rolls_back_immediately() {
        let a = fresh();
        let before = a.pool().load_u64(OFF_CURSOR).unwrap().0;
        let tx = a.begin_tx(T0).unwrap();
        let _ = tx.alloc(512).unwrap();
        tx.abort().unwrap();
        assert_eq!(a.pool().load_u64(OFF_CURSOR).unwrap().0, before);
    }

    #[test]
    fn stats_track_live_allocations() {
        let a = fresh();
        let x = a.alloc(64, T0).unwrap();
        let _y = a.alloc(64, T0).unwrap();
        let s = a.stats();
        assert_eq!(s.live_allocs, 2);
        assert_eq!(s.live_bytes, 128);
        assert!(s.heap_used >= 128);
        a.free(x, T0).unwrap();
        assert_eq!(a.stats().live_allocs, 1);
        assert_eq!(a.live_offsets().len(), 1);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let pool = Arc::new(Pool::new(PoolOpts::with_size(8192)));
        let a = PmAllocator::format(pool, T0).unwrap();
        // Heap is 8192 - 4096 = 4096 bytes.
        assert!(a.alloc(2048, T0).is_ok());
        assert!(matches!(
            a.alloc(4096, T0).unwrap_err(),
            PmemError::OutOfMemory { .. }
        ));
    }
}

//! The [`Pool`]: a software PM device with volatile-cache semantics.
//!
//! # Locking
//!
//! The image is split into [`N_SHARDS`] address-interleaved shards (see
//! [`crate::image`]), each behind its own mutex. Accesses touching a single
//! cache line — the common case for the word-sized PM stores the evaluated
//! systems issue — take exactly one shard lock; ranges spanning lines lock
//! the involved shards in ascending index order, and whole-image operations
//! (crash images, snapshot/restore, dirty-set walks) lock *all* shards in
//! ascending order, which makes them linearization points against every
//! concurrent access. The single ascending order makes the scheme
//! deadlock-free.
//!
//! The store sequence counter is a pool-wide atomic bumped while holding the
//! destination shard lock(s), so a whole-image reader (holding every lock)
//! always observes a counter consistent with the metadata it reads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use pmrace_telemetry as telemetry;
use rand::Rng;

use crate::image::{
    global_granule, granule_of, granules, lines_of_shard, local_byte, local_granule,
    shard_of_granule, shard_of_line, Shard, GRANULE, GRANULES_PER_LINE, N_SHARDS,
};
use crate::snapshot::{BaseImage, CrashImage, PoolSnapshot};
use crate::{GranuleMeta, PersistState, PmemError, SiteTag, ThreadId, CACHE_LINE};

/// Shared base plus granule-keyed overlay — the raw material of a
/// copy-on-write [`CrashImage`] capture.
type CowCapture = (Arc<BaseImage>, BTreeMap<u64, [u8; GRANULE]>);

/// Worse of two persistency states: `Dirty` dominates, then `Flushing`.
fn worst_state(a: PersistState, b: PersistState) -> PersistState {
    match (a, b) {
        (PersistState::Dirty, _) | (_, PersistState::Dirty) => PersistState::Dirty,
        (PersistState::Flushing, _) | (_, PersistState::Flushing) => PersistState::Flushing,
        _ => PersistState::Clean,
    }
}

/// How much work opening/initializing the pool performs.
///
/// Models the difference the paper measures in Fig. 10: `libpmemobj` pool
/// initialization is expensive (metadata formatting, allocator bootstrap),
/// while `pmem_map_file` from `libpmem` is a thin `mmap` wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitCost {
    /// Thin mapping, near-zero setup (memcached-pmem's `pmem_map_file`).
    #[default]
    Light,
    /// `libpmemobj`-like initialization: several full passes over the pool
    /// (formatting, checksumming, allocator bootstrap).
    Heavy,
}

/// Construction options for a [`Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOpts {
    /// Pool size in bytes.
    pub size: usize,
    /// Simulated initialization cost.
    pub init_cost: InitCost,
    /// Model an eADR platform (§6.6): CPU caches are inside the persistent
    /// domain, so every store is immediately durable and flushes are
    /// no-ops. *PM Inter-thread Inconsistency* cannot occur; unreleased
    /// persistent locks (*PM Synchronization Inconsistency*) still can.
    pub eadr: bool,
}

impl PoolOpts {
    /// A 1 MiB pool with light initialization — right for unit tests.
    #[must_use]
    pub fn small() -> Self {
        PoolOpts {
            size: 1 << 20,
            init_cost: InitCost::Light,
            eadr: false,
        }
    }

    /// A pool of `size` bytes with light initialization.
    #[must_use]
    pub fn with_size(size: usize) -> Self {
        PoolOpts {
            size,
            init_cost: InitCost::Light,
            eadr: false,
        }
    }

    /// Switch to `libpmemobj`-like heavy initialization.
    #[must_use]
    pub fn heavy(mut self) -> Self {
        self.init_cost = InitCost::Heavy;
        self
    }

    /// Switch to the eADR failure model (persistent CPU caches).
    ///
    /// ```
    /// use pmrace_pmem::{Pool, PoolOpts, SiteTag, ThreadId};
    ///
    /// let pool = Pool::new(PoolOpts::small().eadr());
    /// pool.store_u64(64, 7, ThreadId(0), SiteTag(0)).unwrap();
    ///
    /// // No clwb/sfence, yet the store is already durable: a crash image
    /// // taken right now keeps it.
    /// assert!(!pool.load_u64(64).unwrap().1.unpersisted);
    /// let img = pool.crash_image().unwrap();
    /// let recovered = Pool::from_crash_image(&img).unwrap();
    /// assert_eq!(recovered.load_u64(64).unwrap().0, 7);
    /// ```
    #[must_use]
    pub fn eadr(mut self) -> Self {
        self.eadr = true;
        self
    }
}

impl Default for PoolOpts {
    fn default() -> Self {
        PoolOpts::small()
    }
}

/// Result of a store: sequencing and whether it overwrote not-yet-persisted
/// data (useful to checkers hunting lost updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreInfo {
    /// Pool-wide sequence number assigned to this store.
    pub seq: u64,
    /// `true` if any overwritten granule was still `Dirty`/`Flushing`.
    pub overwrote_unpersisted: bool,
    /// Worst persistency state over the stored range *before* this store
    /// (`Dirty` dominates, then `Flushing`). Captured under the same shard
    /// lock as the store itself so instrumentation needs no second metadata
    /// pass.
    pub state_before: PersistState,
}

/// Persistency facts about the bytes a load observed.
///
/// For multi-granule loads the `writer`/`tag`/`seq` fields describe the most
/// recent unpersisted store among the overlapped granules (highest `seq`),
/// which is the store a crash would lose first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadInfo {
    /// `true` if any loaded byte came from a store not yet persisted.
    pub unpersisted: bool,
    /// Writer of the most recent unpersisted store (valid iff `unpersisted`).
    pub writer: ThreadId,
    /// Site tag of that store (valid iff `unpersisted`).
    pub tag: SiteTag,
    /// Sequence number of that store (valid iff `unpersisted`).
    pub seq: u64,
    /// Persistency state summarizing the loaded range: `Dirty` dominates
    /// `Flushing` dominates `Clean`.
    pub state: PersistState,
}

impl LoadInfo {
    /// Fold one granule's metadata into the summary.
    fn fold(&mut self, m: &GranuleMeta) {
        if m.state.is_unpersisted() {
            if !self.unpersisted || m.seq > self.seq {
                self.writer = m.writer;
                self.tag = m.tag;
                self.seq = m.seq;
            }
            self.unpersisted = true;
            if m.state == PersistState::Dirty || self.state == PersistState::Clean {
                self.state = if self.state == PersistState::Dirty {
                    PersistState::Dirty
                } else {
                    m.state
                };
            }
        }
    }
}

/// The shard locks covering one multi-line access, with a shard-index →
/// guard-position table for O(1) lookup while walking the lines.
struct LineGuards<'a> {
    guards: Vec<MutexGuard<'a, Shard>>,
    slot: [u8; N_SHARDS],
}

impl LineGuards<'_> {
    fn shard_mut(&mut self, s: usize) -> &mut Shard {
        &mut self.guards[self.slot[s] as usize]
    }

    fn shard(&self, s: usize) -> &Shard {
        &self.guards[self.slot[s] as usize]
    }
}

/// A software PM pool: dense byte space, word-granular persistency tracking,
/// crash snapshots.
///
/// All methods take `&self`; the pool is internally synchronized (sharded;
/// see the module docs) and is meant to be shared across target threads via
/// `Arc`. See the [crate docs](crate) for the memory model.
#[derive(Debug)]
pub struct Pool {
    shards: Box<[Mutex<Shard>]>,
    /// Pool-wide store sequence counter; real sequence numbers start at 1.
    seq: AtomicU64,
    /// Bitmask of shards that may hold queued write-backs. Set under the
    /// shard lock when `clwb` queues an entry, cleared under the shard lock
    /// when the queue drains, so `sfence` skips shards with nothing pending.
    /// A thread always observes the bits its own `clwb`s set (same-variable
    /// program order); bits set by other threads may lag, which is harmless
    /// because `sfence` only drains the calling thread's entries.
    pending_shards: AtomicU64,
    size: usize,
    opts: PoolOpts,
    /// Persistent base image of the snapshot this pool was last restored
    /// from (`None` until the first restore). While set, the pool's
    /// persistent image is guaranteed to differ from the base only at
    /// granules in the shards' epoch lists, which enables delta restore and
    /// copy-on-write crash images. Lock order: taken while shard locks are
    /// held (leaf).
    base: Mutex<Option<Arc<BaseImage>>>,
}

/// How a [`Pool::restore_delta`] call was actually performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreMode {
    /// Full image copy: first restore of this pool from this snapshot, or
    /// the dirty set exceeded the caller's threshold.
    Full,
    /// Only the granules written since the previous restore were copied
    /// back.
    Delta {
        /// Number of granules copied.
        granules: usize,
    },
}

fn new_shards(size: usize) -> Box<[Mutex<Shard>]> {
    (0..N_SHARDS)
        .map(|s| Mutex::new(Shard::new(lines_of_shard(s, size))))
        .collect()
}

/// Copy a dense image into the shards' interleaved lines.
fn scatter_into(shards: &mut [&mut Shard], bytes: &[u8], persistent: bool) {
    for (l, chunk) in bytes.chunks(CACHE_LINE).enumerate() {
        let shard = &mut shards[shard_of_line(l as u64)];
        let lb = local_line_byte(l);
        let dst = if persistent {
            &mut shard.persistent
        } else {
            &mut shard.volatile
        };
        dst[lb..lb + chunk.len()].copy_from_slice(chunk);
    }
}

/// Assemble a dense image from the shards' interleaved lines.
fn gather_from(shards: &[&Shard], size: usize, persistent: bool) -> Vec<u8> {
    let mut out = vec![0u8; size];
    for (l, chunk) in out.chunks_mut(CACHE_LINE).enumerate() {
        let shard = shards[shard_of_line(l as u64)];
        let lb = local_line_byte(l);
        let src = if persistent {
            &shard.persistent
        } else {
            &shard.volatile
        };
        chunk.copy_from_slice(&src[lb..lb + chunk.len()]);
    }
    out
}

fn local_line_byte(line: usize) -> usize {
    crate::image::local_line(line as u64) * CACHE_LINE
}

impl Pool {
    /// Create a zeroed pool, paying the configured initialization cost.
    #[must_use]
    pub fn new(opts: PoolOpts) -> Self {
        let pool = Pool {
            shards: new_shards(opts.size),
            seq: AtomicU64::new(0),
            pending_shards: AtomicU64::new(0),
            size: opts.size,
            opts,
            base: Mutex::new(None),
        };
        pool.run_init_cost();
        pool
    }

    /// Rebuild a pool from a crash image, as the recovery process would see
    /// it: both images equal the surviving bytes, all granules `Clean`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::InvalidImage`] if the image is empty.
    pub fn from_crash_image(img: &CrashImage) -> Result<Self, PmemError> {
        if img.bytes().is_empty() {
            return Err(PmemError::InvalidImage {
                reason: "empty crash image",
            });
        }
        let size = img.bytes().len();
        let shards = new_shards(size);
        {
            let mut guards: Vec<MutexGuard<'_, Shard>> = shards.iter().map(|m| m.lock()).collect();
            let mut refs: Vec<&mut Shard> = guards.iter_mut().map(|g| &mut **g).collect();
            scatter_into(&mut refs, img.bytes(), false);
            scatter_into(&mut refs, img.bytes(), true);
        }
        Ok(Pool {
            shards,
            seq: AtomicU64::new(0),
            pending_shards: AtomicU64::new(0),
            size,
            opts: PoolOpts::with_size(size),
            base: Mutex::new(None),
        })
    }

    /// Pool size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Options this pool was created with.
    #[must_use]
    pub fn opts(&self) -> PoolOpts {
        self.opts
    }

    /// Total stores sequenced so far (the current value of the pool-wide
    /// store counter).
    #[must_use]
    pub fn store_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn bump_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn lock_all(&self) -> Vec<MutexGuard<'_, Shard>> {
        self.shards.iter().map(|m| m.lock()).collect()
    }

    /// Lock the shards owning lines `first..=last`, ascending.
    fn lock_lines(&self, first_line: u64, last_line: u64) -> LineGuards<'_> {
        let mask: u64 = if last_line - first_line + 1 >= N_SHARDS as u64 {
            u64::MAX
        } else {
            let mut m = 0u64;
            for l in first_line..=last_line {
                m |= 1u64 << shard_of_line(l);
            }
            m
        };
        let mut slot = [0u8; N_SHARDS];
        let mut guards = Vec::with_capacity(mask.count_ones() as usize);
        for (s, shard) in self.shards.iter().enumerate() {
            if mask & (1u64 << s) != 0 {
                slot[s] = guards.len() as u8;
                guards.push(shard.lock());
            }
        }
        LineGuards { guards, slot }
    }

    fn run_init_cost(&self) {
        if self.opts.init_cost == InitCost::Heavy {
            // Simulate libpmemobj pool formatting: several full passes that
            // read, checksum, and rewrite the image. The result is still a
            // zeroed pool; only the cost matters (Fig. 10).
            let mut guards = self.lock_all();
            let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
            for _pass in 0..4 {
                for shard in guards.iter_mut() {
                    for chunk in shard.volatile.chunks(8) {
                        let mut w = [0u8; 8];
                        w[..chunk.len()].copy_from_slice(chunk);
                        acc = (acc ^ u64::from_le_bytes(w)).wrapping_mul(0x1000_0000_01b3);
                    }
                    for b in shard.persistent.iter_mut() {
                        *b = (acc as u8).wrapping_add(*b);
                        *b = 0;
                    }
                }
            }
            std::hint::black_box(acc);
        }
    }

    fn check(&self, off: u64, len: usize) -> Result<(), PmemError> {
        let end = off.checked_add(len as u64);
        match end {
            Some(end) if end <= self.size as u64 => Ok(()),
            _ => Err(PmemError::OutOfBounds {
                off,
                len,
                pool_size: self.size,
            }),
        }
    }

    /// Shared body of `store`/`ntstore`. `persist_now` updates the
    /// persistent image too and leaves granules `Clean` (non-temporal and
    /// eADR stores).
    fn store_impl(
        &self,
        off: u64,
        bytes: &[u8],
        tid: ThreadId,
        tag: SiteTag,
        persist_now: bool,
    ) -> Result<StoreInfo, PmemError> {
        self.check(off, bytes.len())?;
        if bytes.is_empty() {
            return Ok(StoreInfo {
                seq: self.bump_seq(),
                overwrote_unpersisted: false,
                state_before: PersistState::Clean,
            });
        }
        let line = CACHE_LINE as u64;
        let first_line = off / line;
        let last_line = (off + bytes.len() as u64 - 1) / line;
        let state = if persist_now {
            PersistState::Clean
        } else {
            PersistState::Dirty
        };
        if first_line == last_line {
            // Fast path: one shard lock, no allocation.
            let s = shard_of_line(first_line);
            let mut shard = self.shards[s].lock();
            let seq = self.bump_seq();
            let (overwrote, state_before) =
                Self::store_segment(&mut shard, off, bytes, tid, tag, seq, state, persist_now);
            if persist_now && shard.pending.is_empty() {
                self.pending_shards
                    .fetch_and(!(1u64 << s), Ordering::Relaxed);
            }
            return Ok(StoreInfo {
                seq,
                overwrote_unpersisted: overwrote,
                state_before,
            });
        }
        let mut guards = self.lock_lines(first_line, last_line);
        let seq = self.bump_seq();
        let mut overwrote = false;
        let mut state_before = PersistState::Clean;
        for l in first_line..=last_line {
            let s = shard_of_line(l);
            let seg_start = off.max(l * line);
            let seg_end = (off + bytes.len() as u64).min((l + 1) * line);
            let seg = &bytes[(seg_start - off) as usize..(seg_end - off) as usize];
            let shard = guards.shard_mut(s);
            let (seg_overwrote, seg_state) =
                Self::store_segment(shard, seg_start, seg, tid, tag, seq, state, persist_now);
            overwrote |= seg_overwrote;
            state_before = worst_state(state_before, seg_state);
            if persist_now && shard.pending.is_empty() {
                self.pending_shards
                    .fetch_and(!(1u64 << s), Ordering::Relaxed);
            }
        }
        Ok(StoreInfo {
            seq,
            overwrote_unpersisted: overwrote,
            state_before,
        })
    }

    /// Write one single-line segment into its shard. Returns whether any
    /// overwritten granule was unpersisted and the worst prior state.
    #[allow(clippy::too_many_arguments)]
    fn store_segment(
        shard: &mut Shard,
        off: u64,
        bytes: &[u8],
        tid: ThreadId,
        tag: SiteTag,
        seq: u64,
        state: PersistState,
        persist_now: bool,
    ) -> (bool, PersistState) {
        let lb = local_byte(off);
        shard.volatile[lb..lb + bytes.len()].copy_from_slice(bytes);
        if persist_now {
            shard.persistent[lb..lb + bytes.len()].copy_from_slice(bytes);
        }
        let mut overwrote = false;
        let mut state_before = PersistState::Clean;
        for g in granules(off, bytes.len()) {
            let lg = local_granule(g);
            let prev = shard.meta[lg as usize].state;
            overwrote |= prev.is_unpersisted();
            state_before = worst_state(state_before, prev);
            if persist_now {
                if let Some(p) = shard.pending_pos(lg) {
                    shard.pending.swap_remove(p);
                }
            }
            shard.set_meta(
                lg,
                GranuleMeta {
                    state,
                    writer: tid,
                    tag,
                    seq,
                },
            );
        }
        (overwrote, state_before)
    }

    /// Regular (cached) store: updates the volatile image and marks granules
    /// `Dirty` with this writer.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn store(
        &self,
        off: u64,
        bytes: &[u8],
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        // eADR: persistent caches, every store is immediately durable.
        self.store_impl(off, bytes, tid, tag, self.opts.eadr)
    }

    /// Non-temporal store: bypasses the cache, updating both images and
    /// leaving the granules `Clean` (the paper's `movnt64` treatment).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn ntstore(
        &self,
        off: u64,
        bytes: &[u8],
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        self.store_impl(off, bytes, tid, tag, true)
    }

    /// Load `buf.len()` bytes from the volatile image, reporting persistency
    /// facts about what was read.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn load(&self, off: u64, buf: &mut [u8]) -> Result<LoadInfo, PmemError> {
        self.check(off, buf.len())?;
        if buf.is_empty() {
            return Ok(LoadInfo::default());
        }
        let line = CACHE_LINE as u64;
        let first_line = off / line;
        let last_line = (off + buf.len() as u64 - 1) / line;
        let mut info = LoadInfo::default();
        if first_line == last_line {
            let shard = self.shards[shard_of_line(first_line)].lock();
            let lb = local_byte(off);
            buf.copy_from_slice(&shard.volatile[lb..lb + buf.len()]);
            for g in granules(off, buf.len()) {
                info.fold(&shard.meta[local_granule(g) as usize]);
            }
            return Ok(info);
        }
        let guards = self.lock_lines(first_line, last_line);
        for l in first_line..=last_line {
            let seg_start = off.max(l * line);
            let seg_end = (off + buf.len() as u64).min((l + 1) * line);
            let shard = guards.shard(shard_of_line(l));
            let lb = local_byte(seg_start);
            let seg_len = (seg_end - seg_start) as usize;
            buf[(seg_start - off) as usize..(seg_end - off) as usize]
                .copy_from_slice(&shard.volatile[lb..lb + seg_len]);
            for g in granules(seg_start, seg_len) {
                info.fold(&shard.meta[local_granule(g) as usize]);
            }
        }
        Ok(info)
    }

    /// Queue write-backs (`clwb`) for every granule overlapping
    /// `[off, off+len)`, rounded out to cache-line boundaries as real `clwb`
    /// flushes whole lines. Captures current volatile content; it persists at
    /// this thread's next [`sfence`](Pool::sfence).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn clwb(&self, off: u64, len: usize, tid: ThreadId) -> Result<(), PmemError> {
        let t0 = telemetry::enabled().then(std::time::Instant::now);
        self.check(off, len.max(1))?;
        let line = CACHE_LINE as u64;
        let start = off / line * line;
        let end = ((off + len.max(1) as u64).div_ceil(line) * line).min(self.size as u64);
        let first_line = start / line;
        let last_line = (end - 1) / line;
        let mut guards = self.lock_lines(first_line, last_line);
        for l in first_line..=last_line {
            let s = shard_of_line(l);
            let seg_start = l * line;
            let seg_len = (end.min((l + 1) * line) - seg_start) as usize;
            let shard = guards.shard_mut(s);
            let mut queued = false;
            for g in granules(seg_start, seg_len) {
                let lg = local_granule(g);
                let m = shard.meta[lg as usize];
                if m.state == PersistState::Dirty {
                    let cap = shard.capture(lg);
                    match shard.pending_pos(lg) {
                        Some(p) => shard.pending[p] = (lg, tid, cap),
                        None => shard.pending.push((lg, tid, cap)),
                    }
                    queued = true;
                    shard.set_meta(
                        lg,
                        GranuleMeta {
                            state: PersistState::Flushing,
                            ..m
                        },
                    );
                }
            }
            if queued {
                self.pending_shards.fetch_or(1u64 << s, Ordering::Relaxed);
            }
        }
        if let Some(t0) = t0 {
            telemetry::metrics::record_duration(telemetry::Histogram::PmFlushNs, t0.elapsed());
        }
        Ok(())
    }

    /// Store fence: completes every write-back this thread queued with
    /// `clwb`, making those captures persistent and the granules `Clean`
    /// (unless re-dirtied after the capture).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for API stability.
    pub fn sfence(&self, tid: ThreadId) -> Result<(), PmemError> {
        let t0 = telemetry::enabled().then(std::time::Instant::now);
        // Only visit shards that may hold queued write-backs. This thread's
        // own clwb bits are always visible here (program order); see the
        // field docs for why stale bits from other threads don't matter.
        let mask = self.pending_shards.load(Ordering::Relaxed);
        if mask == 0 {
            if let Some(t0) = t0 {
                telemetry::metrics::record_duration(telemetry::Histogram::PmFenceNs, t0.elapsed());
            }
            return Ok(());
        }
        for (s, slot) in self.shards.iter().enumerate() {
            if mask & (1u64 << s) == 0 {
                continue;
            }
            let mut shard = slot.lock();
            let mut i = 0;
            while i < shard.pending.len() {
                if shard.pending[i].1 != tid {
                    i += 1;
                    continue;
                }
                let (lg, _, bytes) = shard.pending.swap_remove(i);
                shard.apply(lg, bytes);
                let m = shard.meta[lg as usize];
                if m.state == PersistState::Flushing {
                    shard.set_meta(
                        lg,
                        GranuleMeta {
                            state: PersistState::Clean,
                            ..m
                        },
                    );
                }
                // If the granule was re-dirtied after the capture it stays
                // Dirty: the old capture persisted but the newest store is
                // still at risk.
            }
            if shard.pending.is_empty() {
                self.pending_shards
                    .fetch_and(!(1u64 << s), Ordering::Relaxed);
            }
        }
        if let Some(t0) = t0 {
            telemetry::metrics::record_duration(telemetry::Histogram::PmFenceNs, t0.elapsed());
        }
        Ok(())
    }

    /// Convenience: `clwb` + `sfence` over a range (the common persist
    /// idiom).
    ///
    /// # Errors
    ///
    /// Propagates [`Pool::clwb`] errors.
    pub fn persist(&self, off: u64, len: usize, tid: ThreadId) -> Result<(), PmemError> {
        self.clwb(off, len, tid)?;
        self.sfence(tid)
    }

    /// Atomic compare-and-swap on an aligned `u64` in the volatile image.
    /// On success the granule becomes `Dirty` like a regular store.
    /// Returns `(swapped, observed_value, load_info)`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] or [`PmemError::Misaligned`].
    pub fn cas_u64(
        &self,
        off: u64,
        expected: u64,
        new: u64,
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<(bool, u64, LoadInfo), PmemError> {
        self.check(off, 8)?;
        if !off.is_multiple_of(8) {
            return Err(PmemError::Misaligned { off, align: 8 });
        }
        // An aligned word sits in one line, hence one shard.
        let mut shard = self.shards[shard_of_line(off / CACHE_LINE as u64)].lock();
        let lb = local_byte(off);
        let cur = u64::from_le_bytes(shard.volatile[lb..lb + 8].try_into().expect("8-byte slice"));
        let lg = local_granule(granule_of(off));
        let m = shard.meta[lg as usize];
        let info = LoadInfo {
            unpersisted: m.state.is_unpersisted(),
            writer: m.writer,
            tag: m.tag,
            seq: m.seq,
            state: m.state,
        };
        if cur != expected {
            return Ok((false, cur, info));
        }
        let seq = self.bump_seq();
        shard.volatile[lb..lb + 8].copy_from_slice(&new.to_le_bytes());
        if self.opts.eadr {
            shard.persistent[lb..lb + 8].copy_from_slice(&new.to_le_bytes());
        }
        shard.set_meta(
            lg,
            GranuleMeta {
                state: if self.opts.eadr {
                    PersistState::Clean
                } else {
                    PersistState::Dirty
                },
                writer: tid,
                tag,
                seq,
            },
        );
        Ok((true, cur, info))
    }

    /// Store an aligned little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Pool::store`].
    pub fn store_u64(
        &self,
        off: u64,
        val: u64,
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        self.store(off, &val.to_le_bytes(), tid, tag)
    }

    /// Non-temporal store of an aligned little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Pool::ntstore`].
    pub fn ntstore_u64(
        &self,
        off: u64,
        val: u64,
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        self.ntstore(off, &val.to_le_bytes(), tid, tag)
    }

    /// Load a little-endian `u64` along with its [`LoadInfo`].
    ///
    /// # Errors
    ///
    /// See [`Pool::load`].
    pub fn load_u64(&self, off: u64) -> Result<(u64, LoadInfo), PmemError> {
        let mut buf = [0u8; 8];
        let info = self.load(off, &mut buf)?;
        Ok((u64::from_le_bytes(buf), info))
    }

    /// Persistency metadata of the granule containing `off`.
    #[must_use]
    pub fn meta_at(&self, off: u64) -> GranuleMeta {
        let g = granule_of(off);
        let shard = self.shards[shard_of_granule(g)].lock();
        shard
            .meta
            .get(local_granule(g) as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Number of granules currently unpersisted (`Dirty` or `Flushing`).
    #[must_use]
    pub fn unpersisted_granules(&self) -> usize {
        let mut guards = self.lock_all();
        guards
            .iter_mut()
            .map(|shard| {
                shard.compact_dirty();
                shard.dirty.len()
            })
            .sum()
    }

    /// All currently unpersisted granules with their metadata, sorted by
    /// offset — the end-of-execution dirty set a missing-flush checker
    /// inspects.
    #[must_use]
    pub fn unpersisted_regions(&self) -> Vec<(u64, GranuleMeta)> {
        let mut guards = self.lock_all();
        let mut v = Vec::new();
        for (s, shard) in guards.iter_mut().enumerate() {
            shard.compact_dirty();
            for &lg in &shard.dirty {
                v.push((
                    global_granule(s, lg) * GRANULE as u64,
                    shard.meta[lg as usize],
                ));
            }
        }
        v.sort_unstable_by_key(|&(off, _)| off);
        v
    }

    /// Model hardware cache eviction: persist one random `Dirty` granule's
    /// current content and mark it `Clean`. Returns the evicted granule's
    /// byte offset, or `None` if nothing is dirty.
    pub fn evict_random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        let mut guards = self.lock_all();
        let mut dirty: Vec<u64> = Vec::new();
        for (s, shard) in guards.iter_mut().enumerate() {
            shard.compact_dirty();
            dirty.extend(
                shard
                    .dirty
                    .iter()
                    .filter(|&&lg| shard.meta[lg as usize].state == PersistState::Dirty)
                    .map(|&lg| global_granule(s, lg)),
            );
        }
        if dirty.is_empty() {
            return None;
        }
        dirty.sort_unstable();
        let g = dirty[rng.random_range(0..dirty.len())];
        let s = shard_of_granule(g);
        let lg = local_granule(g);
        let shard = &mut guards[s];
        let cap = shard.capture(lg);
        shard.apply(lg, cap);
        let m = shard.meta[lg as usize];
        shard.set_meta(
            lg,
            GranuleMeta {
                state: PersistState::Clean,
                ..m
            },
        );
        if let Some(p) = shard.pending_pos(lg) {
            shard.pending.swap_remove(p);
        }
        if shard.pending.is_empty() {
            self.pending_shards
                .fetch_and(!(1u64 << s), Ordering::Relaxed);
        }
        telemetry::add(telemetry::Counter::PmEvictions, 1);
        Some(g * GRANULE as u64)
    }

    /// Snapshot of what survives a crash *right now*: the persistent image
    /// only. Queued-but-unfenced write-backs are conservatively lost.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for API stability.
    pub fn crash_image(&self) -> Result<CrashImage, PmemError> {
        let guards = self.lock_all();
        if let Some((base, overlay)) = self.cow_overlay(&guards) {
            return Ok(Self::finish_cow(base, overlay));
        }
        let refs: Vec<&Shard> = guards.iter().map(|g| &**g).collect();
        Ok(CrashImage::from_bytes(gather_from(&refs, self.size, true)))
    }

    /// Copy-on-write capture: when this pool was restored from a snapshot,
    /// its persistent image differs from the snapshot's base only at epoch-
    /// listed granules (every persistent-image mutation sets metadata on the
    /// same granule under the same shard lock), so the current persistent
    /// bytes of those granules form a complete overlay over the shared base.
    /// Returns `None` when no base is tracked or the dirty set is denser
    /// than half the pool (a plain copy is cheaper then).
    fn cow_overlay(&self, guards: &[MutexGuard<'_, Shard>]) -> Option<CowCapture> {
        let base = self.base.lock().clone()?;
        if base.bytes().len() != self.size {
            return None;
        }
        let dirty: usize = guards.iter().map(|g| g.epoch_list.len()).sum();
        if dirty * GRANULE > self.size / 2 {
            return None;
        }
        let mut overlay = BTreeMap::new();
        for (s, shard) in guards.iter().enumerate() {
            for &lg in &shard.epoch_list {
                let lb = lg as usize * GRANULE;
                let mut chunk = [0u8; GRANULE];
                chunk.copy_from_slice(&shard.persistent[lb..lb + GRANULE]);
                overlay.insert(global_granule(s, lg) * GRANULE as u64, chunk);
            }
        }
        Some((base, overlay))
    }

    fn finish_cow(base: Arc<BaseImage>, overlay: BTreeMap<u64, [u8; GRANULE]>) -> CrashImage {
        let overlay: Vec<(u64, [u8; GRANULE])> = overlay.into_iter().collect();
        if telemetry::enabled() {
            telemetry::metrics::record(
                telemetry::Histogram::CrashImageOverlayBytes,
                (overlay.len() * GRANULE) as u64,
            );
        }
        CrashImage::from_overlay(base, overlay)
    }

    /// Crash snapshot in which the given volatile byte ranges are forced
    /// persistent first.
    ///
    /// This realizes the crash point the checker reasons about (Fig. 3): the
    /// durable side effect *did* reach PM, the dependent store did not. The
    /// post-failure validator recovers from exactly this image.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if a range exceeds the pool.
    pub fn crash_image_persisting(&self, ranges: &[(u64, usize)]) -> Result<CrashImage, PmemError> {
        for &(off, len) in ranges {
            self.check(off, len)?;
        }
        let guards = self.lock_all();
        if let Some((base, mut overlay)) = self.cow_overlay(&guards) {
            for &(off, len) in ranges {
                if len == 0 {
                    continue;
                }
                for g in granules(off, len) {
                    let shard = &guards[shard_of_granule(g)];
                    let lb = local_granule(g) as usize * GRANULE;
                    let chunk = overlay.entry(g * GRANULE as u64).or_insert_with(|| {
                        let mut c = [0u8; GRANULE];
                        c.copy_from_slice(&shard.persistent[lb..lb + GRANULE]);
                        c
                    });
                    // Force exactly the requested bytes, not the whole
                    // granule, matching the dense path's byte-exact patch.
                    let g_start = g * GRANULE as u64;
                    let seg_start = off.max(g_start);
                    let seg_end = (off + len as u64).min(g_start + GRANULE as u64);
                    let (a, b) = ((seg_start - g_start) as usize, (seg_end - g_start) as usize);
                    chunk[a..b].copy_from_slice(&shard.volatile[lb + a..lb + b]);
                }
            }
            return Ok(Self::finish_cow(base, overlay));
        }
        let refs: Vec<&Shard> = guards.iter().map(|g| &**g).collect();
        let mut bytes = gather_from(&refs, self.size, true);
        let line = CACHE_LINE as u64;
        for &(off, len) in ranges {
            if len == 0 {
                continue;
            }
            for l in off / line..=(off + len as u64 - 1) / line {
                let seg_start = off.max(l * line);
                let seg_end = (off + len as u64).min((l + 1) * line);
                let lb = local_byte(seg_start);
                let seg_len = (seg_end - seg_start) as usize;
                bytes[seg_start as usize..seg_end as usize]
                    .copy_from_slice(&refs[shard_of_line(l)].volatile[lb..lb + seg_len]);
            }
        }
        Ok(CrashImage::from_bytes(bytes))
    }

    /// Full checkpoint of pool state (both images + metadata), used by the
    /// fuzzer's in-memory checkpoints (§5).
    ///
    /// ```
    /// use pmrace_pmem::{Pool, PoolOpts, SiteTag, ThreadId};
    ///
    /// let pool = Pool::new(PoolOpts::small());
    /// let t0 = ThreadId(0);
    /// pool.store_u64(64, 1, t0, SiteTag(0)).unwrap();
    /// let snap = pool.snapshot();
    ///
    /// pool.store_u64(64, 2, t0, SiteTag(0)).unwrap();
    /// assert_eq!(pool.load_u64(64).unwrap().0, 2);
    ///
    /// // Restore rewinds both images and the per-line persistency state.
    /// pool.restore(&snap).unwrap();
    /// assert_eq!(pool.load_u64(64).unwrap().0, 1);
    /// ```
    #[must_use]
    pub fn snapshot(&self) -> PoolSnapshot {
        let guards = self.lock_all();
        let refs: Vec<&Shard> = guards.iter().map(|g| &**g).collect();
        let volatile = gather_from(&refs, self.size, false);
        let persistent = gather_from(&refs, self.size, true);
        let mut meta = std::collections::HashMap::new();
        for (s, shard) in refs.iter().enumerate() {
            for &lg in &shard.touched {
                let m = shard.meta[lg as usize];
                // The touched list may hold granules whose meta reverted to
                // default (delta-restored without a snapshot entry).
                if m.seq != 0 {
                    meta.insert(global_granule(s, lg), m);
                }
            }
        }
        PoolSnapshot::new(volatile, persistent, meta, self.seq.load(Ordering::Relaxed))
    }

    /// Restore pool state from a checkpoint taken with [`Pool::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::InvalidImage`] if the snapshot size differs from
    /// this pool's size.
    pub fn restore(&self, snap: &PoolSnapshot) -> Result<(), PmemError> {
        if snap.volatile().len() != self.size {
            return Err(PmemError::InvalidImage {
                reason: "snapshot size mismatch",
            });
        }
        let mut guards = self.lock_all();
        self.restore_full_locked(&mut guards, snap);
        Ok(())
    }

    /// Restore from `snap`, copying back only the granules written since
    /// the last restore when this pool was last restored from the *same*
    /// snapshot (O(dirty) instead of O(pool size)). Falls back to the full
    /// copy on the first restore, on a snapshot change, or when more than
    /// `max_dirty` granules are dirty.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::InvalidImage`] if the snapshot size differs from
    /// this pool's size.
    pub fn restore_delta(
        &self,
        snap: &PoolSnapshot,
        max_dirty: usize,
    ) -> Result<RestoreMode, PmemError> {
        if snap.volatile().len() != self.size {
            return Err(PmemError::InvalidImage {
                reason: "snapshot size mismatch",
            });
        }
        let mut guards = self.lock_all();
        let restorable = self
            .base
            .lock()
            .as_ref()
            .is_some_and(|b| b.id() == snap.base_id());
        let total: usize = guards.iter().map(|g| g.epoch_list.len()).sum();
        if !restorable || total > max_dirty {
            self.restore_full_locked(&mut guards, snap);
            return Ok(RestoreMode::Full);
        }
        let (vol, per, meta_map) = (snap.volatile(), snap.persistent(), snap.meta());
        let mut lines: Vec<u64> = Vec::with_capacity(total);
        for (s, shard) in guards.iter_mut().enumerate() {
            let list = std::mem::take(&mut shard.epoch_list);
            for &lg in &list {
                let g = global_granule(s, lg);
                let off = g as usize * GRANULE;
                // The tail granule of an odd-sized pool is partial in the
                // dense snapshot; its padding bytes are unwritable and stay
                // zero in the shard.
                let n = GRANULE.min(self.size - off);
                let lb = lg as usize * GRANULE;
                shard.volatile[lb..lb + n].copy_from_slice(&vol[off..off + n]);
                shard.persistent[lb..lb + n].copy_from_slice(&per[off..off + n]);
                shard.set_meta(lg, meta_map.get(&g).copied().unwrap_or_default());
                lines.push(g / GRANULES_PER_LINE);
            }
            shard.pending.clear();
        }
        if telemetry::enabled() {
            lines.sort_unstable();
            lines.dedup();
            telemetry::metrics::record(telemetry::Histogram::RestoreDirtyLines, lines.len() as u64);
        }
        self.finish_restore(&mut guards, snap);
        Ok(RestoreMode::Delta { granules: total })
    }

    /// Full-copy restore body, with all shard locks held.
    fn restore_full_locked(&self, guards: &mut [MutexGuard<'_, Shard>], snap: &PoolSnapshot) {
        for shard in guards.iter_mut() {
            shard.clear_tracking();
        }
        {
            let mut refs: Vec<&mut Shard> = guards.iter_mut().map(|g| &mut **g).collect();
            scatter_into(&mut refs, snap.volatile(), false);
            scatter_into(&mut refs, snap.persistent(), true);
        }
        for (&g, &m) in snap.meta() {
            guards[shard_of_granule(g)].set_meta(local_granule(g), m);
        }
        self.finish_restore(guards, snap);
    }

    /// Common restore epilogue: close the epoch (the restore's own metadata
    /// writes must not count as post-restore dirt), reset the pool-wide
    /// counters, and remember the snapshot's base for delta restore and COW
    /// crash images.
    fn finish_restore(&self, guards: &mut [MutexGuard<'_, Shard>], snap: &PoolSnapshot) {
        for shard in guards.iter_mut() {
            shard.end_epoch();
        }
        self.seq.store(snap.seq(), Ordering::Relaxed);
        self.pending_shards.store(0, Ordering::Relaxed);
        *self.base.lock() = Some(Arc::clone(snap.base()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const TAG: SiteTag = SiteTag(7);

    fn pool() -> Pool {
        Pool::new(PoolOpts::small())
    }

    #[test]
    fn store_is_visible_but_not_persistent() {
        let p = pool();
        p.store_u64(128, 99, T0, TAG).unwrap();
        assert_eq!(p.load_u64(128).unwrap().0, 99);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 0);
        assert_eq!(p.meta_at(128).state, PersistState::Dirty);
    }

    #[test]
    fn clwb_alone_does_not_persist() {
        let p = pool();
        p.store_u64(128, 99, T0, TAG).unwrap();
        p.clwb(128, 8, T0).unwrap();
        assert_eq!(p.meta_at(128).state, PersistState::Flushing);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 0);
    }

    #[test]
    fn clwb_sfence_persists() {
        let p = pool();
        p.store_u64(128, 99, T0, TAG).unwrap();
        p.persist(128, 8, T0).unwrap();
        assert_eq!(p.meta_at(128).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 99);
    }

    #[test]
    fn sfence_only_drains_own_threads_flushes() {
        let p = pool();
        p.store_u64(128, 1, T0, TAG).unwrap();
        p.clwb(128, 8, T0).unwrap();
        p.sfence(T1).unwrap(); // other thread's fence: no effect
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 0);
        p.sfence(T0).unwrap();
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 1);
    }

    #[test]
    fn redirty_after_clwb_persists_capture_not_new_value() {
        let p = pool();
        p.store_u64(128, 1, T0, TAG).unwrap();
        p.clwb(128, 8, T0).unwrap();
        p.store_u64(128, 2, T0, TAG).unwrap(); // re-dirty after capture
        p.sfence(T0).unwrap();
        // Old capture persisted; newest store still volatile-only.
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 1);
        assert_eq!(p.meta_at(128).state, PersistState::Dirty);
        assert_eq!(p.load_u64(128).unwrap().0, 2);
    }

    #[test]
    fn ntstore_is_immediately_persistent_and_clean() {
        let p = pool();
        p.ntstore_u64(256, 77, T0, TAG).unwrap();
        assert_eq!(p.meta_at(256).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(256).unwrap(), 77);
    }

    #[test]
    fn load_reports_cross_thread_writer() {
        let p = pool();
        p.store_u64(64, 5, T1, SiteTag(42)).unwrap();
        let (v, info) = p.load_u64(64).unwrap();
        assert_eq!(v, 5);
        assert!(info.unpersisted);
        assert_eq!(info.writer, T1);
        assert_eq!(info.tag, SiteTag(42));
    }

    #[test]
    fn load_of_clean_data_reports_persisted() {
        let p = pool();
        p.store_u64(64, 5, T1, TAG).unwrap();
        p.persist(64, 8, T1).unwrap();
        let (_, info) = p.load_u64(64).unwrap();
        assert!(!info.unpersisted);
        assert_eq!(info.state, PersistState::Clean);
    }

    #[test]
    fn clwb_flushes_whole_cache_line() {
        let p = pool();
        p.store_u64(0, 1, T0, TAG).unwrap();
        p.store_u64(56, 2, T0, TAG).unwrap(); // same 64-byte line
        p.clwb(0, 1, T0).unwrap();
        p.sfence(T0).unwrap();
        let img = p.crash_image().unwrap();
        assert_eq!(img.load_u64(0).unwrap(), 1);
        assert_eq!(img.load_u64(56).unwrap(), 2);
    }

    #[test]
    fn cas_success_and_failure() {
        let p = pool();
        p.ntstore_u64(64, 10, T0, TAG).unwrap();
        let (ok, observed, _) = p.cas_u64(64, 10, 11, T1, TAG).unwrap();
        assert!(ok);
        assert_eq!(observed, 10);
        let (ok, observed, info) = p.cas_u64(64, 10, 12, T0, TAG).unwrap();
        assert!(!ok);
        assert_eq!(observed, 11);
        assert!(info.unpersisted); // CAS store by T1 not yet flushed
        assert_eq!(info.writer, T1);
    }

    #[test]
    fn cas_requires_alignment() {
        let p = pool();
        assert_eq!(
            p.cas_u64(3, 0, 1, T0, TAG).unwrap_err(),
            PmemError::Misaligned { off: 3, align: 8 }
        );
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = Pool::new(PoolOpts::with_size(64));
        assert!(matches!(
            p.store_u64(60, 1, T0, TAG).unwrap_err(),
            PmemError::OutOfBounds { .. }
        ));
        let mut buf = [0u8; 8];
        assert!(matches!(
            p.load(63, &mut buf).unwrap_err(),
            PmemError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn crash_image_persisting_forces_ranges() {
        let p = pool();
        p.store_u64(64, 1, T0, TAG).unwrap(); // dependent data, unflushed
        p.store_u64(128, 2, T1, TAG).unwrap(); // durable side effect
        let img = p.crash_image_persisting(&[(128, 8)]).unwrap();
        assert_eq!(img.load_u64(64).unwrap(), 0); // lost
        assert_eq!(img.load_u64(128).unwrap(), 2); // forced persistent
    }

    #[test]
    fn eviction_persists_a_dirty_granule() {
        let p = pool();
        p.store_u64(64, 9, T0, TAG).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let off = p.evict_random(&mut rng).unwrap();
        assert_eq!(off, 64);
        assert_eq!(p.meta_at(64).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(64).unwrap(), 9);
        assert!(p.evict_random(&mut rng).is_none());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let p = pool();
        p.store_u64(64, 1, T0, TAG).unwrap();
        p.persist(64, 8, T0).unwrap();
        p.store_u64(72, 2, T0, TAG).unwrap();
        let snap = p.snapshot();
        p.ntstore_u64(64, 100, T0, TAG).unwrap();
        p.ntstore_u64(72, 100, T0, TAG).unwrap();
        p.restore(&snap).unwrap();
        assert_eq!(p.load_u64(64).unwrap().0, 1);
        assert_eq!(p.load_u64(72).unwrap().0, 2);
        assert_eq!(p.meta_at(72).state, PersistState::Dirty);
        assert_eq!(p.crash_image().unwrap().load_u64(72).unwrap(), 0);
    }

    #[test]
    fn restore_delta_matches_full_restore() {
        let p = pool();
        p.store_u64(64, 1, T0, TAG).unwrap();
        p.persist(64, 8, T0).unwrap();
        p.store_u64(72, 2, T0, TAG).unwrap();
        let snap = p.snapshot();
        // First restore from this snapshot is necessarily a full copy.
        assert_eq!(
            p.restore_delta(&snap, usize::MAX).unwrap(),
            RestoreMode::Full
        );
        for round in 0..3 {
            // Dirty a few granules in different shards, some persisted.
            p.ntstore_u64(64, 100 + round, T0, TAG).unwrap();
            p.store_u64(4096, 7, T1, TAG).unwrap();
            p.store_u64(131, 9, T0, TAG).unwrap(); // cross-granule
            p.persist(4096, 8, T1).unwrap();
            let mode = p.restore_delta(&snap, usize::MAX).unwrap();
            assert!(matches!(mode, RestoreMode::Delta { granules } if granules >= 4));
            assert_eq!(p.load_u64(64).unwrap().0, 1);
            assert_eq!(p.load_u64(72).unwrap().0, 2);
            assert_eq!(p.load_u64(4096).unwrap().0, 0);
            assert_eq!(p.load_u64(128).unwrap().0, 0);
            assert_eq!(p.meta_at(72).state, PersistState::Dirty);
            assert_eq!(p.meta_at(4096).state, PersistState::Clean);
            assert_eq!(p.crash_image().unwrap().load_u64(64).unwrap(), 1);
            assert_eq!(p.crash_image().unwrap().load_u64(4096).unwrap(), 0);
        }
        // Over-threshold dirt falls back to the full path and stays correct.
        p.store_u64(200, 3, T0, TAG).unwrap();
        assert_eq!(p.restore_delta(&snap, 0).unwrap(), RestoreMode::Full);
        assert_eq!(p.load_u64(200).unwrap().0, 0);
    }

    #[test]
    fn cow_crash_image_equals_dense_capture() {
        let p = pool();
        let fresh = Pool::new(p.opts());
        p.store_u64(64, 1, T0, TAG).unwrap();
        p.persist(64, 8, T0).unwrap();
        let snap = p.snapshot();
        p.restore(&snap).unwrap(); // enables COW capture
        let ops = |q: &Pool| {
            q.store_u64(72, 5, T0, TAG).unwrap();
            q.ntstore_u64(4096, 6, T1, TAG).unwrap();
            q.store_u64(131, 9, T0, TAG).unwrap();
        };
        // Same ops on a never-restored pool (dense captures) except the
        // snapshot-time store, replayed to align the images.
        fresh.store_u64(64, 1, T0, TAG).unwrap();
        fresh.persist(64, 8, T0).unwrap();
        ops(&p);
        ops(&fresh);
        let cow = p.crash_image().unwrap();
        let dense = fresh.crash_image().unwrap();
        assert!(cow.overlay_bytes() > 0, "capture used the COW path");
        assert_eq!(dense.overlay_bytes(), 0, "never-restored pool is dense");
        assert_eq!(cow, dense);
        assert_eq!(cow.bytes(), dense.bytes());
        // Forced-persist ranges compose with the overlay byte-exactly.
        let ranges = [(72u64, 8usize), (130, 3)];
        let cow_f = p.crash_image_persisting(&ranges).unwrap();
        let dense_f = fresh.crash_image_persisting(&ranges).unwrap();
        assert_eq!(cow_f, dense_f);
        assert_eq!(cow_f.load_u64(72).unwrap(), 5);
    }

    #[test]
    fn restore_delta_rejects_size_mismatch() {
        let p = Pool::new(PoolOpts::with_size(64));
        let other = Pool::new(PoolOpts::with_size(128));
        let snap = other.snapshot();
        assert!(matches!(
            p.restore_delta(&snap, usize::MAX).unwrap_err(),
            PmemError::InvalidImage { .. }
        ));
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let p = Pool::new(PoolOpts::with_size(64));
        let other = Pool::new(PoolOpts::with_size(128));
        let snap = other.snapshot();
        assert!(matches!(
            p.restore(&snap).unwrap_err(),
            PmemError::InvalidImage { .. }
        ));
    }

    #[test]
    fn recovery_pool_sees_only_persistent_bytes() {
        let p = pool();
        p.ntstore_u64(64, 5, T0, TAG).unwrap();
        p.store_u64(72, 6, T0, TAG).unwrap(); // never flushed
        let img = p.crash_image().unwrap();
        let rec = Pool::from_crash_image(&img).unwrap();
        assert_eq!(rec.load_u64(64).unwrap().0, 5);
        assert_eq!(rec.load_u64(72).unwrap().0, 0);
        assert_eq!(rec.meta_at(64).state, PersistState::Clean);
    }

    #[test]
    fn eadr_stores_are_immediately_durable() {
        let p = Pool::new(PoolOpts::small().eadr());
        p.store_u64(128, 9, T0, TAG).unwrap();
        assert_eq!(p.meta_at(128).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 9);
        let (_, info) = p.load_u64(128).unwrap();
        assert!(!info.unpersisted, "eADR never exposes unpersisted data");
        // CAS is durable too (the unreleased-lock scenario of §6.6).
        let (ok, _, _) = p.cas_u64(256, 0, 1, T1, TAG).unwrap();
        assert!(ok);
        assert_eq!(p.crash_image().unwrap().load_u64(256).unwrap(), 1);
        assert_eq!(p.meta_at(256).state, PersistState::Clean);
    }

    #[test]
    fn eadr_flushes_are_harmless_noops() {
        let p = Pool::new(PoolOpts::small().eadr());
        p.store_u64(64, 5, T0, TAG).unwrap();
        p.persist(64, 8, T0).unwrap();
        assert_eq!(p.load_u64(64).unwrap().0, 5);
        assert_eq!(p.crash_image().unwrap().load_u64(64).unwrap(), 5);
    }

    #[test]
    fn heavy_init_produces_zeroed_pool() {
        let p = Pool::new(PoolOpts::with_size(4096).heavy());
        assert_eq!(p.load_u64(0).unwrap().0, 0);
        assert_eq!(p.load_u64(4088).unwrap().0, 0);
    }

    #[test]
    fn multi_line_store_spans_shards() {
        let p = pool();
        // 16 bytes at offset 56 cross the line-0/line-1 boundary, which is
        // also a shard boundary (adjacent lines live in different shards).
        let bytes: Vec<u8> = (0..16u8).collect();
        p.store(56, &bytes, T0, TAG).unwrap();
        let mut back = [0u8; 16];
        p.load(56, &mut back).unwrap();
        assert_eq!(&back[..], &bytes[..]);
        assert_eq!(p.meta_at(56).state, PersistState::Dirty);
        assert_eq!(p.meta_at(64).state, PersistState::Dirty);
        // Both stores carry the same sequence number.
        assert_eq!(p.meta_at(56).seq, p.meta_at(64).seq);
        // Persist only via the clwb of the first line: the second line's
        // granule stays dirty.
        p.clwb(56, 1, T0).unwrap();
        p.sfence(T0).unwrap();
        assert_eq!(p.meta_at(56).state, PersistState::Clean);
        assert_eq!(p.meta_at(64).state, PersistState::Dirty);
        let img = p.crash_image().unwrap();
        assert_eq!(img.read(56, 8).unwrap(), &bytes[..8]);
        assert_eq!(img.read(64, 8).unwrap(), &[0u8; 8]);
    }

    #[test]
    fn wide_store_and_unpersisted_regions_cover_many_shards() {
        let p = pool();
        // 8 KiB touches 128 lines -> all 64 shards twice.
        let bytes = vec![0xABu8; 8192];
        p.store(0, &bytes, T0, TAG).unwrap();
        assert_eq!(p.unpersisted_granules(), 1024);
        let regions = p.unpersisted_regions();
        assert_eq!(regions.len(), 1024);
        // Sorted by offset, one granule apart.
        assert!(regions.windows(2).all(|w| w[1].0 == w[0].0 + 8));
        p.persist(0, 8192, T0).unwrap();
        assert_eq!(p.unpersisted_granules(), 0);
        assert_eq!(p.crash_image().unwrap().read(0, 8192).unwrap(), &bytes[..]);
    }

    #[test]
    fn store_seq_counts_stores() {
        let p = pool();
        assert_eq!(p.store_seq(), 0);
        p.store_u64(0, 1, T0, TAG).unwrap();
        p.ntstore_u64(64, 2, T0, TAG).unwrap();
        assert_eq!(p.store_seq(), 2);
    }
}

//! The [`Pool`]: a software PM device with volatile-cache semantics.

use parking_lot::Mutex;
use rand::Rng;

use crate::image::{Image, GRANULE};
use crate::snapshot::{CrashImage, PoolSnapshot};
use crate::{GranuleMeta, PersistState, PmemError, SiteTag, ThreadId};

/// How much work opening/initializing the pool performs.
///
/// Models the difference the paper measures in Fig. 10: `libpmemobj` pool
/// initialization is expensive (metadata formatting, allocator bootstrap),
/// while `pmem_map_file` from `libpmem` is a thin `mmap` wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitCost {
    /// Thin mapping, near-zero setup (memcached-pmem's `pmem_map_file`).
    #[default]
    Light,
    /// `libpmemobj`-like initialization: several full passes over the pool
    /// (formatting, checksumming, allocator bootstrap).
    Heavy,
}

/// Construction options for a [`Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOpts {
    /// Pool size in bytes.
    pub size: usize,
    /// Simulated initialization cost.
    pub init_cost: InitCost,
    /// Model an eADR platform (§6.6): CPU caches are inside the persistent
    /// domain, so every store is immediately durable and flushes are
    /// no-ops. *PM Inter-thread Inconsistency* cannot occur; unreleased
    /// persistent locks (*PM Synchronization Inconsistency*) still can.
    pub eadr: bool,
}

impl PoolOpts {
    /// A 1 MiB pool with light initialization — right for unit tests.
    #[must_use]
    pub fn small() -> Self {
        PoolOpts {
            size: 1 << 20,
            init_cost: InitCost::Light,
            eadr: false,
        }
    }

    /// A pool of `size` bytes with light initialization.
    #[must_use]
    pub fn with_size(size: usize) -> Self {
        PoolOpts {
            size,
            init_cost: InitCost::Light,
            eadr: false,
        }
    }

    /// Switch to `libpmemobj`-like heavy initialization.
    #[must_use]
    pub fn heavy(mut self) -> Self {
        self.init_cost = InitCost::Heavy;
        self
    }

    /// Switch to the eADR failure model (persistent CPU caches).
    #[must_use]
    pub fn eadr(mut self) -> Self {
        self.eadr = true;
        self
    }
}

impl Default for PoolOpts {
    fn default() -> Self {
        PoolOpts::small()
    }
}

/// Result of a store: sequencing and whether it overwrote not-yet-persisted
/// data (useful to checkers hunting lost updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreInfo {
    /// Pool-wide sequence number assigned to this store.
    pub seq: u64,
    /// `true` if any overwritten granule was still `Dirty`/`Flushing`.
    pub overwrote_unpersisted: bool,
}

/// Persistency facts about the bytes a load observed.
///
/// For multi-granule loads the `writer`/`tag`/`seq` fields describe the most
/// recent unpersisted store among the overlapped granules (highest `seq`),
/// which is the store a crash would lose first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadInfo {
    /// `true` if any loaded byte came from a store not yet persisted.
    pub unpersisted: bool,
    /// Writer of the most recent unpersisted store (valid iff `unpersisted`).
    pub writer: ThreadId,
    /// Site tag of that store (valid iff `unpersisted`).
    pub tag: SiteTag,
    /// Sequence number of that store (valid iff `unpersisted`).
    pub seq: u64,
    /// Persistency state summarizing the loaded range: `Dirty` dominates
    /// `Flushing` dominates `Clean`.
    pub state: PersistState,
}

/// A software PM pool: dense byte space, word-granular persistency tracking,
/// crash snapshots.
///
/// All methods take `&self`; the pool is internally synchronized and is meant
/// to be shared across target threads via `Arc`. See the
/// [crate docs](crate) for the memory model.
#[derive(Debug)]
pub struct Pool {
    inner: Mutex<Image>,
    size: usize,
    opts: PoolOpts,
}

impl Pool {
    /// Create a zeroed pool, paying the configured initialization cost.
    #[must_use]
    pub fn new(opts: PoolOpts) -> Self {
        let pool = Pool {
            inner: Mutex::new(Image::new(opts.size)),
            size: opts.size,
            opts,
        };
        pool.run_init_cost();
        pool
    }

    /// Rebuild a pool from a crash image, as the recovery process would see
    /// it: both images equal the surviving bytes, all granules `Clean`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::InvalidImage`] if the image is empty.
    pub fn from_crash_image(img: &CrashImage) -> Result<Self, PmemError> {
        if img.bytes().is_empty() {
            return Err(PmemError::InvalidImage {
                reason: "empty crash image",
            });
        }
        let size = img.bytes().len();
        let mut inner = Image::new(size);
        inner.volatile.copy_from_slice(img.bytes());
        inner.persistent.copy_from_slice(img.bytes());
        Ok(Pool {
            inner: Mutex::new(inner),
            size,
            opts: PoolOpts::with_size(size),
        })
    }

    /// Pool size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Options this pool was created with.
    #[must_use]
    pub fn opts(&self) -> PoolOpts {
        self.opts
    }

    fn run_init_cost(&self) {
        if self.opts.init_cost == InitCost::Heavy {
            // Simulate libpmemobj pool formatting: several full passes that
            // read, checksum, and rewrite the image. The result is still a
            // zeroed pool; only the cost matters (Fig. 10).
            let mut inner = self.inner.lock();
            let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
            for _pass in 0..4 {
                for chunk in inner.volatile.chunks(8) {
                    let mut w = [0u8; 8];
                    w[..chunk.len()].copy_from_slice(chunk);
                    acc = (acc ^ u64::from_le_bytes(w)).wrapping_mul(0x1000_0000_01b3);
                }
                for b in inner.persistent.iter_mut() {
                    *b = (acc as u8).wrapping_add(*b);
                    *b = 0;
                }
            }
            std::hint::black_box(acc);
        }
    }

    fn check(&self, off: u64, len: usize) -> Result<(), PmemError> {
        let end = off.checked_add(len as u64);
        match end {
            Some(end) if end <= self.size as u64 => Ok(()),
            _ => Err(PmemError::OutOfBounds {
                off,
                len,
                pool_size: self.size,
            }),
        }
    }

    /// Regular (cached) store: updates the volatile image and marks granules
    /// `Dirty` with this writer.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn store(
        &self,
        off: u64,
        bytes: &[u8],
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        if self.opts.eadr {
            // Persistent caches: every store is immediately durable.
            return self.ntstore(off, bytes, tid, tag);
        }
        self.check(off, bytes.len())?;
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        inner.volatile[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        let mut overwrote = false;
        for g in Image::granules(off, bytes.len()) {
            let prev = inner.meta_of(g);
            overwrote |= prev.state.is_unpersisted();
            inner.meta.insert(
                g,
                GranuleMeta {
                    state: PersistState::Dirty,
                    writer: tid,
                    tag,
                    seq,
                },
            );
        }
        Ok(StoreInfo {
            seq,
            overwrote_unpersisted: overwrote,
        })
    }

    /// Non-temporal store: bypasses the cache, updating both images and
    /// leaving the granules `Clean` (the paper's `movnt64` treatment).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn ntstore(
        &self,
        off: u64,
        bytes: &[u8],
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        self.check(off, bytes.len())?;
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let (start, end) = (off as usize, off as usize + bytes.len());
        inner.volatile[start..end].copy_from_slice(bytes);
        inner.persistent[start..end].copy_from_slice(bytes);
        let mut overwrote = false;
        for g in Image::granules(off, bytes.len()) {
            let prev = inner.meta_of(g);
            overwrote |= prev.state.is_unpersisted();
            inner.pending.remove(&g);
            inner.meta.insert(
                g,
                GranuleMeta {
                    state: PersistState::Clean,
                    writer: tid,
                    tag,
                    seq,
                },
            );
        }
        Ok(StoreInfo {
            seq,
            overwrote_unpersisted: overwrote,
        })
    }

    /// Load `buf.len()` bytes from the volatile image, reporting persistency
    /// facts about what was read.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn load(&self, off: u64, buf: &mut [u8]) -> Result<LoadInfo, PmemError> {
        self.check(off, buf.len())?;
        let inner = self.inner.lock();
        buf.copy_from_slice(&inner.volatile[off as usize..off as usize + buf.len()]);
        let mut info = LoadInfo::default();
        for g in Image::granules(off, buf.len()) {
            let m = inner.meta_of(g);
            if m.state.is_unpersisted() {
                if !info.unpersisted || m.seq > info.seq {
                    info.writer = m.writer;
                    info.tag = m.tag;
                    info.seq = m.seq;
                }
                info.unpersisted = true;
                if m.state == PersistState::Dirty || info.state == PersistState::Clean {
                    info.state = if info.state == PersistState::Dirty {
                        PersistState::Dirty
                    } else {
                        m.state
                    };
                }
            }
        }
        Ok(info)
    }

    /// Queue write-backs (`clwb`) for every granule overlapping
    /// `[off, off+len)`, rounded out to cache-line boundaries as real `clwb`
    /// flushes whole lines. Captures current volatile content; it persists at
    /// this thread's next [`sfence`](Pool::sfence).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] for accesses past the pool end.
    pub fn clwb(&self, off: u64, len: usize, tid: ThreadId) -> Result<(), PmemError> {
        self.check(off, len.max(1))?;
        let line = crate::CACHE_LINE as u64;
        let start = off / line * line;
        let end = ((off + len.max(1) as u64 + line - 1) / line * line).min(self.size as u64);
        let mut inner = self.inner.lock();
        for g in Image::granules(start, (end - start) as usize) {
            let m = inner.meta_of(g);
            if m.state == PersistState::Dirty {
                let cap = inner.capture(g);
                inner.pending.insert(g, (tid, cap));
                let mut m2 = m;
                m2.state = PersistState::Flushing;
                inner.meta.insert(g, m2);
            }
        }
        Ok(())
    }

    /// Store fence: completes every write-back this thread queued with
    /// `clwb`, making those captures persistent and the granules `Clean`
    /// (unless re-dirtied after the capture).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for API stability.
    pub fn sfence(&self, tid: ThreadId) -> Result<(), PmemError> {
        let mut inner = self.inner.lock();
        let drained: Vec<(u64, [u8; GRANULE])> = inner
            .pending
            .iter()
            .filter(|(_, (t, _))| *t == tid)
            .map(|(g, (_, b))| (*g, *b))
            .collect();
        for (g, bytes) in drained {
            inner.pending.remove(&g);
            inner.apply_pending(g, bytes);
            let m = inner.meta_of(g);
            if m.state == PersistState::Flushing {
                let mut m2 = m;
                m2.state = PersistState::Clean;
                inner.meta.insert(g, m2);
            }
            // If the granule was re-dirtied after the capture it stays Dirty:
            // the old capture persisted but the newest store is still at risk.
        }
        Ok(())
    }

    /// Convenience: `clwb` + `sfence` over a range (the common persist
    /// idiom).
    ///
    /// # Errors
    ///
    /// Propagates [`Pool::clwb`] errors.
    pub fn persist(&self, off: u64, len: usize, tid: ThreadId) -> Result<(), PmemError> {
        self.clwb(off, len, tid)?;
        self.sfence(tid)
    }

    /// Atomic compare-and-swap on an aligned `u64` in the volatile image.
    /// On success the granule becomes `Dirty` like a regular store.
    /// Returns `(swapped, observed_value, load_info)`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] or [`PmemError::Misaligned`].
    pub fn cas_u64(
        &self,
        off: u64,
        expected: u64,
        new: u64,
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<(bool, u64, LoadInfo), PmemError> {
        self.check(off, 8)?;
        if off % 8 != 0 {
            return Err(PmemError::Misaligned { off, align: 8 });
        }
        let mut inner = self.inner.lock();
        let cur = u64::from_le_bytes(
            inner.volatile[off as usize..off as usize + 8]
                .try_into()
                .expect("8-byte slice"),
        );
        let g = Image::granule_of(off);
        let m = inner.meta_of(g);
        let info = LoadInfo {
            unpersisted: m.state.is_unpersisted(),
            writer: m.writer,
            tag: m.tag,
            seq: m.seq,
            state: m.state,
        };
        if cur != expected {
            return Ok((false, cur, info));
        }
        inner.seq += 1;
        let seq = inner.seq;
        inner.volatile[off as usize..off as usize + 8].copy_from_slice(&new.to_le_bytes());
        if self.opts.eadr {
            inner.persistent[off as usize..off as usize + 8]
                .copy_from_slice(&new.to_le_bytes());
        }
        inner.meta.insert(
            g,
            GranuleMeta {
                state: if self.opts.eadr {
                    PersistState::Clean
                } else {
                    PersistState::Dirty
                },
                writer: tid,
                tag,
                seq,
            },
        );
        Ok((true, cur, info))
    }

    /// Store an aligned little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Pool::store`].
    pub fn store_u64(
        &self,
        off: u64,
        val: u64,
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        self.store(off, &val.to_le_bytes(), tid, tag)
    }

    /// Non-temporal store of an aligned little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Pool::ntstore`].
    pub fn ntstore_u64(
        &self,
        off: u64,
        val: u64,
        tid: ThreadId,
        tag: SiteTag,
    ) -> Result<StoreInfo, PmemError> {
        self.ntstore(off, &val.to_le_bytes(), tid, tag)
    }

    /// Load a little-endian `u64` along with its [`LoadInfo`].
    ///
    /// # Errors
    ///
    /// See [`Pool::load`].
    pub fn load_u64(&self, off: u64) -> Result<(u64, LoadInfo), PmemError> {
        let mut buf = [0u8; 8];
        let info = self.load(off, &mut buf)?;
        Ok((u64::from_le_bytes(buf), info))
    }

    /// Persistency metadata of the granule containing `off`.
    #[must_use]
    pub fn meta_at(&self, off: u64) -> GranuleMeta {
        let inner = self.inner.lock();
        inner.meta_of(Image::granule_of(off))
    }

    /// Number of granules currently unpersisted (`Dirty` or `Flushing`).
    #[must_use]
    pub fn unpersisted_granules(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .meta
            .values()
            .filter(|m| m.state.is_unpersisted())
            .count()
    }

    /// All currently unpersisted granules with their metadata, sorted by
    /// offset — the end-of-execution dirty set a missing-flush checker
    /// inspects.
    #[must_use]
    pub fn unpersisted_regions(&self) -> Vec<(u64, GranuleMeta)> {
        let inner = self.inner.lock();
        let mut v: Vec<(u64, GranuleMeta)> = inner
            .meta
            .iter()
            .filter(|(_, m)| m.state.is_unpersisted())
            .map(|(&g, &m)| (g * GRANULE as u64, m))
            .collect();
        v.sort_unstable_by_key(|&(off, _)| off);
        v
    }

    /// Model hardware cache eviction: persist one random `Dirty` granule's
    /// current content and mark it `Clean`. Returns the evicted granule's
    /// byte offset, or `None` if nothing is dirty.
    pub fn evict_random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        let mut inner = self.inner.lock();
        let dirty: Vec<u64> = inner
            .meta
            .iter()
            .filter(|(_, m)| m.state == PersistState::Dirty)
            .map(|(g, _)| *g)
            .collect();
        if dirty.is_empty() {
            return None;
        }
        let g = dirty[rng.random_range(0..dirty.len())];
        let cap = inner.capture(g);
        inner.apply_pending(g, cap);
        let m = inner.meta_of(g);
        let mut m2 = m;
        m2.state = PersistState::Clean;
        inner.meta.insert(g, m2);
        inner.pending.remove(&g);
        Some(g * GRANULE as u64)
    }

    /// Snapshot of what survives a crash *right now*: the persistent image
    /// only. Queued-but-unfenced write-backs are conservatively lost.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for API stability.
    pub fn crash_image(&self) -> Result<CrashImage, PmemError> {
        let inner = self.inner.lock();
        Ok(CrashImage::from_bytes(inner.persistent.clone()))
    }

    /// Crash snapshot in which the given volatile byte ranges are forced
    /// persistent first.
    ///
    /// This realizes the crash point the checker reasons about (Fig. 3): the
    /// durable side effect *did* reach PM, the dependent store did not. The
    /// post-failure validator recovers from exactly this image.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if a range exceeds the pool.
    pub fn crash_image_persisting(
        &self,
        ranges: &[(u64, usize)],
    ) -> Result<CrashImage, PmemError> {
        for &(off, len) in ranges {
            self.check(off, len)?;
        }
        let inner = self.inner.lock();
        let mut bytes = inner.persistent.clone();
        for &(off, len) in ranges {
            let (s, e) = (off as usize, off as usize + len);
            bytes[s..e].copy_from_slice(&inner.volatile[s..e]);
        }
        Ok(CrashImage::from_bytes(bytes))
    }

    /// Full checkpoint of pool state (both images + metadata), used by the
    /// fuzzer's in-memory checkpoints (§5).
    #[must_use]
    pub fn snapshot(&self) -> PoolSnapshot {
        let inner = self.inner.lock();
        PoolSnapshot::new(
            inner.volatile.clone(),
            inner.persistent.clone(),
            inner.meta.clone(),
            inner.seq,
        )
    }

    /// Restore pool state from a checkpoint taken with [`Pool::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::InvalidImage`] if the snapshot size differs from
    /// this pool's size.
    pub fn restore(&self, snap: &PoolSnapshot) -> Result<(), PmemError> {
        if snap.volatile().len() != self.size {
            return Err(PmemError::InvalidImage {
                reason: "snapshot size mismatch",
            });
        }
        let mut inner = self.inner.lock();
        inner.volatile.copy_from_slice(snap.volatile());
        inner.persistent.copy_from_slice(snap.persistent());
        inner.meta = snap.meta().clone();
        inner.pending.clear();
        inner.seq = snap.seq();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const TAG: SiteTag = SiteTag(7);

    fn pool() -> Pool {
        Pool::new(PoolOpts::small())
    }

    #[test]
    fn store_is_visible_but_not_persistent() {
        let p = pool();
        p.store_u64(128, 99, T0, TAG).unwrap();
        assert_eq!(p.load_u64(128).unwrap().0, 99);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 0);
        assert_eq!(p.meta_at(128).state, PersistState::Dirty);
    }

    #[test]
    fn clwb_alone_does_not_persist() {
        let p = pool();
        p.store_u64(128, 99, T0, TAG).unwrap();
        p.clwb(128, 8, T0).unwrap();
        assert_eq!(p.meta_at(128).state, PersistState::Flushing);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 0);
    }

    #[test]
    fn clwb_sfence_persists() {
        let p = pool();
        p.store_u64(128, 99, T0, TAG).unwrap();
        p.persist(128, 8, T0).unwrap();
        assert_eq!(p.meta_at(128).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 99);
    }

    #[test]
    fn sfence_only_drains_own_threads_flushes() {
        let p = pool();
        p.store_u64(128, 1, T0, TAG).unwrap();
        p.clwb(128, 8, T0).unwrap();
        p.sfence(T1).unwrap(); // other thread's fence: no effect
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 0);
        p.sfence(T0).unwrap();
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 1);
    }

    #[test]
    fn redirty_after_clwb_persists_capture_not_new_value() {
        let p = pool();
        p.store_u64(128, 1, T0, TAG).unwrap();
        p.clwb(128, 8, T0).unwrap();
        p.store_u64(128, 2, T0, TAG).unwrap(); // re-dirty after capture
        p.sfence(T0).unwrap();
        // Old capture persisted; newest store still volatile-only.
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 1);
        assert_eq!(p.meta_at(128).state, PersistState::Dirty);
        assert_eq!(p.load_u64(128).unwrap().0, 2);
    }

    #[test]
    fn ntstore_is_immediately_persistent_and_clean() {
        let p = pool();
        p.ntstore_u64(256, 77, T0, TAG).unwrap();
        assert_eq!(p.meta_at(256).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(256).unwrap(), 77);
    }

    #[test]
    fn load_reports_cross_thread_writer() {
        let p = pool();
        p.store_u64(64, 5, T1, SiteTag(42)).unwrap();
        let (v, info) = p.load_u64(64).unwrap();
        assert_eq!(v, 5);
        assert!(info.unpersisted);
        assert_eq!(info.writer, T1);
        assert_eq!(info.tag, SiteTag(42));
    }

    #[test]
    fn load_of_clean_data_reports_persisted() {
        let p = pool();
        p.store_u64(64, 5, T1, TAG).unwrap();
        p.persist(64, 8, T1).unwrap();
        let (_, info) = p.load_u64(64).unwrap();
        assert!(!info.unpersisted);
        assert_eq!(info.state, PersistState::Clean);
    }

    #[test]
    fn clwb_flushes_whole_cache_line() {
        let p = pool();
        p.store_u64(0, 1, T0, TAG).unwrap();
        p.store_u64(56, 2, T0, TAG).unwrap(); // same 64-byte line
        p.clwb(0, 1, T0).unwrap();
        p.sfence(T0).unwrap();
        let img = p.crash_image().unwrap();
        assert_eq!(img.load_u64(0).unwrap(), 1);
        assert_eq!(img.load_u64(56).unwrap(), 2);
    }

    #[test]
    fn cas_success_and_failure() {
        let p = pool();
        p.ntstore_u64(64, 10, T0, TAG).unwrap();
        let (ok, observed, _) = p.cas_u64(64, 10, 11, T1, TAG).unwrap();
        assert!(ok);
        assert_eq!(observed, 10);
        let (ok, observed, info) = p.cas_u64(64, 10, 12, T0, TAG).unwrap();
        assert!(!ok);
        assert_eq!(observed, 11);
        assert!(info.unpersisted); // CAS store by T1 not yet flushed
        assert_eq!(info.writer, T1);
    }

    #[test]
    fn cas_requires_alignment() {
        let p = pool();
        assert_eq!(
            p.cas_u64(3, 0, 1, T0, TAG).unwrap_err(),
            PmemError::Misaligned { off: 3, align: 8 }
        );
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = Pool::new(PoolOpts::with_size(64));
        assert!(matches!(
            p.store_u64(60, 1, T0, TAG).unwrap_err(),
            PmemError::OutOfBounds { .. }
        ));
        let mut buf = [0u8; 8];
        assert!(matches!(
            p.load(63, &mut buf).unwrap_err(),
            PmemError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn crash_image_persisting_forces_ranges() {
        let p = pool();
        p.store_u64(64, 1, T0, TAG).unwrap(); // dependent data, unflushed
        p.store_u64(128, 2, T1, TAG).unwrap(); // durable side effect
        let img = p.crash_image_persisting(&[(128, 8)]).unwrap();
        assert_eq!(img.load_u64(64).unwrap(), 0); // lost
        assert_eq!(img.load_u64(128).unwrap(), 2); // forced persistent
    }

    #[test]
    fn eviction_persists_a_dirty_granule() {
        let p = pool();
        p.store_u64(64, 9, T0, TAG).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let off = p.evict_random(&mut rng).unwrap();
        assert_eq!(off, 64);
        assert_eq!(p.meta_at(64).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(64).unwrap(), 9);
        assert!(p.evict_random(&mut rng).is_none());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let p = pool();
        p.store_u64(64, 1, T0, TAG).unwrap();
        p.persist(64, 8, T0).unwrap();
        p.store_u64(72, 2, T0, TAG).unwrap();
        let snap = p.snapshot();
        p.ntstore_u64(64, 100, T0, TAG).unwrap();
        p.ntstore_u64(72, 100, T0, TAG).unwrap();
        p.restore(&snap).unwrap();
        assert_eq!(p.load_u64(64).unwrap().0, 1);
        assert_eq!(p.load_u64(72).unwrap().0, 2);
        assert_eq!(p.meta_at(72).state, PersistState::Dirty);
        assert_eq!(p.crash_image().unwrap().load_u64(72).unwrap(), 0);
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let p = Pool::new(PoolOpts::with_size(64));
        let other = Pool::new(PoolOpts::with_size(128));
        let snap = other.snapshot();
        assert!(matches!(
            p.restore(&snap).unwrap_err(),
            PmemError::InvalidImage { .. }
        ));
    }

    #[test]
    fn recovery_pool_sees_only_persistent_bytes() {
        let p = pool();
        p.ntstore_u64(64, 5, T0, TAG).unwrap();
        p.store_u64(72, 6, T0, TAG).unwrap(); // never flushed
        let img = p.crash_image().unwrap();
        let rec = Pool::from_crash_image(&img).unwrap();
        assert_eq!(rec.load_u64(64).unwrap().0, 5);
        assert_eq!(rec.load_u64(72).unwrap().0, 0);
        assert_eq!(rec.meta_at(64).state, PersistState::Clean);
    }

    #[test]
    fn eadr_stores_are_immediately_durable() {
        let p = Pool::new(PoolOpts::small().eadr());
        p.store_u64(128, 9, T0, TAG).unwrap();
        assert_eq!(p.meta_at(128).state, PersistState::Clean);
        assert_eq!(p.crash_image().unwrap().load_u64(128).unwrap(), 9);
        let (_, info) = p.load_u64(128).unwrap();
        assert!(!info.unpersisted, "eADR never exposes unpersisted data");
        // CAS is durable too (the unreleased-lock scenario of §6.6).
        let (ok, _, _) = p.cas_u64(256, 0, 1, T1, TAG).unwrap();
        assert!(ok);
        assert_eq!(p.crash_image().unwrap().load_u64(256).unwrap(), 1);
        assert_eq!(p.meta_at(256).state, PersistState::Clean);
    }

    #[test]
    fn eadr_flushes_are_harmless_noops() {
        let p = Pool::new(PoolOpts::small().eadr());
        p.store_u64(64, 5, T0, TAG).unwrap();
        p.persist(64, 8, T0).unwrap();
        assert_eq!(p.load_u64(64).unwrap().0, 5);
        assert_eq!(p.crash_image().unwrap().load_u64(64).unwrap(), 5);
    }

    #[test]
    fn heavy_init_produces_zeroed_pool() {
        let p = Pool::new(PoolOpts::with_size(4096).heavy());
        assert_eq!(p.load_u64(0).unwrap().0, 0);
        assert_eq!(p.load_u64(4088).unwrap().0, 0);
    }
}

//! Crash images and full pool checkpoints.
//!
//! Both are built around one sharing primitive: an identity-tagged,
//! immutable [`BaseImage`]. A [`PoolSnapshot`] holds its persistent bytes
//! as a `BaseImage`; every pool restored from that snapshot remembers the
//! base, and crash images captured from such a pool are *copy-on-write* —
//! an `Arc` of the base plus a sparse overlay of the granules written since
//! the restore — instead of a pool-sized byte clone per candidate.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::image::GRANULE;
use crate::{GranuleMeta, PmemError};

/// Issues process-unique [`BaseImage`] ids. Never reused (unlike `Arc`
/// pointer addresses), so an id equality check can never confuse two
/// different images — validation caches key on it.
static NEXT_BASE_ID: AtomicU64 = AtomicU64::new(1);

/// An immutable byte image with a process-unique identity.
#[derive(Debug)]
pub(crate) struct BaseImage {
    id: u64,
    bytes: Vec<u8>,
}

impl BaseImage {
    pub(crate) fn new(bytes: Vec<u8>) -> Arc<Self> {
        Arc::new(BaseImage {
            id: NEXT_BASE_ID.fetch_add(1, Ordering::Relaxed),
            bytes,
        })
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// The bytes that survive a crash: the persistent image at the crash point.
///
/// PMRace duplicates the mmapped pool file at each detected crash point
/// (§4.4); a `CrashImage` is that duplicate. Recovery code runs against a
/// [`Pool`](crate::Pool) rebuilt from it via
/// [`Pool::from_crash_image`](crate::Pool::from_crash_image).
///
/// Representation: a shared immutable base plus a sorted sparse overlay of
/// granule-sized chunks. Images captured from a checkpoint-restored pool
/// share the checkpoint's base and carry only the granules the campaign
/// actually wrote; [`CrashImage::from_bytes`] wraps a dense byte vector as
/// its own base with an empty overlay. Read semantics are byte-identical
/// either way; dense bytes are materialized lazily (once) only when a
/// caller needs a contiguous slice.
#[derive(Debug, Clone)]
pub struct CrashImage {
    base: Arc<BaseImage>,
    /// `(byte offset, chunk)` patches over `base`, sorted by offset; every
    /// offset is granule-aligned and unique. Chunks overlapping the image
    /// end are zero-padded past it.
    overlay: Vec<(u64, [u8; GRANULE])>,
    /// Lazily materialized dense bytes (base + overlay), so `bytes()` and
    /// `read()` can keep returning plain slices.
    dense: OnceLock<Vec<u8>>,
}

impl CrashImage {
    /// Wrap raw persistent bytes as a crash image.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        CrashImage {
            base: BaseImage::new(bytes),
            overlay: Vec::new(),
            dense: OnceLock::new(),
        }
    }

    /// Build a copy-on-write image: `base` patched by `overlay`, which must
    /// be sorted by (granule-aligned) offset with unique offsets.
    pub(crate) fn from_overlay(base: Arc<BaseImage>, overlay: Vec<(u64, [u8; GRANULE])>) -> Self {
        debug_assert!(overlay.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(overlay.iter().all(|&(off, _)| off % GRANULE as u64 == 0));
        CrashImage {
            base,
            overlay,
            dense: OnceLock::new(),
        }
    }

    /// Image size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.base.bytes.len()
    }

    /// Number of overlay bytes carried on top of the shared base (`0` for a
    /// dense image).
    #[must_use]
    pub fn overlay_bytes(&self) -> usize {
        self.overlay.len() * GRANULE
    }

    /// Content identity for verdict memoization: `(base id, overlay hash)`.
    /// Two images with equal keys hold identical logical bytes (base ids
    /// are never reused and overlay hashes cover offsets and contents);
    /// unequal keys say nothing.
    #[must_use]
    pub fn cache_key(&self) -> (u64, u64) {
        // FNV-1a over the overlay entries, offset then chunk.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for &(off, chunk) in &self.overlay {
            off.to_le_bytes().into_iter().for_each(&mut eat);
            chunk.into_iter().for_each(&mut eat);
        }
        (self.base.id, h)
    }

    /// The surviving bytes (materializes a dense copy once for overlay
    /// images; shared-base images with no overlay borrow the base).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        if self.overlay.is_empty() {
            return &self.base.bytes;
        }
        self.dense.get_or_init(|| {
            let mut bytes = self.base.bytes.clone();
            let size = bytes.len();
            for &(off, chunk) in &self.overlay {
                let start = off as usize;
                let n = GRANULE.min(size.saturating_sub(start));
                bytes[start..start + n].copy_from_slice(&chunk[..n]);
            }
            bytes
        })
    }

    /// Read a little-endian `u64` at `off`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] past the image end.
    pub fn load_u64(&self, off: u64) -> Result<u64, PmemError> {
        let start = off as usize;
        let end = start.checked_add(8).filter(|&e| e <= self.size());
        let Some(end) = end else {
            return Err(PmemError::OutOfBounds {
                off,
                len: 8,
                pool_size: self.size(),
            });
        };
        if !self.overlay.is_empty() && off.is_multiple_of(GRANULE as u64) {
            // Aligned fast path: one binary search, no materialization.
            return Ok(match self.overlay.binary_search_by_key(&off, |e| e.0) {
                Ok(i) => u64::from_le_bytes(self.overlay[i].1),
                Err(_) => u64::from_le_bytes(
                    self.base.bytes[start..end]
                        .try_into()
                        .expect("8-byte slice"),
                ),
            });
        }
        Ok(u64::from_le_bytes(
            self.bytes()[start..end].try_into().expect("8-byte slice"),
        ))
    }

    /// Read `len` bytes at `off`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] past the image end.
    pub fn read(&self, off: u64, len: usize) -> Result<&[u8], PmemError> {
        let start = off as usize;
        let end = start.checked_add(len).filter(|&e| e <= self.size());
        match end {
            Some(end) => Ok(&self.bytes()[start..end]),
            None => Err(PmemError::OutOfBounds {
                off,
                len,
                pool_size: self.size(),
            }),
        }
    }

    /// Persist the image to a file (the paper's duplicated pool file).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.bytes())
    }

    /// Load an image previously written with [`CrashImage::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(CrashImage::from_bytes(std::fs::read(path)?))
    }
}

/// Equality is over the *logical* bytes: a COW image equals the eager dense
/// copy of the same crash point regardless of representation.
impl PartialEq for CrashImage {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.base, &other.base) && self.overlay == other.overlay {
            return true;
        }
        self.bytes() == other.bytes()
    }
}

impl Eq for CrashImage {}

/// Full checkpoint of pool state: both images, granule metadata, and the
/// store sequence counter. Used for the fuzzer's in-memory checkpoints of an
/// initialized pool (the AFL++ fork-server substitute, §5).
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    volatile: Vec<u8>,
    persistent: Arc<BaseImage>,
    meta: HashMap<u64, GranuleMeta>,
    seq: u64,
}

impl PoolSnapshot {
    pub(crate) fn new(
        volatile: Vec<u8>,
        persistent: Vec<u8>,
        meta: HashMap<u64, GranuleMeta>,
        seq: u64,
    ) -> Self {
        PoolSnapshot {
            volatile,
            persistent: BaseImage::new(persistent),
            meta,
            seq,
        }
    }

    /// Cache-visible bytes at checkpoint time.
    #[must_use]
    pub fn volatile(&self) -> &[u8] {
        &self.volatile
    }

    /// Persistent bytes at checkpoint time.
    #[must_use]
    pub fn persistent(&self) -> &[u8] {
        &self.persistent.bytes
    }

    /// Shared persistent base (restored pools remember it for delta restore
    /// and COW crash-image capture).
    pub(crate) fn base(&self) -> &Arc<BaseImage> {
        &self.persistent
    }

    /// Identity of the persistent base image.
    #[must_use]
    pub fn base_id(&self) -> u64 {
        self.persistent.id
    }

    /// Granule metadata at checkpoint time.
    #[must_use]
    pub fn meta(&self) -> &HashMap<u64, GranuleMeta> {
        &self.meta
    }

    /// Store sequence counter at checkpoint time.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_image_reads() {
        let mut b = vec![0u8; 32];
        b[8..16].copy_from_slice(&12345u64.to_le_bytes());
        let img = CrashImage::from_bytes(b);
        assert_eq!(img.load_u64(8).unwrap(), 12345);
        assert_eq!(img.read(8, 8).unwrap(), &12345u64.to_le_bytes());
        assert!(img.load_u64(32).is_err());
        assert!(img.read(30, 4).is_err());
    }

    #[test]
    fn save_open_roundtrip() {
        let img = CrashImage::from_bytes(vec![9u8; 64]);
        let dir = std::env::temp_dir().join("pmrace-pmem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("img-{}.pool", std::process::id()));
        img.save(&path).unwrap();
        let back = CrashImage::open(&path).unwrap();
        assert_eq!(img, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overlay_image_matches_dense_patch() {
        let base = BaseImage::new((0u8..64).collect());
        let mut dense = base.bytes().to_vec();
        dense[16..24].copy_from_slice(&7u64.to_le_bytes());
        dense[40..48].copy_from_slice(&9u64.to_le_bytes());
        let cow = CrashImage::from_overlay(
            Arc::clone(&base),
            vec![(16, 7u64.to_le_bytes()), (40, 9u64.to_le_bytes())],
        );
        let eager = CrashImage::from_bytes(dense.clone());
        assert_eq!(cow, eager, "logical-byte equality across representations");
        assert_eq!(cow.bytes(), &dense[..]);
        assert_eq!(cow.load_u64(16).unwrap(), 7);
        assert_eq!(
            cow.load_u64(8).unwrap(),
            u64::from_le_bytes(dense[8..16].try_into().unwrap())
        );
        // Misaligned load crosses an overlay boundary.
        assert_eq!(
            cow.load_u64(12).unwrap(),
            u64::from_le_bytes(dense[12..20].try_into().unwrap())
        );
        assert_eq!(cow.read(38, 6).unwrap(), &dense[38..44]);
        assert_eq!(cow.overlay_bytes(), 16);
        assert!(cow.load_u64(57).is_err());
    }

    #[test]
    fn cache_keys_separate_bases_and_overlays() {
        let base = BaseImage::new(vec![0u8; 64]);
        let a = CrashImage::from_overlay(Arc::clone(&base), vec![(0, [1; 8])]);
        let b = CrashImage::from_overlay(Arc::clone(&base), vec![(0, [2; 8])]);
        let c = CrashImage::from_overlay(Arc::clone(&base), vec![(0, [1; 8])]);
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key(), c.cache_key());
        let other_base = CrashImage::from_bytes(vec![0u8; 64]);
        assert_ne!(a.cache_key().0, other_base.cache_key().0);
    }
}

//! Crash images and full pool checkpoints.

use std::collections::HashMap;
use std::path::Path;

use crate::{GranuleMeta, PmemError};

/// The bytes that survive a crash: a copy of the persistent image.
///
/// PMRace duplicates the mmapped pool file at each detected crash point
/// (§4.4); a `CrashImage` is that duplicate. Recovery code runs against a
/// [`Pool`](crate::Pool) rebuilt from it via
/// [`Pool::from_crash_image`](crate::Pool::from_crash_image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImage {
    bytes: Vec<u8>,
}

impl CrashImage {
    /// Wrap raw persistent bytes as a crash image.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        CrashImage { bytes }
    }

    /// The surviving bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Read a little-endian `u64` at `off`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] past the image end.
    pub fn load_u64(&self, off: u64) -> Result<u64, PmemError> {
        let start = off as usize;
        let end = start.checked_add(8).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => Ok(u64::from_le_bytes(
                self.bytes[start..end].try_into().expect("8-byte slice"),
            )),
            None => Err(PmemError::OutOfBounds {
                off,
                len: 8,
                pool_size: self.bytes.len(),
            }),
        }
    }

    /// Read `len` bytes at `off`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] past the image end.
    pub fn read(&self, off: u64, len: usize) -> Result<&[u8], PmemError> {
        let start = off as usize;
        let end = start.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => Ok(&self.bytes[start..end]),
            None => Err(PmemError::OutOfBounds {
                off,
                len,
                pool_size: self.bytes.len(),
            }),
        }
    }

    /// Persist the image to a file (the paper's duplicated pool file).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, &self.bytes)
    }

    /// Load an image previously written with [`CrashImage::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(CrashImage {
            bytes: std::fs::read(path)?,
        })
    }
}

/// Full checkpoint of pool state: both images, granule metadata, and the
/// store sequence counter. Used for the fuzzer's in-memory checkpoints of an
/// initialized pool (the AFL++ fork-server substitute, §5).
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    volatile: Vec<u8>,
    persistent: Vec<u8>,
    meta: HashMap<u64, GranuleMeta>,
    seq: u64,
}

impl PoolSnapshot {
    pub(crate) fn new(
        volatile: Vec<u8>,
        persistent: Vec<u8>,
        meta: HashMap<u64, GranuleMeta>,
        seq: u64,
    ) -> Self {
        PoolSnapshot {
            volatile,
            persistent,
            meta,
            seq,
        }
    }

    /// Cache-visible bytes at checkpoint time.
    #[must_use]
    pub fn volatile(&self) -> &[u8] {
        &self.volatile
    }

    /// Persistent bytes at checkpoint time.
    #[must_use]
    pub fn persistent(&self) -> &[u8] {
        &self.persistent
    }

    /// Granule metadata at checkpoint time.
    #[must_use]
    pub fn meta(&self) -> &HashMap<u64, GranuleMeta> {
        &self.meta
    }

    /// Store sequence counter at checkpoint time.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_image_reads() {
        let mut b = vec![0u8; 32];
        b[8..16].copy_from_slice(&12345u64.to_le_bytes());
        let img = CrashImage::from_bytes(b);
        assert_eq!(img.load_u64(8).unwrap(), 12345);
        assert_eq!(img.read(8, 8).unwrap(), &12345u64.to_le_bytes());
        assert!(img.load_u64(32).is_err());
        assert!(img.read(30, 4).is_err());
    }

    #[test]
    fn save_open_roundtrip() {
        let img = CrashImage::from_bytes(vec![9u8; 64]);
        let dir = std::env::temp_dir().join("pmrace-pmem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("img-{}.pool", std::process::id()));
        img.save(&path).unwrap();
        let back = CrashImage::open(&path).unwrap();
        assert_eq!(img, back);
        let _ = std::fs::remove_file(&path);
    }
}

//! Software persistent-memory substrate for PMRace.
//!
//! This crate models the failure semantics of real persistent memory (PM)
//! behind volatile write-back CPU caches, the substrate every other PMRace
//! crate builds on. It replaces the Optane hardware used in the paper with a
//! deterministic software model that preserves exactly the property the bug
//! class depends on: *a store is visible to other threads before it is
//! persistent*, and the persist order is decoupled from the store order.
//!
//! # Model
//!
//! A [`Pool`] holds two byte images:
//!
//! - the **volatile image** — what loads observe (cache-visible state), and
//! - the **persistent image** — what survives a crash.
//!
//! Every 8-byte *granule* carries a persistency state ([`PersistState`])
//! driven by the instruction stream:
//!
//! ```text
//!   store   : volatile image updated, granule -> Dirty(writer)
//!   clwb    : Dirty granules of the line captured -> Flushing (write-back queued)
//!   sfence  : queued captures reach the persistent image, Flushing -> Clean
//!   ntstore : both images updated immediately, granule -> Clean
//!   crash   : volatile image and all queued write-backs are lost
//! ```
//!
//! This is the §3.1 failure model of the paper (ADR platforms: CPU caches are
//! outside the persistent domain). Optional random eviction
//! ([`Pool::evict_random`]) models hardware cache eviction persisting lines
//! at arbitrary points.
//!
//! # Quick example
//!
//! ```
//! # use pmrace_pmem::{Pool, PoolOpts, ThreadId, SiteTag};
//! # fn main() -> Result<(), pmrace_pmem::PmemError> {
//! let pool = Pool::new(PoolOpts::small());
//! let t = ThreadId(0);
//! pool.store_u64(64, 42, t, SiteTag(1))?;
//! assert_eq!(pool.load_u64(64)?.0, 42);          // visible...
//! assert_eq!(pool.crash_image()?.load_u64(64)?, 0); // ...but not yet persistent
//! pool.clwb(64, 8, t)?;
//! pool.sfence(t)?;
//! assert_eq!(pool.crash_image()?.load_u64(64)?, 42); // persisted after clwb+sfence
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod error;
mod image;
mod pool;
mod snapshot;

pub use alloc::{AllocStats, PmAllocator, TxAllocHandle};
pub use error::PmemError;
pub use image::{granule_hash, GranuleMeta, PersistState, CACHE_LINE, GRANULE};
pub use pool::{InitCost, LoadInfo, Pool, PoolOpts, RestoreMode, StoreInfo};
pub use snapshot::{CrashImage, PoolSnapshot};

/// Identifier of a thread executing against a [`Pool`].
///
/// Thread ids are assigned by the harness per fuzz campaign (small dense
/// integers), not OS thread ids. They feed the inter- vs intra-thread
/// distinction of the checkers: a load of a `Dirty` granule whose writer has
/// a different `ThreadId` is a *PM Inter-thread Inconsistency Candidate*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Opaque per-store tag recorded in granule metadata.
///
/// The runtime passes the static instruction-site id of the store here, so a
/// later load of non-persisted data can name the store instruction that wrote
/// it (the paper's "write code" column in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteTag(pub u32);

impl std::fmt::Display for SiteTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

//! Error type for the PM substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by [`Pool`](crate::Pool) and
/// [`PmAllocator`](crate::PmAllocator) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmemError {
    /// An access touched bytes outside the pool.
    OutOfBounds {
        /// Start offset of the offending access.
        off: u64,
        /// Length of the offending access in bytes.
        len: usize,
        /// Total pool size in bytes.
        pool_size: usize,
    },
    /// An access required alignment the offset does not satisfy.
    Misaligned {
        /// Offending offset.
        off: u64,
        /// Required alignment in bytes.
        align: usize,
    },
    /// The persistent allocator ran out of space.
    OutOfMemory {
        /// Allocation size that failed.
        requested: usize,
    },
    /// The allocator header in the pool is corrupt or not initialized.
    BadAllocHeader {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// `free` was called on an offset that is not a live allocation.
    BadFree {
        /// Offending offset.
        off: u64,
    },
    /// A transactional allocation handle was used after commit/abort.
    TxClosed,
    /// A pool image had an unexpected size or magic value.
    InvalidImage {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfBounds {
                off,
                len,
                pool_size,
            } => write!(
                f,
                "access [{off:#x}, {:#x}) outside pool of {pool_size} bytes",
                off + *len as u64
            ),
            PmemError::Misaligned { off, align } => {
                write!(f, "offset {off:#x} is not {align}-byte aligned")
            }
            PmemError::OutOfMemory { requested } => {
                write!(
                    f,
                    "persistent allocator out of memory ({requested} bytes requested)"
                )
            }
            PmemError::BadAllocHeader { reason } => {
                write!(f, "allocator header invalid: {reason}")
            }
            PmemError::BadFree { off } => write!(f, "free of non-allocated offset {off:#x}"),
            PmemError::TxClosed => write!(f, "transactional allocation handle already closed"),
            PmemError::InvalidImage { reason } => write!(f, "invalid pool image: {reason}"),
        }
    }
}

impl Error for PmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let samples: Vec<PmemError> = vec![
            PmemError::OutOfBounds {
                off: 8,
                len: 16,
                pool_size: 4,
            },
            PmemError::Misaligned { off: 3, align: 8 },
            PmemError::OutOfMemory { requested: 64 },
            PmemError::BadAllocHeader { reason: "magic" },
            PmemError::BadFree { off: 9 },
            PmemError::TxClosed,
            PmemError::InvalidImage { reason: "size" },
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmemError>();
    }
}

//! Byte images, per-granule persistency metadata, and the sharded layout.
//!
//! The pool's state is split into [`N_SHARDS`] address-interleaved shards so
//! that concurrent accesses to different cache lines synchronize on different
//! locks. Shard `s` owns every cache line `l` with `l % N_SHARDS == s`;
//! adjacent lines always land in different shards, so even neighbouring
//! threads do not collide. All geometry helpers live here next to the
//! [`Shard`] they index into.

use crate::{SiteTag, ThreadId};

/// Size in bytes of a persistency-tracking granule (one machine word).
///
/// The paper's runtime records persistency states in a hash table keyed by
/// address; we track at 8-byte granularity, which matches the word-sized PM
/// stores all evaluated systems use for their racy metadata.
pub const GRANULE: usize = 8;

/// Size in bytes of a cache line; `clwb` affects a whole line.
pub const CACHE_LINE: usize = 64;

/// Number of address-interleaved shards the pool image is split into.
pub(crate) const N_SHARDS: usize = 64;

/// Granules per cache line.
pub(crate) const GRANULES_PER_LINE: u64 = (CACHE_LINE / GRANULE) as u64;

/// Persistency state of one granule (the paper's `PM_DIRTY` / `PM_CLEAN`
/// plus the intermediate write-back-queued state between `clwb` and
/// `sfence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PersistState {
    /// Volatile and persistent images agree; a crash loses nothing here.
    #[default]
    Clean,
    /// A store reached the volatile image but no write-back is queued.
    /// Loading this granule from another thread is a *PM Inter-thread
    /// Inconsistency Candidate*.
    Dirty,
    /// `clwb` captured the granule; the capture persists at the next
    /// `sfence`. Still lost on a crash before the fence.
    Flushing,
}

impl PersistState {
    /// `true` when a crash right now would lose the latest store to this
    /// granule (`Dirty` or `Flushing`).
    #[must_use]
    pub fn is_unpersisted(self) -> bool {
        !matches!(self, PersistState::Clean)
    }
}

impl std::fmt::Display for PersistState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PersistState::Clean => "PM_CLEAN",
            PersistState::Dirty => "PM_DIRTY",
            PersistState::Flushing => "PM_FLUSHING",
        };
        f.write_str(s)
    }
}

/// Metadata attached to a granule by the most recent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GranuleMeta {
    /// Persistency state of the granule.
    pub state: PersistState,
    /// Thread that issued the most recent store.
    pub writer: ThreadId,
    /// Instruction-site tag of the most recent store.
    pub tag: SiteTag,
    /// Monotonic sequence number of the most recent store (pool-wide).
    pub seq: u64,
}

// --- geometry -------------------------------------------------------------
//
// Global cache line l  ->  shard l % 64, local line l / 64.
// Global granule g     ->  line g / 8, granule g % 8 within the line.
// A granule never spans lines (8 | 64), so any per-line walk visits each
// granule exactly once.

/// Granule index containing byte offset `off`.
pub(crate) fn granule_of(off: u64) -> u64 {
    off / GRANULE as u64
}

/// Fibonacci multiplicative hash of a granule index.
///
/// Granule indices produced by real workloads are strongly structured —
/// line-aligned allocations make them multiples of
/// [`GRANULES_PER_LINE`](GRANULE), so low bits carry almost no entropy and
/// `g % N` table indexing degenerates. Multiplying by `⌊2⁶⁴/φ⌋` spreads
/// those patterns uniformly over the *high* bits; callers take however many
/// top bits they need: `granule_hash(g) >> (64 - BITS)`. The instrumentation
/// runtime uses this for its direct-mapped granule-metadata cache and its
/// taint-presence filter.
#[must_use]
#[inline]
pub fn granule_hash(g: u64) -> u64 {
    g.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Granule indices overlapped by `[off, off+len)`.
#[allow(clippy::reversed_empty_ranges)]
pub(crate) fn granules(off: u64, len: usize) -> std::ops::RangeInclusive<u64> {
    if len == 0 {
        // An empty range; the caller filters these out.
        return 1..=0;
    }
    granule_of(off)..=granule_of(off + len as u64 - 1)
}

/// Shard owning cache line `line`.
pub(crate) fn shard_of_line(line: u64) -> usize {
    (line % N_SHARDS as u64) as usize
}

/// Index of `line` within its owning shard.
pub(crate) fn local_line(line: u64) -> usize {
    (line / N_SHARDS as u64) as usize
}

/// Shard owning global granule `g`.
pub(crate) fn shard_of_granule(g: u64) -> usize {
    shard_of_line(g / GRANULES_PER_LINE)
}

/// Shard-local granule index of global granule `g`.
pub(crate) fn local_granule(g: u64) -> u32 {
    let line = g / GRANULES_PER_LINE;
    (local_line(line) as u64 * GRANULES_PER_LINE + g % GRANULES_PER_LINE) as u32
}

/// Global granule index of shard `s`'s local granule `lg`.
pub(crate) fn global_granule(s: usize, lg: u32) -> u64 {
    let ll = u64::from(lg) / GRANULES_PER_LINE;
    let within = u64::from(lg) % GRANULES_PER_LINE;
    (ll * N_SHARDS as u64 + s as u64) * GRANULES_PER_LINE + within
}

/// Shard-local byte index of global byte offset `off`.
pub(crate) fn local_byte(off: u64) -> usize {
    local_line(off / CACHE_LINE as u64) * CACHE_LINE + (off % CACHE_LINE as u64) as usize
}

/// Number of cache lines shard `s` owns in a pool of `size` bytes.
pub(crate) fn lines_of_shard(s: usize, size: usize) -> usize {
    let total_lines = size.div_ceil(CACHE_LINE);
    (total_lines.saturating_sub(s)).div_ceil(N_SHARDS)
}

/// One shard of the pool image: the interleaved cache lines it owns, stored
/// contiguously, plus direct-indexed granule metadata and the shard's slice
/// of the queued write-backs. Interior piece of [`Pool`](crate::Pool); each
/// shard sits behind its own lock, and all cross-shard coordination lives in
/// the pool.
///
/// The tail line of the pool may be shorter than [`CACHE_LINE`]; its shard
/// still stores a full padded line. Padding bytes can never be written
/// (pool-level bounds checks reject them), so they stay zero and granule
/// captures over the tail read zeros — the same truncation the dense image
/// used to apply.
#[derive(Debug)]
pub(crate) struct Shard {
    /// Cache-visible bytes of the owned lines, concatenated by local line.
    pub(crate) volatile: Vec<u8>,
    /// Persistent bytes of the owned lines.
    pub(crate) persistent: Vec<u8>,
    /// Per-granule metadata, direct-indexed by local granule. `seq == 0`
    /// means "never written" (real sequence numbers start at 1).
    pub(crate) meta: Vec<GranuleMeta>,
    /// Write-backs queued by `clwb`: `(local granule, issuing thread,
    /// captured bytes)`, applied at that thread's `sfence`. At most one
    /// entry per granule.
    pub(crate) pending: Vec<(u32, ThreadId, [u8; GRANULE])>,
    /// Local granules that *may* be unpersisted: a superset maintained
    /// lazily. Push is O(1) on the store path; entries whose granule went
    /// back to `Clean` are swept out by [`Shard::compact_dirty`] on the cold
    /// paths that consume the list.
    pub(crate) dirty: Vec<u32>,
    /// Membership flags for `dirty` (no duplicate entries).
    dirty_flag: Vec<bool>,
    /// Local granules whose metadata was ever set since the last
    /// [`Shard::clear_tracking`]; lets snapshot/restore touch only written
    /// metadata instead of sweeping the whole pool. May contain granules
    /// whose meta was later reset to default (a delta restore of a
    /// never-snapshotted granule); consumers filter on `seq != 0`.
    pub(crate) touched: Vec<u32>,
    /// Membership flags for `touched` (no duplicate entries).
    touched_flag: Vec<bool>,
    /// Restore epoch: bumped at the end of every pool restore. Granules
    /// stamped with the current epoch are exactly those whose metadata
    /// changed since the last restore — the O(dirty) working set that delta
    /// restore copies back and copy-on-write crash images overlay.
    epoch: u32,
    /// Per-granule epoch stamp (`0` = never stamped).
    epoch_stamp: Vec<u32>,
    /// Local granules stamped with the current epoch, in stamp order.
    pub(crate) epoch_list: Vec<u32>,
}

impl Shard {
    pub(crate) fn new(lines: usize) -> Self {
        Shard {
            volatile: vec![0; lines * CACHE_LINE],
            persistent: vec![0; lines * CACHE_LINE],
            meta: vec![GranuleMeta::default(); lines * GRANULES_PER_LINE as usize],
            pending: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: vec![false; lines * GRANULES_PER_LINE as usize],
            touched: Vec::new(),
            touched_flag: vec![false; lines * GRANULES_PER_LINE as usize],
            epoch: 1,
            epoch_stamp: vec![0; lines * GRANULES_PER_LINE as usize],
            epoch_list: Vec::new(),
        }
    }

    /// Overwrite granule metadata, keeping the touched, dirty, and epoch
    /// lists consistent.
    pub(crate) fn set_meta(&mut self, lg: u32, m: GranuleMeta) {
        let i = lg as usize;
        if !self.touched_flag[i] {
            self.touched_flag[i] = true;
            self.touched.push(lg);
        }
        if self.epoch_stamp[i] != self.epoch {
            self.epoch_stamp[i] = self.epoch;
            self.epoch_list.push(lg);
        }
        self.meta[i] = m;
        if m.state.is_unpersisted() && !self.dirty_flag[i] {
            self.dirty_flag[i] = true;
            self.dirty.push(lg);
        }
    }

    /// Close the current restore epoch: everything stamped so far becomes
    /// "already restored"; the next epoch starts empty. Called at the *end*
    /// of both restore paths so the restore's own metadata writes do not
    /// pollute the new epoch.
    pub(crate) fn end_epoch(&mut self) {
        self.epoch_list.clear();
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            // ~4 billion restores: recycle stamps rather than alias epoch 0
            // ("never stamped") with a live epoch.
            self.epoch_stamp.fill(0);
            1
        });
    }

    /// Drop dirty-list entries whose granule is `Clean` again.
    pub(crate) fn compact_dirty(&mut self) {
        let meta = &self.meta;
        let flags = &mut self.dirty_flag;
        self.dirty.retain(|&lg| {
            if meta[lg as usize].state.is_unpersisted() {
                true
            } else {
                flags[lg as usize] = false;
                false
            }
        });
    }

    /// Forget all list/flag state (full-restore path). Metadata of
    /// previously touched granules is reset to default.
    pub(crate) fn clear_tracking(&mut self) {
        for &lg in &self.dirty {
            self.dirty_flag[lg as usize] = false;
        }
        self.dirty.clear();
        for &lg in &self.touched {
            self.meta[lg as usize] = GranuleMeta::default();
            self.touched_flag[lg as usize] = false;
        }
        self.touched.clear();
        self.pending.clear();
    }

    /// Capture the current volatile content of local granule `lg`.
    pub(crate) fn capture(&self, lg: u32) -> [u8; GRANULE] {
        let start = lg as usize * GRANULE;
        let mut out = [0u8; GRANULE];
        out.copy_from_slice(&self.volatile[start..start + GRANULE]);
        out
    }

    /// Apply one queued write-back to the persistent image.
    pub(crate) fn apply(&mut self, lg: u32, bytes: [u8; GRANULE]) {
        let start = lg as usize * GRANULE;
        self.persistent[start..start + GRANULE].copy_from_slice(&bytes);
    }

    /// Position of granule `lg` in the pending queue, if queued.
    pub(crate) fn pending_pos(&self, lg: u32) -> Option<usize> {
        self.pending.iter().position(|&(g, _, _)| g == lg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_math() {
        assert_eq!(granule_of(0), 0);
        assert_eq!(granule_of(7), 0);
        assert_eq!(granule_of(8), 1);
        let r = granules(6, 4); // bytes 6..10 span granules 0 and 1
        assert_eq!(r, 0..=1);
        let r = granules(8, 8);
        assert_eq!(r, 1..=1);
        assert!(granules(16, 0).is_empty());
    }

    #[test]
    fn persist_state_default_is_clean() {
        assert_eq!(PersistState::default(), PersistState::Clean);
        assert!(!PersistState::Clean.is_unpersisted());
        assert!(PersistState::Dirty.is_unpersisted());
        assert!(PersistState::Flushing.is_unpersisted());
    }

    #[test]
    fn shard_geometry_roundtrips() {
        // Adjacent lines are owned by different shards.
        assert_ne!(shard_of_line(0), shard_of_line(1));
        assert_eq!(shard_of_line(0), shard_of_line(N_SHARDS as u64));
        // Granule <-> (shard, local granule) is a bijection.
        for g in (0..20_000u64).chain([1 << 30, (1 << 30) + 511]) {
            let s = shard_of_granule(g);
            let lg = local_granule(g);
            assert_eq!(global_granule(s, lg), g, "granule {g}");
        }
        // Bytes of one line are contiguous in their shard.
        let line = 65u64; // shard 1, local line 1
        let base = line * CACHE_LINE as u64;
        assert_eq!(local_byte(base), CACHE_LINE);
        assert_eq!(local_byte(base + 63), 2 * CACHE_LINE - 1);
    }

    #[test]
    fn lines_are_distributed_evenly() {
        // 65 lines: shard 0 owns lines 0 and 64, everyone else one line.
        let size = 65 * CACHE_LINE;
        assert_eq!(lines_of_shard(0, size), 2);
        for s in 1..N_SHARDS {
            assert_eq!(lines_of_shard(s, size), 1);
        }
        let total: usize = (0..N_SHARDS).map(|s| lines_of_shard(s, size)).sum();
        assert_eq!(total, 65);
        // A pool smaller than one line still gets one (padded) line.
        assert_eq!(lines_of_shard(0, 12), 1);
        assert_eq!(lines_of_shard(1, 12), 0);
    }

    #[test]
    fn capture_and_apply_roundtrip() {
        let mut shard = Shard::new(1);
        shard.volatile[8..16].copy_from_slice(&7u64.to_le_bytes());
        let cap = shard.capture(1);
        assert_eq!(u64::from_le_bytes(cap), 7);
        shard.apply(1, cap);
        assert_eq!(&shard.persistent[8..16], &7u64.to_le_bytes());
    }

    #[test]
    fn dirty_list_is_lazy_superset() {
        let mut shard = Shard::new(1);
        let dirty = GranuleMeta {
            state: PersistState::Dirty,
            seq: 1,
            ..GranuleMeta::default()
        };
        shard.set_meta(3, dirty);
        shard.set_meta(3, dirty); // no duplicate entry
        assert_eq!(shard.dirty, vec![3]);
        assert_eq!(shard.touched, vec![3]);
        shard.set_meta(
            3,
            GranuleMeta {
                state: PersistState::Clean,
                seq: 2,
                ..GranuleMeta::default()
            },
        );
        assert_eq!(shard.dirty, vec![3], "stale entry until compaction");
        shard.compact_dirty();
        assert!(shard.dirty.is_empty());
        // Re-dirtying after compaction re-registers the granule.
        shard.set_meta(3, GranuleMeta { seq: 3, ..dirty });
        assert_eq!(shard.dirty, vec![3]);
        assert_eq!(shard.touched, vec![3], "touched only records first write");
    }

    #[test]
    fn epoch_list_tracks_writes_since_last_restore() {
        let mut shard = Shard::new(1);
        let m = GranuleMeta {
            state: PersistState::Dirty,
            seq: 1,
            ..GranuleMeta::default()
        };
        shard.set_meta(2, m);
        shard.set_meta(2, m); // no duplicate entry
        shard.set_meta(5, m);
        assert_eq!(shard.epoch_list, vec![2, 5]);
        shard.end_epoch();
        assert!(shard.epoch_list.is_empty(), "restore closes the epoch");
        shard.set_meta(2, m);
        assert_eq!(shard.epoch_list, vec![2], "re-stamped under the new epoch");
        assert_eq!(shard.touched, vec![2, 5], "touched spans epochs");
    }
}

//! Byte images and per-granule persistency metadata.

use std::collections::HashMap;

use crate::{SiteTag, ThreadId};

/// Size in bytes of a persistency-tracking granule (one machine word).
///
/// The paper's runtime records persistency states in a hash table keyed by
/// address; we track at 8-byte granularity, which matches the word-sized PM
/// stores all evaluated systems use for their racy metadata.
pub const GRANULE: usize = 8;

/// Size in bytes of a cache line; `clwb` affects a whole line.
pub const CACHE_LINE: usize = 64;

/// Persistency state of one granule (the paper's `PM_DIRTY` / `PM_CLEAN`
/// plus the intermediate write-back-queued state between `clwb` and
/// `sfence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PersistState {
    /// Volatile and persistent images agree; a crash loses nothing here.
    #[default]
    Clean,
    /// A store reached the volatile image but no write-back is queued.
    /// Loading this granule from another thread is a *PM Inter-thread
    /// Inconsistency Candidate*.
    Dirty,
    /// `clwb` captured the granule; the capture persists at the next
    /// `sfence`. Still lost on a crash before the fence.
    Flushing,
}

impl PersistState {
    /// `true` when a crash right now would lose the latest store to this
    /// granule (`Dirty` or `Flushing`).
    #[must_use]
    pub fn is_unpersisted(self) -> bool {
        !matches!(self, PersistState::Clean)
    }
}

impl std::fmt::Display for PersistState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PersistState::Clean => "PM_CLEAN",
            PersistState::Dirty => "PM_DIRTY",
            PersistState::Flushing => "PM_FLUSHING",
        };
        f.write_str(s)
    }
}

/// Metadata attached to a granule by the most recent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GranuleMeta {
    /// Persistency state of the granule.
    pub state: PersistState,
    /// Thread that issued the most recent store.
    pub writer: ThreadId,
    /// Instruction-site tag of the most recent store.
    pub tag: SiteTag,
    /// Monotonic sequence number of the most recent store (pool-wide).
    pub seq: u64,
}

/// Dense byte image plus sparse granule metadata. Interior piece of
/// [`Pool`](crate::Pool); all synchronization lives in the pool.
#[derive(Debug)]
pub(crate) struct Image {
    pub(crate) volatile: Vec<u8>,
    pub(crate) persistent: Vec<u8>,
    /// Sparse per-granule metadata, keyed by granule index (offset / 8).
    pub(crate) meta: HashMap<u64, GranuleMeta>,
    /// Write-backs queued by `clwb` (keyed by granule, tagged with the
    /// issuing thread), applied to `persistent` at that thread's `sfence`.
    pub(crate) pending: HashMap<u64, (ThreadId, [u8; GRANULE])>,
    /// Pool-wide store sequence counter.
    pub(crate) seq: u64,
}

impl Image {
    pub(crate) fn new(size: usize) -> Self {
        Image {
            volatile: vec![0; size],
            persistent: vec![0; size],
            meta: HashMap::new(),
            pending: HashMap::new(),
            seq: 0,
        }
    }

    pub(crate) fn granule_of(off: u64) -> u64 {
        off / GRANULE as u64
    }

    /// Granule indices overlapped by `[off, off+len)`.
    pub(crate) fn granules(off: u64, len: usize) -> std::ops::RangeInclusive<u64> {
        if len == 0 {
            // An empty range; the caller filters these out.
            return 1..=0;
        }
        Self::granule_of(off)..=Self::granule_of(off + len as u64 - 1)
    }

    pub(crate) fn meta_of(&self, g: u64) -> GranuleMeta {
        self.meta.get(&g).copied().unwrap_or_default()
    }

    /// Apply one queued write-back (granule `g`) to the persistent image.
    pub(crate) fn apply_pending(&mut self, g: u64, bytes: [u8; GRANULE]) {
        let start = g as usize * GRANULE;
        let end = (start + GRANULE).min(self.persistent.len());
        self.persistent[start..end].copy_from_slice(&bytes[..end - start]);
    }

    /// Capture the current volatile content of granule `g`.
    pub(crate) fn capture(&self, g: u64) -> [u8; GRANULE] {
        let start = g as usize * GRANULE;
        let end = (start + GRANULE).min(self.volatile.len());
        let mut out = [0u8; GRANULE];
        out[..end - start].copy_from_slice(&self.volatile[start..end]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_math() {
        assert_eq!(Image::granule_of(0), 0);
        assert_eq!(Image::granule_of(7), 0);
        assert_eq!(Image::granule_of(8), 1);
        let r = Image::granules(6, 4); // bytes 6..10 span granules 0 and 1
        assert_eq!(r, 0..=1);
        let r = Image::granules(8, 8);
        assert_eq!(r, 1..=1);
        assert!(Image::granules(16, 0).is_empty());
    }

    #[test]
    fn persist_state_default_is_clean() {
        assert_eq!(PersistState::default(), PersistState::Clean);
        assert!(!PersistState::Clean.is_unpersisted());
        assert!(PersistState::Dirty.is_unpersisted());
        assert!(PersistState::Flushing.is_unpersisted());
    }

    #[test]
    fn capture_and_apply_roundtrip() {
        let mut img = Image::new(32);
        img.volatile[8..16].copy_from_slice(&7u64.to_le_bytes());
        let cap = img.capture(1);
        assert_eq!(u64::from_le_bytes(cap), 7);
        img.apply_pending(1, cap);
        assert_eq!(&img.persistent[8..16], &7u64.to_le_bytes());
    }

    #[test]
    fn capture_at_pool_tail_is_truncated() {
        let mut img = Image::new(12); // last granule is only 4 bytes
        img.volatile[8..12].copy_from_slice(&[1, 2, 3, 4]);
        let cap = img.capture(1);
        assert_eq!(&cap[..4], &[1, 2, 3, 4]);
        assert_eq!(&cap[4..], &[0; 4]);
        img.apply_pending(1, cap);
        assert_eq!(&img.persistent[8..12], &[1, 2, 3, 4]);
    }
}

//! Concurrency stress tests for the sharded pool: parallel stores on
//! disjoint cache lines must persist correctly, and whole-image operations
//! (`crash_image`, `snapshot`) must stay linearizable while stores are in
//! flight.

use std::sync::atomic::{AtomicBool, Ordering};

use pmrace_pmem::{Pool, PoolOpts, SiteTag, ThreadId, CACHE_LINE};

const THREADS: u64 = 8;
const LINES_PER_THREAD: u64 = 32;
const ROUNDS: u64 = 50;

fn thread_off(t: u64, line: u64) -> u64 {
    (t * LINES_PER_THREAD + line) * CACHE_LINE as u64
}

/// Every thread hammers its own cache lines (store + clwb + sfence); after
/// the storm, both the volatile image and the crash image hold each
/// thread's final values — nothing lost, nothing crossed between shards.
#[test]
fn disjoint_line_stores_persist_across_crash_image() {
    let pool = Pool::new(PoolOpts::with_size(1 << 20));
    let pool = &pool;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let tid = ThreadId(t as u32);
                let tag = SiteTag(t as u32 + 1);
                for round in 0..ROUNDS {
                    for line in 0..LINES_PER_THREAD {
                        let off = thread_off(t, line);
                        let value = (t << 32) | (line << 8) | round;
                        pool.store_u64(off, value, tid, tag).unwrap();
                        pool.persist(off, 8, tid).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(pool.unpersisted_granules(), 0, "all stores were persisted");
    let image = pool.crash_image().unwrap();
    for t in 0..THREADS {
        for line in 0..LINES_PER_THREAD {
            let off = thread_off(t, line);
            let want = (t << 32) | (line << 8) | (ROUNDS - 1);
            assert_eq!(
                pool.load_u64(off).unwrap().0,
                want,
                "volatile t{t} line{line}"
            );
            assert_eq!(
                image.load_u64(off).unwrap(),
                want,
                "persistent t{t} line{line}"
            );
        }
    }
}

/// Whole-image reads taken while writers are mid-flight must observe a
/// consistent snapshot: each 8-byte word a thread writes is either its old
/// or its new value, never a torn mix (the shard locks serialize per line,
/// and `crash_image` locks every shard).
#[test]
fn crash_image_is_consistent_under_concurrent_writers() {
    let pool = Pool::new(PoolOpts::with_size(1 << 18));
    let pool = &pool;
    let stop = AtomicBool::new(false);
    let stop = &stop;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let tid = ThreadId(t as u32);
                let tag = SiteTag(9);
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    for line in 0..8 {
                        let off = thread_off(t, line);
                        // Both words of the pair carry the same round value.
                        pool.ntstore_u64(off, round, tid, tag).unwrap();
                        pool.ntstore_u64(off + 8, round, tid, tag).unwrap();
                    }
                }
            });
        }
        s.spawn(move || {
            for _ in 0..40 {
                let image = pool.crash_image().unwrap();
                let snap = pool.snapshot();
                assert_eq!(snap.volatile().len(), image.bytes().len());
                for t in 0..4u64 {
                    for line in 0..8 {
                        let off = thread_off(t, line);
                        let a = image.load_u64(off).unwrap();
                        let b = image.load_u64(off + 8).unwrap();
                        // ntstores land per word; the pair may straddle one
                        // round boundary but never more (each round rewrites
                        // both), so values are from the same or adjacent
                        // rounds — a torn shard copy would show arbitrary
                        // divergence.
                        assert!(
                            a.abs_diff(b) <= 1,
                            "t{t} line{line}: torn image words {a} vs {b}"
                        );
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
}

/// Concurrent mixed traffic (stores, loads, clwb/sfence, store_u64 CAS-free
/// path) across all shards never deadlocks and keeps the store sequence
/// monotonic with the number of stores issued.
#[test]
fn mixed_traffic_has_no_deadlocks_and_counts_stores() {
    let pool = Pool::new(PoolOpts::with_size(1 << 18));
    let pool = &pool;
    let seq_before = pool.store_seq();
    let stores_per_thread = 400u64;
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                let tid = ThreadId(t as u32);
                let tag = SiteTag(3);
                for i in 0..stores_per_thread {
                    let off = thread_off(t % 4, i % 16) + (i % 2) * 8;
                    // Multi-line store every few iterations crosses shards.
                    if i % 8 == 0 {
                        let wide = [0xABu8; 128];
                        pool.store(off & !63, &wide, tid, tag).unwrap();
                    } else {
                        pool.store_u64(off, i, tid, tag).unwrap();
                    }
                    if i % 4 == 0 {
                        pool.clwb(off, 8, tid).unwrap();
                        pool.sfence(tid).unwrap();
                    }
                    let _ = pool.load_u64(off).unwrap();
                }
            });
        }
    });
    assert_eq!(pool.store_seq() - seq_before, 6 * stores_per_thread);
    // Whole-image ops still work after the storm.
    let _ = pool.unpersisted_regions();
    let _ = pool.crash_image().unwrap();
}

//! Property-based tests for the PM substrate's crash-consistency invariants.

use std::sync::Arc;

use pmrace_pmem::{PersistState, PmAllocator, Pool, PoolOpts, SiteTag, ThreadId};
use proptest::prelude::*;

const POOL: usize = 1 << 16;
const T0: ThreadId = ThreadId(0);
const T1: ThreadId = ThreadId(1);

/// One step of an arbitrary PM instruction stream.
#[derive(Debug, Clone)]
enum Op {
    Store { off: u64, val: u64, tid: u8 },
    Nt { off: u64, val: u64, tid: u8 },
    Clwb { off: u64, tid: u8 },
    Sfence { tid: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let off = (0u64..(POOL as u64 / 8 - 1)).prop_map(|g| g * 8);
    prop_oneof![
        (off.clone(), any::<u64>(), 0u8..2).prop_map(|(off, val, tid)| Op::Store { off, val, tid }),
        (off.clone(), any::<u64>(), 0u8..2).prop_map(|(off, val, tid)| Op::Nt { off, val, tid }),
        (off, 0u8..2).prop_map(|(off, tid)| Op::Clwb { off, tid }),
        (0u8..2).prop_map(|tid| Op::Sfence { tid }),
    ]
}

fn tid(t: u8) -> ThreadId {
    if t == 0 {
        T0
    } else {
        T1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The volatile image always reflects the program order of stores: a
    /// load returns the latest store to that word, regardless of flushes.
    #[test]
    fn volatile_image_is_store_order(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let pool = Pool::new(PoolOpts::with_size(POOL));
        let mut model = std::collections::HashMap::<u64, u64>::new();
        for op in &ops {
            match *op {
                Op::Store { off, val, tid: t } => {
                    pool.store_u64(off, val, tid(t), SiteTag(1)).unwrap();
                    model.insert(off, val);
                }
                Op::Nt { off, val, tid: t } => {
                    pool.ntstore_u64(off, val, tid(t), SiteTag(1)).unwrap();
                    model.insert(off, val);
                }
                Op::Clwb { off, tid: t } => pool.clwb(off, 8, tid(t)).unwrap(),
                Op::Sfence { tid: t } => pool.sfence(tid(t)).unwrap(),
            }
        }
        for (&off, &val) in &model {
            prop_assert_eq!(pool.load_u64(off).unwrap().0, val);
        }
    }

    /// Crash images only ever contain values that were present in the
    /// volatile image at some point (no invented bytes), and every granule
    /// that was persisted via clwb+sfence or ntstore holds a value at least
    /// as old as that persist point.
    #[test]
    fn crash_image_holds_only_written_values(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let pool = Pool::new(PoolOpts::with_size(POOL));
        // All values ever stored per word (including initial zero).
        let mut history = std::collections::HashMap::<u64, Vec<u64>>::new();
        for op in &ops {
            match *op {
                Op::Store { off, val, tid: t } => {
                    pool.store_u64(off, val, tid(t), SiteTag(1)).unwrap();
                    history.entry(off).or_default().push(val);
                }
                Op::Nt { off, val, tid: t } => {
                    pool.ntstore_u64(off, val, tid(t), SiteTag(1)).unwrap();
                    history.entry(off).or_default().push(val);
                }
                Op::Clwb { off, tid: t } => pool.clwb(off, 8, tid(t)).unwrap(),
                Op::Sfence { tid: t } => pool.sfence(tid(t)).unwrap(),
            }
        }
        let img = pool.crash_image().unwrap();
        for (&off, vals) in &history {
            let surviving = img.load_u64(off).unwrap();
            prop_assert!(
                surviving == 0 || vals.contains(&surviving),
                "granule {off:#x} survived with {surviving}, never stored"
            );
        }
    }

    /// A granule reported `Clean` always agrees between the volatile and
    /// persistent images; `Dirty`/`Flushing` granules may disagree.
    #[test]
    fn clean_granules_agree_across_images(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let pool = Pool::new(PoolOpts::with_size(POOL));
        let mut touched = std::collections::HashSet::new();
        for op in &ops {
            match *op {
                Op::Store { off, val, tid: t } => {
                    pool.store_u64(off, val, tid(t), SiteTag(1)).unwrap();
                    touched.insert(off);
                }
                Op::Nt { off, val, tid: t } => {
                    pool.ntstore_u64(off, val, tid(t), SiteTag(1)).unwrap();
                    touched.insert(off);
                }
                Op::Clwb { off, tid: t } => pool.clwb(off, 8, tid(t)).unwrap(),
                Op::Sfence { tid: t } => pool.sfence(tid(t)).unwrap(),
            }
        }
        let img = pool.crash_image().unwrap();
        for &off in &touched {
            if pool.meta_at(off).state == PersistState::Clean {
                prop_assert_eq!(
                    pool.load_u64(off).unwrap().0,
                    img.load_u64(off).unwrap(),
                    "clean granule {:#x} disagrees",
                    off
                );
            }
        }
    }

    /// Allocations never overlap, regardless of the alloc/free sequence.
    #[test]
    fn allocations_never_overlap(sizes in prop::collection::vec(1usize..512, 1..40),
                                 free_mask in prop::collection::vec(any::<bool>(), 1..40)) {
        let pool = Arc::new(Pool::new(PoolOpts::with_size(1 << 20)));
        let alloc = PmAllocator::format(pool, T0).unwrap();
        let mut live: Vec<(u64, usize)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let off = alloc.alloc(size, T0).unwrap();
            for &(o, s) in &live {
                let disjoint = off + size as u64 <= o || o + s as u64 <= off;
                prop_assert!(disjoint, "alloc [{off:#x};{size}] overlaps [{o:#x};{s}]");
            }
            live.push((off, size));
            if free_mask.get(i).copied().unwrap_or(false) && !live.is_empty() {
                let (o, _) = live.swap_remove(0);
                alloc.free(o, T0).unwrap();
            }
        }
    }
}

//! Minimal API-compatible stand-in for the `rand` 0.9 subset this workspace
//! uses, built for a fully offline build environment.
//!
//! The core generator is SplitMix64 — tiny, fast, and statistically strong
//! enough for fuzzing workloads (this repo uses randomness for mutation and
//! scheduling jitter, never for cryptography). The surface implemented:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{random,
//! random_range, random_bool, random_ratio}`, and
//! `seq::IndexedRandom::choose`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.next_u64() % u64::from(denominator) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic under [`SeedableRng::seed_from_u64`], which is the only
    /// construction path the workspace uses (all fuzzing runs are seeded for
    /// reproducibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Item;
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let z = rng.random_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn bool_ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| rng.random_ratio(1, 1)));
        assert!(!(0..100).any(|_| rng.random_ratio(0, 3)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), items.len());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(draw(&mut rng) < 10);
    }
}

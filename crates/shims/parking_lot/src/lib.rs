//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync` primitives.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be fetched. This shim provides the exact subset of the
//! `parking_lot` 0.12 API the workspace uses: non-poisoning `Mutex` /
//! `RwLock` with guard-returning `lock()` / `read()` / `write()` and
//! `into_inner()`, plus a `Condvar` usable with `Mutex` guards. Poisoned std
//! locks are transparently recovered (parking lot has no poisoning), which
//! matches how the workspace treats panics in worker threads: the data is
//! still consumed afterwards.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, LockResult, PoisonError};
use std::time::Duration;

/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// RAII guard of [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait_for`] can take the
/// guard by `&mut` (the `parking_lot` signature) while std's condvar
/// consumes and returns it; the slot is only ever empty *during* a wait,
/// when the caller cannot observe it.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard is live")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard is live")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(recover(self.0.lock())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable for use with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Wakes one thread blocked on this condvar.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all threads blocked on this condvar.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases `guard` and blocks until notified, reacquiring
    /// the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard is live");
        guard.0 = Some(recover(self.0.wait(g)));
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard is live");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `t`.
    pub fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g, "guard is usable again after the wait");
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let their = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*their;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}

//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync` primitives.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be fetched. This shim provides the exact subset of the
//! `parking_lot` 0.12 API the workspace uses: non-poisoning `Mutex` /
//! `RwLock` with guard-returning `lock()` / `read()` / `write()` and
//! `into_inner()`. Poisoned std locks are transparently recovered (parking
//! lot has no poisoning), which matches how the workspace treats panics in
//! worker threads: the data is still consumed afterwards.

#![forbid(unsafe_code)]

use std::sync::{self, LockResult, PoisonError};

/// Re-export of the std guard; `parking_lot` users never name it explicitly.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `t`.
    pub fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}

//! Minimal API-compatible timing harness standing in for `criterion` in a
//! fully offline build environment.
//!
//! Supports the subset the workspace benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//! Statistics are deliberately simple — mean ns/iter over an adaptive number
//! of iterations — because these benches are run for relative regression
//! tracking, not publication-grade confidence intervals.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so call sites may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-measurement time budget. Long benches (whole fuzzing sweeps) get one
/// sample; short ones are averaged over as many iterations as fit.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Runs one benchmark closure adaptively and returns (iters, total time).
fn measure<F: FnMut(&mut Bencher)>(mut f: F) -> (u64, Duration) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration iteration.
    f(&mut b);
    if b.elapsed >= TIME_BUDGET {
        return (b.iters, b.elapsed);
    }
    while b.elapsed < TIME_BUDGET {
        f(&mut b);
    }
    (b.iters, b.elapsed)
}

fn report(name: &str, iters: u64, elapsed: Duration) {
    let per_iter = if iters == 0 {
        0.0
    } else {
        elapsed.as_nanos() as f64 / iters as f64
    };
    println!("bench: {name:<48} {per_iter:>14.1} ns/iter ({iters} iters)");
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, accumulating into this measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std_black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _c: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (iters, elapsed) = measure(f);
        report(name, iters, elapsed);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count; accepted for API compatibility and ignored
    /// (the shim sizes measurements by time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (iters, elapsed) = measure(f);
        report(&format!("{}/{}", self.name, name), iters, elapsed);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // shim has no CLI surface, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 * 2)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_counts() {
        benches();
        let (iters, elapsed) = measure(|b| b.iter(|| std::thread::sleep(Duration::from_millis(1))));
        assert!(iters >= 1);
        assert!(elapsed >= Duration::from_millis(1));
    }
}

//! Minimal API-compatible stand-in for the `proptest` subset this workspace
//! uses, built for a fully offline environment.
//!
//! It keeps the property tests' source unchanged: the `proptest!` macro,
//! `Strategy` + `prop_map`, `prop_oneof!`, `any::<T>()`, integer-range and
//! tuple strategies, `prop::collection::vec`, the `prop_assert*` macros, and
//! `TestCaseError`. Unlike real proptest there is no shrinking — on failure
//! the panic message carries the full generated input, which the
//! deterministic per-test RNG makes reproducible.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Derives a stable per-test seed from the test name (FNV-1a).
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

/// Test-case failure carried out of a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for use in heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A mapped strategy (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, used by [`prop_oneof!`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an unconstrained value of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` ("anything goes").
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Builds a uniform union over strategy arms with one `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition, failing the current case (not the process) if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality, failing the current case if the sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assert_eq failed: {:?} != {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assert_eq failed: {:?} != {:?}: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality, failing the current case if the sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assert_ne failed: both sides are {:?}",
            lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assert_ne failed: both sides are {:?}: {}",
            lhs,
            format!($($fmt)+)
        );
    }};
}

/// Defines property tests: each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg),+);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..10, 20u64..30)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_maps(x in (1u64..5).prop_map(|v| v * 2), p in pair()) {
            prop_assert!((2..10).contains(&x));
            prop_assert!(p.0 < 10 && p.1 >= 20);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(
            prop_oneof![0u8..1, 10u8..11], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!(x == 0 || x == 10, "unexpected {}", x);
            }
        }

        #[test]
        fn any_and_question_mark(b in any::<bool>(), n in any::<u64>()) {
            fn helper(b: bool, n: u64) -> Result<(), TestCaseError> {
                prop_assert_eq!(u8::from(b), if b { 1 } else { 0 });
                prop_assert_ne!(n, n.wrapping_add(1));
                Ok(())
            }
            helper(b, n)?;
        }
    }

    #[test]
    fn determinism_across_reruns() {
        let mut a = test_rng("same-name");
        let mut b = test_rng("same-name");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    use crate::test_rng;
}

//! Criterion micro-benchmarks: the per-access costs behind the evaluation
//! (instrumentation overhead, coverage updates, taint algebra, checkpoint
//! restore vs. pool initialization).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pmrace_core::checkpoint::Checkpoint;
use pmrace_core::OpMutator;
use pmrace_pmem::{Pool, PoolOpts, SiteTag, ThreadId};
use pmrace_runtime::coverage::{CoverageMap, Persistency};
use pmrace_runtime::{site, Session, SessionConfig, TaintSet};
use pmrace_targets::{target_spec, Op};

fn bench_pool_primitives(c: &mut Criterion) {
    let pool = Pool::new(PoolOpts::small());
    let t = ThreadId(0);
    let tag = SiteTag(1);
    let mut g = c.benchmark_group("pool");
    g.bench_function("store_u64", |b| {
        b.iter(|| {
            pool.store_u64(black_box(4096), black_box(7), t, tag)
                .unwrap()
        })
    });
    g.bench_function("load_u64", |b| {
        b.iter(|| black_box(pool.load_u64(black_box(4096)).unwrap()))
    });
    g.bench_function("store_persist", |b| {
        b.iter(|| {
            pool.store_u64(4096, 7, t, tag).unwrap();
            pool.persist(4096, 8, t).unwrap();
        })
    });
    g.bench_function("ntstore_u64", |b| {
        b.iter(|| {
            pool.ntstore_u64(black_box(4096), black_box(7), t, tag)
                .unwrap()
        })
    });
    g.sample_size(20);
    g.bench_function("crash_image", |b| {
        b.iter(|| black_box(pool.crash_image().unwrap()))
    });
    g.finish();
}

fn bench_instrumented_access(c: &mut Criterion) {
    let session = Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig {
            capture_crash_images: false,
            deadline: Duration::from_secs(3600),
            ..SessionConfig::default()
        },
    );
    let view = session.view(ThreadId(0));
    let s_store = site!("bench.store");
    let s_load = site!("bench.load");
    let mut g = c.benchmark_group("instrumented");
    g.bench_function("store_u64_hooked", |b| {
        b.iter(|| {
            view.store_u64(black_box(4096u64), black_box(7u64), s_store)
                .unwrap()
        })
    });
    g.bench_function("load_u64_hooked", |b| {
        b.iter(|| black_box(view.load_u64(black_box(4096u64), s_load).unwrap()))
    });
    g.bench_function("persist_hooked", |b| {
        b.iter(|| view.persist(4096u64, 8, s_store).unwrap())
    });
    g.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let cov = CoverageMap::new();
    let s1 = site!("cov.a");
    let s2 = site!("cov.b");
    let mut g = c.benchmark_group("coverage");
    g.bench_function("alias_pair_record", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let (s, t) = if flip {
                (s1, ThreadId(0))
            } else {
                (s2, ThreadId(1))
            };
            black_box(cov.record_access(512, s, t, Persistency::Unpersisted))
        })
    });
    g.bench_function("branch_record", |b| {
        b.iter(|| black_box(cov.record_branch(s1)))
    });
    let other = cov.clone();
    g.sample_size(20);
    g.bench_function("merge_maps", |b| {
        b.iter(|| {
            let base = CoverageMap::new();
            black_box(base.merge_from(&other))
        })
    });
    g.finish();
}

/// Offset for iteration `i` of thread `t`, rotating over 64 cache lines that
/// are private per thread (`disjoint`) or shared by all threads.
fn contended_off(t: u64, i: u64, disjoint: bool) -> u64 {
    let line = if disjoint { t * 64 + (i % 64) } else { i % 64 };
    line * 64
}

/// Runs `f(t)` on each of `threads` scoped threads and waits for all.
fn fan_out<F: Fn(u64) + Sync>(threads: usize, f: F) {
    let f = &f;
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || f(t));
        }
    });
}

/// The contended hot path: pool stores/loads and coverage recording under
/// 1/4/8 threads on disjoint vs. overlapping cache lines. Each Criterion
/// iteration is one fan-out of `OPS` operations per thread, so ns/iter
/// tracks aggregate batch latency under contention.
fn bench_contended_hotpath(c: &mut Criterion) {
    const OPS: u64 = 2_000;
    let mut g = c.benchmark_group("contended");
    g.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        for &disjoint in &[true, false] {
            let mode = if disjoint { "disjoint" } else { "overlapping" };

            let pool = Pool::new(PoolOpts::with_size(1 << 20));
            g.bench_function(&format!("store_u64/{threads}t/{mode}"), |b| {
                b.iter(|| {
                    fan_out(threads, |t| {
                        for i in 0..OPS {
                            pool.store_u64(
                                contended_off(t, i, disjoint),
                                i,
                                ThreadId(t as u32),
                                SiteTag(1),
                            )
                            .unwrap();
                        }
                    })
                })
            });

            let pool = Pool::new(PoolOpts::with_size(1 << 20));
            g.bench_function(&format!("load_u64/{threads}t/{mode}"), |b| {
                b.iter(|| {
                    fan_out(threads, |t| {
                        for i in 0..OPS {
                            black_box(pool.load_u64(contended_off(t, i, disjoint)).unwrap());
                        }
                    })
                })
            });

            let cov = CoverageMap::new();
            let s1 = site!("contended.cov.a");
            let s2 = site!("contended.cov.b");
            g.bench_function(&format!("record_access/{threads}t/{mode}"), |b| {
                b.iter(|| {
                    fan_out(threads, |t| {
                        for i in 0..OPS {
                            let gnum = contended_off(t, i, disjoint) / 8 + i % 8;
                            let s = if i & 1 == 0 { s1 } else { s2 };
                            black_box(cov.record_access(
                                gnum,
                                s,
                                ThreadId(t as u32),
                                Persistency::Unpersisted,
                            ));
                        }
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_taint(c: &mut Criterion) {
    let a: TaintSet = [1u32, 5, 9].into_iter().collect();
    let b2: TaintSet = [2u32, 5, 11].into_iter().collect();
    c.bench_function("taint_union", |b| b.iter(|| black_box(a.union(&b2))));
}

fn bench_mutator(c: &mut Criterion) {
    let mut m = OpMutator::new(7, 4, 24);
    let corpus = vec![m.generate(), m.populate()];
    let mut g = c.benchmark_group("mutator");
    g.bench_function("generate", |b| b.iter(|| black_box(m.generate())));
    g.bench_function("evolve", |b| b.iter(|| black_box(m.evolve(&corpus))));
    g.finish();
}

fn bench_checkpoint_vs_init(c: &mut Criterion) {
    let spec = target_spec("P-CLHT").unwrap();
    let cp = Checkpoint::create(&spec).unwrap();
    let mut g = c.benchmark_group("reset");
    g.sample_size(20);
    g.bench_function("checkpoint_restore", |b| b.iter(|| black_box(cp.restore())));
    let reused = cp.restore();
    g.bench_function("checkpoint_restore_into", |b| {
        b.iter(|| cp.restore_into(black_box(&reused)).unwrap())
    });
    g.bench_function("heavy_pool_init", |b| {
        b.iter(|| black_box(Pool::new(PoolOpts::small().heavy())))
    });
    g.finish();
}

fn bench_target_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("target_insert");
    g.sample_size(20);
    for name in ["P-CLHT", "clevel", "CCEH", "FAST-FAIR", "memcached-pmem"] {
        let spec = target_spec(name).unwrap();
        let session = Session::new(
            Arc::new(Pool::new((spec.pool)())),
            SessionConfig {
                capture_crash_images: false,
                deadline: Duration::from_secs(3600),
                ..SessionConfig::default()
            },
        );
        let target = (spec.init)(&session).unwrap();
        let view = session.view(ThreadId(0));
        let mut k = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                k = k % 20 + 1;
                black_box(
                    target
                        .exec(&view, &Op::Insert { key: k, value: k })
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pool_primitives,
    bench_instrumented_access,
    bench_coverage,
    bench_contended_hotpath,
    bench_taint,
    bench_mutator,
    bench_checkpoint_vs_init,
    bench_target_ops,
);
criterion_main!(benches);

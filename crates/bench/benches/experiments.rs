//! Criterion wrappers over the experiment harnesses, so `cargo bench`
//! exercises every table/figure pipeline end to end at reduced scale. The
//! full-scale runs live in the `repro` binary
//! (`cargo run -p pmrace-bench --release --bin repro -- all`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pmrace_bench::{figs, tables, Budget};
use pmrace_core::checkpoint::Checkpoint;
use pmrace_core::{run_campaign, CampaignConfig, OpMutator, Seed};
use pmrace_targets::{target_spec, Op};

fn tiny_budget() -> Budget {
    Budget {
        campaigns: 6,
        wall: Duration::from_secs(8),
        workers: 2,
    }
}

fn bench_campaign(c: &mut Criterion) {
    let spec = target_spec("P-CLHT").unwrap();
    let cp = Checkpoint::create(&spec).unwrap();
    let mut m = OpMutator::new(3, 4, 16);
    let seed = m.generate();
    let cfg = CampaignConfig {
        threads: 4,
        deadline: Duration::from_millis(400),
        capture_images: true,
        max_images: 8,
        eadr: false,
        eviction_interval_us: 0,
        extra_whitelist: Vec::new(),
    };
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("campaign_pclht", |b| {
        b.iter(|| black_box(run_campaign(&spec, &seed, &cfg, None, Some(&cp)).unwrap()))
    });
    g.finish();
}

fn bench_campaign_no_checkpoint(c: &mut Criterion) {
    // The Fig. 10 contrast, as a pair of benchmarks: the same campaign
    // paying heavy pool init per run vs. restoring the checkpoint.
    let spec = target_spec("CCEH").unwrap();
    let cp = Checkpoint::create(&spec).unwrap();
    let seed = Seed::from_flat(
        &(1..=16u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect::<Vec<_>>(),
        2,
    );
    let cfg = CampaignConfig {
        threads: 2,
        deadline: Duration::from_millis(400),
        capture_images: false,
        max_images: 0,
        eadr: false,
        eviction_interval_us: 0,
        extra_whitelist: Vec::new(),
    };
    let mut g = c.benchmark_group("fig10_pair");
    g.sample_size(10);
    g.bench_function("cceh_with_checkpoint", |b| {
        b.iter(|| black_box(run_campaign(&spec, &seed, &cfg, None, Some(&cp)).unwrap()))
    });
    g.bench_function("cceh_without_checkpoint", |b| {
        b.iter(|| black_box(run_campaign(&spec, &seed, &cfg, None, None).unwrap()))
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table4_generators", |b| {
        b.iter(|| black_box(tables::table4(21, 5)))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig10_sweep", |b| b.iter(|| black_box(figs::fig10(1, 3))));
    g.finish();
}

fn bench_fuzz_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fuzz_clevel_tiny", |b| {
        b.iter(|| {
            black_box(pmrace_bench::sweep::fuzz_target(
                "clevel",
                tiny_budget(),
                pmrace_core::StrategyKind::Pmrace,
                9,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_campaign,
    bench_campaign_no_checkpoint,
    bench_table4,
    bench_fig10,
    bench_fuzz_sweep,
);
criterion_main!(benches);

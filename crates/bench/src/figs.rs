//! Regeneration of Figures 8–10 of the evaluation.

use std::time::{Duration, Instant};

use pmrace_core::checkpoint::Checkpoint;
use pmrace_core::{run_campaign, CampaignConfig, FuzzConfig, Fuzzer, OpMutator, StrategyKind};

use crate::render::{series, table};
use crate::sweep::fuzz_target;
use crate::Budget;

/// Fig. 8: time to identify PM Inter-thread Inconsistencies — PMRace vs
/// random delay injection (the paper's comparison) plus the serialization
/// baseline modeling interleaving enumeration — on the three systems with
/// interleaving bugs.
///
/// Prints, per system and scheme, the timestamps (ms) of each new unique
/// inter-thread inconsistency plus the cumulative count.
#[must_use]
pub fn fig8(budget: Budget, rng_seed: u64) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    for target in ["P-CLHT", "FAST-FAIR", "memcached-pmem"] {
        for (scheme, strategy) in [
            ("PMRace", StrategyKind::Pmrace),
            ("Delay Inj", StrategyKind::Delay { max_delay_us: 1000 }),
            ("Systematic", StrategyKind::Systematic),
        ] {
            let report = fuzz_target(target, budget, strategy, rng_seed);
            let times: Vec<String> = report
                .inter_times
                .iter()
                .take(12)
                .map(|d| format!("{}", d.as_millis()))
                .collect();
            rows.push(vec![
                target.to_owned(),
                scheme.to_owned(),
                report.inter_times.len().to_string(),
                report
                    .inter_times
                    .first()
                    .map_or("-".to_owned(), |d| format!("{}", d.as_millis())),
                if times.is_empty() {
                    "-".to_owned()
                } else {
                    times.join(",")
                },
            ]);
        }
    }
    out.push_str(&table(
        "Fig. 8: Time to identify PM Inter-thread Inconsistencies (ms since fuzzing start).",
        &[
            "System",
            "Scheme",
            "#Inter found",
            "First (ms)",
            "Detection times (ms)",
        ],
        &rows,
    ));
    out
}

/// Fig. 9: runtime/coverage ablation on P-CLHT with one worker —
/// full PMRace vs *w/o IE* (no interleaving tier) vs *w/o SE* (no seed
/// tier). Prints downsampled coverage trajectories.
#[must_use]
pub fn fig9(budget: Budget, rng_seed: u64) -> String {
    let mut out = String::new();
    for (name, ie, se) in [
        ("PMRace", true, true),
        ("PMRace w/o IE", false, true),
        ("PMRace w/o SE", true, false),
    ] {
        let mut cfg = FuzzConfig::new("P-CLHT");
        cfg.strategy = StrategyKind::Pmrace;
        cfg.enable_interleaving_tier = ie;
        cfg.enable_seed_tier = se;
        cfg.max_campaigns = budget.campaigns;
        cfg.wall_budget = budget.wall;
        cfg.workers = 1; // single worker, like the paper's case study
        cfg.rng_seed = rng_seed;
        let report = Fuzzer::new(cfg).expect("known target").run().expect("run");
        let n = report.coverage_timeline.len();
        let step = (n / 10).max(1);
        let points: Vec<Vec<String>> = report
            .coverage_timeline
            .iter()
            .step_by(step)
            .chain(report.coverage_timeline.last())
            .map(|s| {
                vec![
                    s.at.as_millis().to_string(),
                    s.alias_pairs.to_string(),
                    s.branches.to_string(),
                ]
            })
            .collect();
        out.push_str(&series(
            &format!("Fig. 9 [{name}]: coverage over time on P-CLHT (1 worker)."),
            &["t (ms)", "PM alias pairs", "branches"],
            &points,
        ));
        let alias_series: Vec<usize> = report
            .coverage_timeline
            .iter()
            .map(|s| s.alias_pairs)
            .collect();
        out.push_str(&format!(
            "alias pairs over campaigns: {}\n\n",
            crate::render::sparkline(&alias_series)
        ));
    }
    out
}

/// Fig. 10: fuzzing speed (campaigns/sec of the input-generation stage)
/// with and without in-memory pool checkpoints, per target.
///
/// PMDK-based targets pay a heavy `libpmemobj`-style pool initialization
/// per campaign without checkpoints; memcached-pmem maps its pool with a
/// thin `pmem_map_file`, so checkpoints buy it nothing — the paper's
/// recommendation to disable them for `libpmem`-based programs.
#[must_use]
pub fn fig10(campaigns: usize, rng_seed: u64) -> String {
    let mut rows = Vec::new();
    for spec in pmrace_targets::all_targets() {
        let mut speeds = Vec::new();
        let mut access_rates = Vec::new();
        for use_cp in [true, false] {
            let cp = if use_cp {
                Some(Checkpoint::create(&spec).expect("checkpoint"))
            } else {
                None
            };
            let mut mutator = OpMutator::new(rng_seed, 2, 12);
            let cfg = CampaignConfig {
                threads: 2,
                deadline: Duration::from_millis(500),
                capture_images: false,
                max_images: 0,
                eadr: false,
                eviction_interval_us: 0,
                extra_whitelist: Vec::new(),
            };
            let start = Instant::now();
            let mut accesses = 0u64;
            for _ in 0..campaigns {
                let seed = mutator.generate();
                let res = run_campaign(&spec, &seed, &cfg, None, cp.as_ref()).expect("campaign");
                accesses += res.pm_accesses;
            }
            let secs = start.elapsed().as_secs_f64();
            speeds.push(campaigns as f64 / secs);
            access_rates.push(accesses as f64 / secs.max(1e-9));
        }
        let speedup = speeds[0] / speeds[1].max(1e-9);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.1}", speeds[0]),
            format!("{:.1}", speeds[1]),
            format!("{:.0}%", (speedup - 1.0) * 100.0),
            format!("{:.0}k", access_rates[0] / 1e3),
        ]);
    }
    table(
        "Fig. 10: Input-generation fuzzing speed with/without in-memory checkpoints.",
        &[
            "System",
            "execs/s (CP)",
            "execs/s (no CP)",
            "CP speedup",
            "PM acc/s (CP)",
        ],
        &rows,
    )
}

/// §6.6 ablation: the same fuzzing runs under the ADR vs. eADR failure
/// models. With persistent caches, PM Inter-thread Inconsistencies vanish,
/// while PM Synchronization Inconsistencies (persistent locks) remain —
/// exactly the paper's applicability argument for PMRace on eADR
/// platforms.
#[must_use]
pub fn eadr_ablation(budget: Budget, rng_seed: u64) -> String {
    let mut rows = Vec::new();
    for target in ["P-CLHT", "CCEH"] {
        for (mode, eadr) in [("ADR", false), ("eADR", true)] {
            let mut cfg = FuzzConfig::new(target);
            cfg.max_campaigns = budget.campaigns;
            cfg.wall_budget = budget.wall;
            cfg.workers = budget.workers;
            cfg.rng_seed = rng_seed;
            cfg.eadr = eadr;
            let report = Fuzzer::new(cfg).expect("known target").run().expect("run");
            let sync_bugs = report
                .bugs
                .iter()
                .filter(|b| b.kind == pmrace_core::BugKind::Sync)
                .count();
            rows.push(vec![
                target.to_owned(),
                mode.to_owned(),
                (report.stats.inter_candidates + report.stats.intra_candidates).to_string(),
                (report.stats.inter + report.stats.intra).to_string(),
                report.stats.sync.to_string(),
                sync_bugs.to_string(),
            ]);
        }
    }
    table(
        "§6.6 ablation: ADR vs eADR failure model (persistent caches remove \
         inter-thread inconsistencies; persistent-lock bugs remain).",
        &[
            "System",
            "Model",
            "Candidates",
            "Inconsistencies",
            "Sync detected",
            "Sync bugs",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_smoke_shows_all_targets() {
        let out = fig10(2, 3);
        for name in ["P-CLHT", "clevel", "CCEH", "FAST-FAIR", "memcached-pmem"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }
}

//! Benchmark harness regenerating every table and figure of the PMRace
//! evaluation (§6).
//!
//! The `repro` binary drives the experiments:
//!
//! ```text
//! cargo run -p pmrace-bench --release --bin repro -- all
//! cargo run -p pmrace-bench --release --bin repro -- table2 fig8 --quick
//! ```
//!
//! | command | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — evaluated systems |
//! | `table2` | Table 2 — the 14 unique bugs |
//! | `table3` | Table 3 — detection/false-positive breakdown |
//! | `table4` | Table 4 — mutator code coverage on memcached commands |
//! | `table5` | Table 5 — unique bugs summary |
//! | `table6` | Table 6 — inconsistency/FP summary |
//! | `fig8`   | Fig. 8 — time to find inter-thread inconsistencies |
//! | `fig9`   | Fig. 9 — runtime/coverage ablation on P-CLHT |
//! | `fig10`  | Fig. 10 — in-memory checkpoint impact on fuzzing speed |
//!
//! Absolute numbers differ from the paper (software PM, scaled waits); the
//! *shape* — which tool finds inconsistencies first, which false positives
//! get filtered, where checkpoints pay off — is the reproduction target.
//! See `EXPERIMENTS.md` at the repository root for paper-vs-measured notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figs;
pub mod hotpath;
pub mod render;
pub mod sweep;
pub mod tables;

use std::time::Duration;

/// Experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Max campaigns per fuzzing run.
    pub campaigns: usize,
    /// Wall-clock cap per fuzzing run.
    pub wall: Duration,
    /// Concurrent fuzzing workers.
    pub workers: usize,
}

impl Budget {
    /// Full experiment sizing (a few minutes per experiment).
    #[must_use]
    pub fn full() -> Self {
        Budget {
            campaigns: 600,
            wall: Duration::from_secs(75),
            workers: 8,
        }
    }

    /// Quick sizing for smoke runs and CI.
    #[must_use]
    pub fn quick() -> Self {
        Budget {
            campaigns: 80,
            wall: Duration::from_secs(15),
            workers: 4,
        }
    }
}

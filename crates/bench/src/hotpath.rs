//! Contended hot-path throughput meter.
//!
//! Measures aggregate ops/sec of the instrumentation hot path — raw pool
//! stores/loads, instrumented stores (store + coverage + trace + stats), and
//! bare coverage recording — under 1, 4, and 8 threads hammering disjoint or
//! overlapping cache lines. `repro hotpath` prints the table and emits
//! `BENCH_hotpath.json` so the numbers become a tracked perf trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pmrace_core::checkpoint::Checkpoint;
use pmrace_core::validate::validate_sync;
use pmrace_pmem::{Pool, PoolOpts, RestoreMode, SiteTag, ThreadId, CACHE_LINE};
use pmrace_runtime::coverage::{CoverageMap, Persistency};
use pmrace_runtime::report::SyncUpdateRecord;
use pmrace_runtime::{site, Session, SessionConfig};
use pmrace_targets::target_spec;

/// One measured cell of the hot-path matrix.
#[derive(Debug, Clone)]
pub struct HotpathCell {
    /// Operation measured (`pool_store_u64`, `instr_store_u64`, ...).
    pub name: String,
    /// Number of concurrently hammering threads.
    pub threads: usize,
    /// Whether each thread worked a private set of cache lines.
    pub disjoint: bool,
    /// Total operations completed across all threads.
    pub ops: u64,
    /// Wall-clock duration of the contended phase.
    pub elapsed: Duration,
}

impl HotpathCell {
    /// Aggregate throughput in operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Lines each thread rotates over; keeps the working set larger than one
/// line so the sharded pool actually spreads lock traffic.
const LINES_PER_THREAD: u64 = 64;
const POOL_SIZE: usize = 1 << 20;

/// Offset for iteration `i` of thread `t`: private lines when `disjoint`,
/// one shared set of lines otherwise.
fn target_off(t: u64, i: u64, disjoint: bool) -> u64 {
    let line = if disjoint {
        t * LINES_PER_THREAD + (i % LINES_PER_THREAD)
    } else {
        i % LINES_PER_THREAD
    };
    line * CACHE_LINE as u64
}

/// Runs `per_thread` iterations of `op` on each of `threads` threads behind
/// a start barrier and returns the aggregate cell.
fn contend<F>(name: &str, threads: usize, disjoint: bool, per_thread: u64, op: F) -> HotpathCell
where
    F: Fn(u64, u64) + Sync,
{
    contend_setup(
        name,
        threads,
        disjoint,
        per_thread,
        |_| (),
        move |(), t, i| {
            op(t, i);
        },
    )
}

/// [`contend`] with a per-thread setup stage: `setup(t)` runs *inside* each
/// spawned thread before the start barrier and its result is handed to every
/// `op` call of that thread. This is how per-thread state that is `Send` but
/// not `Sync` — a [`pmrace_runtime::PmView`] — gets into the workers, exactly
/// like campaign drivers construct their views in-thread.
fn contend_setup<W, S, F>(
    name: &str,
    threads: usize,
    disjoint: bool,
    per_thread: u64,
    setup: S,
    op: F,
) -> HotpathCell
where
    S: Fn(u64) -> W + Sync,
    F: Fn(&W, u64, u64) + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let done = AtomicU64::new(0);
    let op = &op;
    let setup = &setup;
    let barrier_ref = &barrier;
    let done_ref = &done;
    let started = std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                let w = setup(t);
                barrier_ref.wait();
                for i in 0..per_thread {
                    op(&w, t, i);
                }
                done_ref.fetch_add(per_thread, Ordering::Relaxed);
            });
        }
        // Clock starts before the release so the measurement covers the
        // workers' whole run even if this thread is descheduled right after
        // the barrier (single-CPU hosts).
        let started = Instant::now();
        barrier_ref.wait();
        started
    });
    HotpathCell {
        name: name.to_owned(),
        threads,
        disjoint,
        ops: done.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

/// Median of three runs of one cell. Per-access cells finish in tens of
/// milliseconds, so a single descheduling blip on a busy host can halve a
/// measurement; the median discards such outliers in both directions while
/// staying cheap enough to run the whole matrix in seconds.
fn median3<F: FnMut() -> HotpathCell>(mut run: F) -> HotpathCell {
    let mut reps = vec![run(), run(), run()];
    reps.sort_by(|a, b| a.ops_per_sec().total_cmp(&b.ops_per_sec()));
    reps.swap_remove(1)
}

/// Runs the full hot-path matrix. `quick` shrinks iteration counts for CI.
#[must_use]
pub fn run_matrix(quick: bool) -> Vec<HotpathCell> {
    let mut cells = Vec::new();
    let scale = if quick { 20 } else { 1 };
    let pool_iters = 1_000_000 / scale;
    let instr_iters = 200_000 / scale;
    let cov_iters = 2_000_000 / scale;

    // Fleet scaling: whole-fuzzer aggregate execs/sec (campaigns/sec) at
    // increasing worker counts, on a fixed wall budget. Campaigns are
    // scheduler-sleep-bound (the Fig. 6 scheduler parks threads in µs–ms
    // waits), so a fleet overlaps those sleeps productively even on a
    // single CPU; this cell is the tracked scaling curve the shared
    // frontier / sharded ledger / validation pipeline must keep steep.
    //
    // These cells run FIRST, before any microbench cell registers its
    // `site!()`s: instruction-site ids are process-global and handed out
    // first-come-first-served, so earlier cells shift the ids — and with
    // them coverage hashes and exploration-plan selection — of everything
    // that runs after them. Fleet cells at the top see the same site ids a
    // standalone fuzzing run sees, which is the environment the committed
    // scaling curve must reproduce. (Measured cost of getting this wrong:
    // running the fleet cells after the instrumentation cells collapsed
    // the 4-worker/1-worker ratio from ~2.6x to ~1.5x purely through a
    // different plan mix.)
    pmrace_targets::register_builtins();
    let budget = Duration::from_millis(if quick { 700 } else { 8_000 });
    for &workers in &[1usize, 2, 4, 8] {
        let mut cfg = pmrace_core::FuzzConfig::new("FAST-FAIR");
        cfg.workers = workers;
        cfg.threads = 2;
        cfg.max_campaigns = usize::MAX;
        cfg.wall_budget = budget;
        cfg.campaign_deadline = Duration::from_millis(400);
        cfg.rng_seed = 0xF1EE7 ^ workers as u64;
        let report = pmrace_core::Fuzzer::new(cfg)
            .expect("FAST-FAIR is registered")
            .run()
            .expect("fleet bench run");
        cells.push(HotpathCell {
            name: "fleet_execs".to_owned(),
            threads: workers,
            disjoint: true,
            ops: report.campaigns as u64,
            elapsed: report.elapsed,
        });
    }

    // CAS-retry hot path: whole-fuzzer campaigns/sec against a lock-free
    // target whose control flow is CAS-retry loops rather than locks.
    // Every failed CAS attempt is a scheduler decision point
    // (`on_cas_fail` bounded-storm gating), so this cell tracks the
    // end-to-end cost of retry-aware scheduling as driver threads grow —
    // the companion curve to `fleet_execs` for the lock-free suite. Runs
    // up here with the fleet cells for the same site-id pinning reason.
    pmrace_lockfree::register_lockfree();
    for &threads in &[2usize, 4] {
        let mut cfg = pmrace_core::FuzzConfig::new("treiber-stack");
        cfg.workers = 2;
        cfg.threads = threads;
        cfg.max_campaigns = usize::MAX;
        cfg.wall_budget = budget;
        cfg.campaign_deadline = Duration::from_millis(400);
        cfg.rng_seed = 0xCA5 ^ threads as u64;
        let report = pmrace_core::Fuzzer::new(cfg)
            .expect("treiber-stack is registered")
            .run()
            .expect("cas-retry bench run");
        cells.push(HotpathCell {
            name: "cas_retry_execs".to_owned(),
            threads,
            disjoint: true,
            ops: report.campaigns as u64,
            elapsed: report.elapsed,
        });
    }

    for &threads in &[1usize, 4, 8] {
        for &disjoint in &[true, false] {
            // Raw pool stores: the pmem shard layer alone.
            let pool = Pool::new(PoolOpts::with_size(POOL_SIZE));
            cells.push(median3(|| {
                contend("pool_store_u64", threads, disjoint, pool_iters, |t, i| {
                    pool.store_u64(
                        target_off(t, i, disjoint),
                        i,
                        ThreadId(t as u32),
                        SiteTag(1),
                    )
                    .unwrap();
                })
            }));

            // Raw pool loads.
            let pool = Pool::new(PoolOpts::with_size(POOL_SIZE));
            cells.push(median3(|| {
                contend("pool_load_u64", threads, disjoint, pool_iters, |t, i| {
                    pool.load_u64(target_off(t, i, disjoint)).unwrap();
                })
            }));

            // Instrumented stores: pool + coverage + trace + access stats —
            // the paper's "aggregate store+record" hot path.
            let session = Session::new(
                Arc::new(Pool::new(PoolOpts::with_size(POOL_SIZE))),
                SessionConfig {
                    capture_crash_images: false,
                    deadline: Duration::from_secs(600),
                    ..SessionConfig::default()
                },
            );
            let s_store = site!("hotpath.store");
            // One view per driver thread, built in-thread exactly like
            // campaign workers (views are Send, not Sync).
            let session_ref = &session;
            cells.push(median3(|| {
                contend_setup(
                    "instr_store_u64",
                    threads,
                    disjoint,
                    instr_iters,
                    move |t| session_ref.view(ThreadId(t as u32)),
                    move |view, t, i| {
                        view.store_u64(target_off(t, i, disjoint), i, s_store)
                            .unwrap();
                    },
                )
            }));

            // Batched instrumented stores: the campaign-realistic epoch
            // shape — runs of stores with node-level locality (8 consecutive
            // stores per line, the "fill a node, persist the node" pattern
            // every PM index exhibits), then a persist (clwb+sfence) that
            // drains the per-thread shadow/coverage buffers. Repeated
            // same-line stores hit the thread's granule slot cache, so the
            // cell shows how much of the per-access tax epoch batching
            // amortizes away. An earlier version walked a *different* line
            // on every store: zero intra-epoch locality, nothing for the
            // write-combining buffer to combine, so it measured
            // `instr_store_u64` plus pure drain overhead and came out
            // *slower* than the unbatched cell it was meant to beat.
            let session = Session::new(
                Arc::new(Pool::new(PoolOpts::with_size(POOL_SIZE))),
                SessionConfig {
                    capture_crash_images: false,
                    deadline: Duration::from_secs(600),
                    ..SessionConfig::default()
                },
            );
            let s_batch = site!("hotpath.store.batched");
            let s_flush = site!("hotpath.flush.batched");
            let session_ref = &session;
            cells.push(median3(|| {
                contend_setup(
                    "instr_store_batched",
                    threads,
                    disjoint,
                    instr_iters,
                    move |t| session_ref.view(ThreadId(t as u32)),
                    move |view, t, i| {
                        let off = target_off(t, i / 8, disjoint);
                        view.store_u64(off, i, s_batch).unwrap();
                        if i % 64 == 63 {
                            view.persist(off, 8, s_flush).unwrap();
                        }
                    },
                )
            }));

            // Write-through floor: a persist after *every* store, so each
            // store is its own epoch and batching never gets a run to
            // combine. Together with `instr_store_u64` (no sync point for
            // the whole cell — the no-drain ceiling) this brackets the
            // batched cell: batched must land between flush_each (floor)
            // and plain stores (ceiling), and its distance from each is the
            // honest measure of what epoch batching buys.
            let session = Session::new(
                Arc::new(Pool::new(PoolOpts::with_size(POOL_SIZE))),
                SessionConfig {
                    capture_crash_images: false,
                    deadline: Duration::from_secs(600),
                    ..SessionConfig::default()
                },
            );
            let s_wt = site!("hotpath.store.flush_each");
            let s_wt_flush = site!("hotpath.flush.flush_each");
            let session_ref = &session;
            cells.push(median3(|| {
                contend_setup(
                    "instr_store_flush_each",
                    threads,
                    disjoint,
                    instr_iters / 4,
                    move |t| session_ref.view(ThreadId(t as u32)),
                    move |view, t, i| {
                        let off = target_off(t, i / 8, disjoint);
                        view.store_u64(off, i, s_wt).unwrap();
                        view.persist(off, 8, s_wt_flush).unwrap();
                    },
                )
            }));

            // Granule-cache hit path: every store of a thread lands on one
            // granule, so after the first access the per-thread slot cache
            // absorbs all metadata work until the next sync point.
            let session = Session::new(
                Arc::new(Pool::new(PoolOpts::with_size(POOL_SIZE))),
                SessionConfig {
                    capture_crash_images: false,
                    deadline: Duration::from_secs(600),
                    ..SessionConfig::default()
                },
            );
            let s_hit = site!("hotpath.store.granule_hit");
            let session_ref = &session;
            cells.push(median3(|| {
                contend_setup(
                    "granule_cache_hit",
                    threads,
                    disjoint,
                    instr_iters,
                    move |t| session_ref.view(ThreadId(t as u32)),
                    move |view, t, i| {
                        let off = target_off(t, 0, disjoint);
                        view.store_u64(off, i, s_hit).unwrap();
                    },
                )
            }));

            // Bare coverage recording (lock-free alias-pair map).
            let cov = CoverageMap::new();
            let s0 = site!("hotpath.cov.a");
            let s1 = site!("hotpath.cov.b");
            let cov_ref = &cov;
            cells.push(median3(|| {
                contend(
                    "record_access",
                    threads,
                    disjoint,
                    cov_iters,
                    move |t, i| {
                        let g = target_off(t, i, disjoint) / 8 + i % 8;
                        let site = if i & 1 == 0 { s0 } else { s1 };
                        let p = if i & 2 == 0 {
                            Persistency::Persisted
                        } else {
                            Persistency::Unpersisted
                        };
                        cov_ref.record_access(g, site, ThreadId(t as u32), p);
                    },
                )
            }));
        }
    }

    // Checkpoint restore paths: fresh pool per campaign vs reuse.
    let spec = target_spec("P-CLHT").expect("known target");
    let cp = Checkpoint::create(&spec).expect("checkpoint");
    let fresh_iters = 400 / scale;
    let start = Instant::now();
    for _ in 0..fresh_iters {
        std::hint::black_box(cp.restore());
    }
    cells.push(HotpathCell {
        name: "checkpoint_restore_fresh".to_owned(),
        threads: 1,
        disjoint: true,
        ops: fresh_iters,
        elapsed: start.elapsed(),
    });

    // In-place restore into an existing pool (the campaign-runner reuse
    // path): same image reset without the pool-sized allocation.
    let pool = cp.restore();
    let start = Instant::now();
    for _ in 0..fresh_iters {
        cp.restore_into(&pool).expect("restore_into");
    }
    cells.push(HotpathCell {
        name: "checkpoint_restore_into".to_owned(),
        threads: 1,
        disjoint: true,
        ops: fresh_iters,
        elapsed: start.elapsed(),
    });

    // Delta restore on a sparse campaign: each iteration dirties 48
    // scattered granules (well under 5% of the pool) and resets them in
    // O(dirty) — the outer-loop fast path.
    let pool = cp.restore();
    let delta_iters = 4_000 / scale;
    let line_count = pool.size() as u64 / CACHE_LINE as u64;
    let start = Instant::now();
    for i in 0..delta_iters {
        for k in 0..48u64 {
            let off = ((i * 131 + k * 31) % line_count) * CACHE_LINE as u64;
            pool.store_u64(off, k, ThreadId(0), SiteTag(2)).unwrap();
        }
        let mode = cp.restore_delta(&pool).expect("restore_delta");
        assert!(
            matches!(mode, RestoreMode::Delta { .. }),
            "sparse workload stays under the delta threshold, got {mode:?}"
        );
    }
    cells.push(HotpathCell {
        name: "checkpoint_restore_delta".to_owned(),
        threads: 1,
        disjoint: true,
        ops: delta_iters,
        elapsed: start.elapsed(),
    });

    // Copy-on-write crash-image capture over the same sparse dirty set
    // (the §4.4 capture path, per inconsistency candidate).
    let pool = cp.restore();
    for k in 0..48u64 {
        pool.store_u64(k * 10 * CACHE_LINE as u64, k, ThreadId(0), SiteTag(3))
            .unwrap();
    }
    let cap_iters = 20_000 / scale;
    let start = Instant::now();
    for _ in 0..cap_iters {
        std::hint::black_box(pool.crash_image().expect("crash_image"));
    }
    cells.push(HotpathCell {
        name: "crash_image_capture".to_owned(),
        threads: 1,
        disjoint: true,
        ops: cap_iters,
        elapsed: start.elapsed(),
    });

    // Memoized validation: the verdict-cache hit path. The first call —
    // the cache miss that runs one full recovery execution — is paid
    // *before* the clock starts: a single multi-millisecond miss would
    // dominate the quick-mode cell (10k iterations) while vanishing in
    // the full cell (200k), making the two incomparable and the CI
    // tolerance band meaningless for this cell.
    let vpool = cp.restore();
    let image = std::sync::Arc::new(vpool.crash_image().expect("crash image"));
    let rec = SyncUpdateRecord {
        var_name: "bench.lock".to_owned(),
        var_off: 64,
        var_size: 8,
        expected_init: image.load_u64(64).expect("in-bounds load"),
        store_site: site!("hotpath.validate"),
        new_value: 1,
        tid: ThreadId(0),
        crash_image: Some(Arc::clone(&image)),
    };
    let val_iters = 200_000 / scale;
    std::hint::black_box(validate_sync(&spec, &rec));
    let start = Instant::now();
    for _ in 0..val_iters {
        std::hint::black_box(validate_sync(&spec, &rec));
    }
    cells.push(HotpathCell {
        name: "validate_cached".to_owned(),
        threads: 1,
        disjoint: true,
        ops: val_iters,
        elapsed: start.elapsed(),
    });

    cells
}

/// Extracts the distinct cell names from a `BENCH_hotpath.json` document
/// (the counterpart of [`to_json`]; `repro hotpath --check-against` uses it
/// to catch schema drift between the committed file and the bench code).
#[must_use]
pub fn cell_names_in_json(text: &str) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for part in text.split("\"name\": \"").skip(1) {
        if let Some(end) = part.find('"') {
            let name = &part[..end];
            if !names.iter().any(|n| n == name) {
                names.push(name.to_owned());
            }
        }
    }
    names
}

/// Extracts `(name, threads, lines, ops_per_sec)` rows from a
/// `BENCH_hotpath.json` document — the committed baseline values
/// `repro hotpath --check-against --tolerance` compares a fresh run against.
#[must_use]
pub fn cell_values_in_json(text: &str) -> Vec<(String, usize, String, f64)> {
    fn field<'t>(cell: &'t str, key: &str) -> Option<&'t str> {
        let at = cell.find(key)? + key.len();
        Some(cell[at..].trim_start())
    }
    let mut rows = Vec::new();
    for part in text.split("{\"name\": \"").skip(1) {
        let Some(end) = part.find('}') else { continue };
        let cell = &part[..end];
        let Some(name_end) = cell.find('"') else {
            continue;
        };
        let name = cell[..name_end].to_owned();
        let threads = field(cell, "\"threads\":")
            .and_then(|rest| rest.split(',').next()?.trim().parse::<usize>().ok());
        let lines = field(cell, "\"lines\": \"")
            .and_then(|rest| rest.find('"').map(|q| rest[..q].to_owned()));
        let ops = field(cell, "\"ops_per_sec\":")
            .and_then(|rest| rest.split([',', '}']).next()?.trim().parse::<f64>().ok());
        if let (Some(threads), Some(lines), Some(ops)) = (threads, lines, ops) {
            rows.push((name, threads, lines, ops));
        }
    }
    rows
}

/// Aggregate `fleet_execs` scaling ratio between two worker counts in a
/// `BENCH_hotpath.json` document: `ops_per_sec(hi) / ops_per_sec(lo)`.
/// `None` when either cell is absent (or the low cell is zero). The
/// `--min-fleet-scaling` CI gate evaluates this on the *committed* file, so
/// a regenerated trajectory that lost its fleet scaling cannot land.
#[must_use]
pub fn fleet_scaling_in_json(text: &str, hi: usize, lo: usize) -> Option<f64> {
    let rows = cell_values_in_json(text);
    let cell = |threads: usize| {
        rows.iter()
            .find(|(name, t, _, _)| name == "fleet_execs" && *t == threads)
            .map(|r| r.3)
    };
    let (hi, lo) = (cell(hi)?, cell(lo)?);
    (lo > 0.0).then(|| hi / lo)
}

/// Renders the matrix as an aligned text table.
#[must_use]
pub fn render(cells: &[HotpathCell]) -> String {
    let mut out = String::from(
        "Hot-path contended throughput (aggregate ops/sec; 64 lines/thread working set)\n",
    );
    out.push_str(&format!(
        "{:<26} {:>8} {:>12} {:>14} {:>12}\n",
        "op", "threads", "lines", "ops/sec", "total ops"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<26} {:>8} {:>12} {:>14.0} {:>12}\n",
            c.name,
            c.threads,
            if c.disjoint {
                "disjoint"
            } else {
                "overlapping"
            },
            c.ops_per_sec(),
            c.ops,
        ));
    }
    out
}

/// Serializes the matrix as JSON (hand-rolled; the workspace is offline and
/// carries no serde).
#[must_use]
pub fn to_json(cells: &[HotpathCell]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"hotpath\",\n  \"unit\": \"ops_per_sec\",\n  \"cells\": [\n",
    );
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"lines\": \"{}\", \"ops\": {}, \"secs\": {:.6}, \"ops_per_sec\": {:.1}}}{}\n",
            c.name,
            c.threads,
            if c.disjoint { "disjoint" } else { "overlapping" },
            c.ops,
            c.elapsed.as_secs_f64(),
            c.ops_per_sec(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_thread_counts_and_modes() {
        let cells = run_matrix(true);
        for &t in &[1usize, 4, 8] {
            assert!(cells.iter().any(|c| c.threads == t && c.disjoint));
            assert!(cells.iter().any(|c| c.threads == t && !c.disjoint));
        }
        assert!(cells.iter().all(|c| c.ops > 0));
        let json = to_json(&cells);
        assert!(json.contains("\"bench\": \"hotpath\""));
        assert!(json.contains("instr_store_u64"));
        assert!(render(&cells).contains("record_access"));
        // The outer-loop cells ride along and round-trip through the JSON
        // name extractor the CI schema guard relies on.
        let names = cell_names_in_json(&json);
        for required in [
            "instr_store_batched",
            "instr_store_flush_each",
            "granule_cache_hit",
            "checkpoint_restore_fresh",
            "checkpoint_restore_delta",
            "crash_image_capture",
            "validate_cached",
            "fleet_execs",
            "cas_retry_execs",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
        // One fleet cell per worker count, each with real campaigns.
        let fleet: Vec<_> = cells.iter().filter(|c| c.name == "fleet_execs").collect();
        assert_eq!(
            fleet.iter().map(|c| c.threads).collect::<Vec<_>>(),
            [1, 2, 4, 8]
        );
        // The fleet cells must stay FIRST in the matrix: site ids are
        // process-global and first-come-first-served, so any cell running
        // before them would shift the fuzzer's coverage hashes and plan
        // mix away from what a standalone run sees.
        assert_eq!(
            cells.first().map(|c| c.name.as_str()),
            Some("fleet_execs"),
            "fleet cells must run before any site!()-registering microbench"
        );
        // One CAS-retry cell per driver-thread count.
        let cas: Vec<_> = cells
            .iter()
            .filter(|c| c.name == "cas_retry_execs")
            .collect();
        assert_eq!(cas.iter().map(|c| c.threads).collect::<Vec<_>>(), [2, 4]);
    }

    #[test]
    fn cell_values_parse_back_from_json() {
        let cells = vec![
            HotpathCell {
                name: "x_op".to_owned(),
                threads: 4,
                disjoint: false,
                ops: 1000,
                elapsed: Duration::from_millis(100),
            },
            HotpathCell {
                name: "y_op".to_owned(),
                threads: 1,
                disjoint: true,
                ops: 500,
                elapsed: Duration::from_millis(50),
            },
        ];
        let rows = cell_values_in_json(&to_json(&cells));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "x_op");
        assert_eq!(rows[0].1, 4);
        assert_eq!(rows[0].2, "overlapping");
        assert!((rows[0].3 - 10_000.0).abs() < 1.0);
        assert_eq!(rows[1].2, "disjoint");
        assert!(cell_values_in_json("{}").is_empty());
    }

    #[test]
    fn fleet_scaling_ratio_reads_committed_cells() {
        let fleet = |threads: usize, ops: u64| HotpathCell {
            name: "fleet_execs".to_owned(),
            threads,
            disjoint: true,
            ops,
            elapsed: Duration::from_secs(1),
        };
        let json = to_json(&[fleet(1, 300), fleet(4, 840)]);
        let ratio = fleet_scaling_in_json(&json, 4, 1).unwrap();
        assert!((ratio - 2.8).abs() < 1e-6, "got {ratio}");
        // Missing cells (or an unrelated document) yield None, not a panic.
        assert!(fleet_scaling_in_json(&json, 8, 1).is_none());
        assert!(fleet_scaling_in_json("{}", 4, 1).is_none());
    }

    #[test]
    fn cell_names_are_extracted_uniquely() {
        let cell = |name: &str, threads: usize| HotpathCell {
            name: name.to_owned(),
            threads,
            disjoint: true,
            ops: 10,
            elapsed: Duration::from_millis(5),
        };
        let cells = vec![cell("a_op", 1), cell("a_op", 4), cell("b_op", 1)];
        assert_eq!(cell_names_in_json(&to_json(&cells)), ["a_op", "b_op"]);
        assert!(cell_names_in_json("{}").is_empty());
    }
}

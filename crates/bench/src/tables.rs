//! Regeneration of Tables 1–6 of the evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use pmrace_core::textgen::{ByteMutator, CommandGen};
use pmrace_core::{BugKind, FuzzReport};
use pmrace_pmem::{Pool, ThreadId};
use pmrace_runtime::{Session, SessionConfig};
use pmrace_targets::memkv::proto::{classify, CmdFamily};
use pmrace_targets::memkv::MemKv;

use crate::render::table;
use crate::sweep::fuzz_all_targets;
use crate::Budget;

/// How a paper bug is recognized in a fuzz report.
#[derive(Debug, Clone, Copy)]
pub enum Matcher {
    /// Match a bug-verdict `(write, read, effect)` triple by substrings
    /// (empty substring matches anything).
    Triple {
        /// Substring of the write-site label.
        write: &'static str,
        /// Substring of the read-site label.
        read: &'static str,
        /// Substring of the effect-site label.
        effect: &'static str,
    },
    /// Match a candidate pair that never grew a side effect (the paper's
    /// "inconsistency candidate" findings).
    Candidate {
        /// Substring of the write-site label.
        write: &'static str,
        /// Substring of the read-site label.
        read: &'static str,
    },
    /// Match a synchronization bug by variable name substring.
    SyncVar(&'static str),
    /// Match a hang finding.
    Hang,
}

/// One Table 2 row: a known bug and how to recognize its rediscovery.
#[derive(Debug, Clone, Copy)]
pub struct PaperBug {
    /// Bug number in Table 2.
    pub id: u32,
    /// Target system.
    pub system: &'static str,
    /// Type column.
    pub kind: &'static str,
    /// New-bug flag.
    pub new: bool,
    /// Write code (paper coordinates).
    pub write_code: &'static str,
    /// Read code (paper coordinates).
    pub read_code: &'static str,
    /// Description.
    pub description: &'static str,
    /// Consequence.
    pub consequence: &'static str,
    /// Recognition rule.
    pub matcher: Matcher,
}

/// The 14 unique bugs of Table 2 with their recognition rules.
#[must_use]
pub fn paper_bugs() -> Vec<PaperBug> {
    vec![
        PaperBug {
            id: 1,
            system: "P-CLHT",
            kind: "Inter",
            new: true,
            write_code: "clht_lb_res.c:785",
            read_code: "clht_lb_res.c:417",
            description: "read unflushed table pointer and insert items",
            consequence: "data loss",
            matcher: Matcher::Triple {
                write: "785",
                read: "417",
                effect: "",
            },
        },
        PaperBug {
            id: 2,
            system: "P-CLHT",
            kind: "Sync",
            new: true,
            write_code: "clht_lb_res.c:429",
            read_code: "",
            description: "do not initialize bucket locks after restarts",
            consequence: "hang",
            matcher: Matcher::SyncVar("clht.bucket_lock"),
        },
        PaperBug {
            id: 3,
            system: "P-CLHT",
            kind: "Intra",
            new: true,
            write_code: "clht_lb_res.c:789",
            read_code: "clht_gc.c:190",
            description: "read unflushed table pointer and perform GC",
            consequence: "PM leakage",
            matcher: Matcher::Triple {
                write: "789",
                read: "clht_gc.c:190",
                effect: "gc_log",
            },
        },
        PaperBug {
            id: 4,
            system: "P-CLHT",
            kind: "Other",
            new: true,
            write_code: "clht_lb_res.c:321",
            read_code: "clht_lb_res.c:616",
            description: "read unflushed keys",
            consequence: "redundant PM writes",
            matcher: Matcher::Candidate {
                write: "321",
                read: "616",
            },
        },
        PaperBug {
            id: 5,
            system: "P-CLHT",
            kind: "Other",
            new: true,
            write_code: "clht_lb_res.c:526",
            read_code: "",
            description: "do not release bucket locks in update",
            consequence: "hang",
            matcher: Matcher::Hang,
        },
        PaperBug {
            id: 6,
            system: "CCEH",
            kind: "Sync",
            new: true,
            write_code: "CCEH.h:86",
            read_code: "",
            description: "do not release segment locks after restarts",
            consequence: "hang",
            matcher: Matcher::SyncVar("cceh.segment_lock"),
        },
        PaperBug {
            id: 7,
            system: "CCEH",
            kind: "Intra",
            new: true,
            write_code: "CCEH.h:165",
            read_code: "CCEH.cpp:171",
            description: "read unflushed capacity and allocate segments",
            consequence: "PM leakage",
            matcher: Matcher::Triple {
                write: "CCEH.h:165",
                read: "171",
                effect: "",
            },
        },
        PaperBug {
            id: 8,
            system: "FAST-FAIR",
            kind: "Inter",
            new: true,
            write_code: "btree.h:560",
            read_code: "btree.h:876",
            description: "read unflushed pointer and insert data",
            consequence: "data loss",
            matcher: Matcher::Triple {
                write: "560",
                read: "876",
                effect: "",
            },
        },
        PaperBug {
            id: 9,
            system: "memcached-pmem",
            kind: "Inter",
            new: true,
            write_code: "memcached.c:4292",
            read_code: "memcached.c:2805",
            description: "read unflushed value and write value",
            consequence: "inconsistent data",
            matcher: Matcher::Triple {
                write: "",
                read: "2805",
                effect: "4292",
            },
        },
        PaperBug {
            id: 10,
            system: "memcached-pmem",
            kind: "Inter",
            new: true,
            write_code: "memcached.c:4293",
            read_code: "memcached.c:2805",
            description: "read unflushed value and write value length",
            consequence: "inconsistent data",
            matcher: Matcher::Triple {
                write: "",
                read: "2805",
                effect: "4293",
            },
        },
        PaperBug {
            id: 11,
            system: "memcached-pmem",
            kind: "Inter",
            new: false,
            write_code: "items.c:423",
            read_code: "items.c:464",
            description: "read unflushed 'prev' and write 'slabs_clsid'",
            consequence: "inconsistent index",
            matcher: Matcher::Triple {
                write: "",
                read: "items.c:464",
                effect: "items.c:464.store_clsid",
            },
        },
        PaperBug {
            id: 12,
            system: "memcached-pmem",
            kind: "Inter",
            new: false,
            write_code: "slabs.c:549",
            read_code: "slabs.c:412",
            description: "read unflushed 'next' and write 'it_flags' or value",
            consequence: "inconsistent index",
            matcher: Matcher::Triple {
                write: "",
                read: "slabs.c:412",
                effect: "store_it_flags",
            },
        },
        PaperBug {
            id: 13,
            system: "memcached-pmem",
            kind: "Inter",
            new: false,
            write_code: "items.c:1096",
            read_code: "memcached.c:2824",
            description: "read unflushed 'it_flags' and write value",
            consequence: "inconsistent data",
            matcher: Matcher::Triple {
                write: "",
                read: "2824",
                effect: "store_value_header",
            },
        },
        PaperBug {
            id: 14,
            system: "memcached-pmem",
            kind: "Inter",
            new: false,
            write_code: "items.c:627",
            read_code: "items.c:623",
            description: "read unflushed 'slabs_clsid' and write 'slabs_clsid'",
            consequence: "inconsistent index",
            matcher: Matcher::Triple {
                write: "",
                read: "items.c:623",
                effect: "items.c:627",
            },
        },
    ]
}

/// Did this fuzz report rediscover the given paper bug?
#[must_use]
pub fn bug_found(report: &FuzzReport, bug: &PaperBug) -> bool {
    if report.target != bug.system {
        return false;
    }
    match bug.matcher {
        Matcher::Triple {
            write,
            read,
            effect,
        } => report
            .bug_triples
            .iter()
            .any(|(w, r, e)| w.contains(write) && r.contains(read) && e.contains(effect)),
        Matcher::Candidate { write, read } => report
            .candidate_only
            .iter()
            .any(|(w, r)| w.contains(write) && r.contains(read)),
        Matcher::SyncVar(name) => report
            .bugs
            .iter()
            .any(|b| b.kind == BugKind::Sync && b.write_label.contains(name)),
        Matcher::Hang => report.bugs.iter().any(|b| b.kind == BugKind::Hang),
    }
}

/// Table 1: the evaluated systems.
#[must_use]
pub fn table1() -> String {
    let rows = vec![
        vec![
            "P-CLHT".into(),
            "70bf21c".into(),
            "Static hashing".into(),
            "Lock-based".into(),
        ],
        vec![
            "clevel hashing".into(),
            "cae716f".into(),
            "PM-optimized hashing".into(),
            "Lock-free".into(),
        ],
        vec![
            "CCEH".into(),
            "46771e3".into(),
            "Extendible hashing".into(),
            "Lock-based".into(),
        ],
        vec![
            "FAST-FAIR".into(),
            "0f047e8".into(),
            "B+-Tree".into(),
            "Lock-based".into(),
        ],
        vec![
            "memcached-pmem".into(),
            "8f121f6".into(),
            "Key-value store".into(),
            "Lock-based".into(),
        ],
    ];
    table(
        "Table 1: The concurrent PM programs tested by PMRace.",
        &["Systems", "Version", "Scope", "Concurrency"],
        &rows,
    )
}

/// Table 2: unique bugs, with a Found column recording rediscovery.
#[must_use]
pub fn table2(reports: &[FuzzReport]) -> String {
    let by_target: HashMap<&str, &FuzzReport> = reports.iter().map(|r| (r.target, r)).collect();
    let rows: Vec<Vec<String>> = paper_bugs()
        .iter()
        .map(|b| {
            let found = by_target.get(b.system).is_some_and(|r| bug_found(r, b));
            vec![
                b.system.to_owned(),
                b.id.to_string(),
                b.kind.to_owned(),
                if b.new { "yes" } else { "no" }.to_owned(),
                b.write_code.to_owned(),
                b.read_code.to_owned(),
                b.description.to_owned(),
                b.consequence.to_owned(),
                if found { "FOUND" } else { "-" }.to_owned(),
            ]
        })
        .collect();
    table(
        "Table 2: The unique bugs found by PMRace (Found = rediscovered in this run).",
        &[
            "Systems",
            "#",
            "Type",
            "New",
            "Write code",
            "Read code",
            "Description",
            "Consequence",
            "Found",
        ],
        &rows,
    )
}

/// Table 3: detection and false-positive breakdown.
#[must_use]
pub fn table3(reports: &[FuzzReport]) -> String {
    let mut rows = Vec::new();
    let mut tot = [0usize; 9];
    for r in reports {
        let s = r.stats;
        let counts = r.bugs.iter().filter(|b| b.kind == BugKind::Inter).count();
        let sync_bugs = r.bugs.iter().filter(|b| b.kind == BugKind::Sync).count();
        let cells = [
            s.inter_candidates,
            s.inter,
            s.validated_fp,
            s.whitelisted_fp,
            counts,
            s.annotations,
            s.sync,
            s.sync_validated_fp,
            sync_bugs,
        ];
        for (t, c) in tot.iter_mut().zip(cells) {
            *t += c;
        }
        let mut row = vec![r.target.to_owned()];
        row.extend(cells.iter().map(ToString::to_string));
        rows.push(row);
    }
    let mut total_row = vec!["Total".to_owned()];
    total_row.extend(tot.iter().map(ToString::to_string));
    rows.push(total_row);
    table(
        "Table 3: The results of PM concurrency bug detection.",
        &[
            "Systems",
            "Inter-Cand",
            "Inter",
            "Validated FP",
            "Whitelisted FP",
            "Bug",
            "Annotation",
            "Sync",
            "Sync Validated FP",
            "Sync Bug",
        ],
        &rows,
    )
}

/// Table 5: unique-bug summary per type ("found | paper" per cell).
#[must_use]
pub fn table5(reports: &[FuzzReport]) -> String {
    // Paper counts per system per type for the "n|m" style comparison.
    let paper: HashMap<(&str, &str), usize> =
        paper_bugs()
            .iter()
            .map(|b| (b.system, b.kind))
            .fold(HashMap::new(), |mut m, k| {
                *m.entry(k).or_insert(0) += 1;
                m
            });
    let bugs = paper_bugs();
    let mut rows = Vec::new();
    for r in reports {
        let found_of = |kind: &str| -> usize {
            bugs.iter()
                .filter(|b| b.system == r.target && b.kind == kind && bug_found(r, b))
                .count()
        };
        let cell = |kind: &str| -> String {
            let p = paper.get(&(r.target, kind)).copied().unwrap_or(0);
            if p == 0 {
                "-".to_owned()
            } else {
                format!("{}|{}", found_of(kind), p)
            }
        };
        let total_found: usize = ["Inter", "Sync", "Intra", "Other"]
            .iter()
            .map(|k| found_of(k))
            .sum();
        let total_paper: usize = ["Inter", "Sync", "Intra", "Other"]
            .iter()
            .map(|k| paper.get(&(r.target, *k)).copied().unwrap_or(0))
            .sum();
        rows.push(vec![
            r.target.to_owned(),
            cell("Inter"),
            cell("Sync"),
            cell("Intra"),
            cell("Other"),
            format!("{total_found}|{total_paper}"),
        ]);
    }
    table(
        "Table 5: The number of unique bugs found (found|paper per cell).",
        &["Systems", "Inter", "Sync", "Intra", "Other", "Total"],
        &rows,
    )
}

/// Table 6: inconsistency / false-positive summary (condensed Table 3).
#[must_use]
pub fn table6(reports: &[FuzzReport]) -> String {
    let mut rows = Vec::new();
    let mut tot = [0usize; 6];
    for r in reports {
        let s = r.stats;
        let bugs = r
            .bugs
            .iter()
            .filter(|b| matches!(b.kind, BugKind::Inter | BugKind::Sync))
            .count();
        let cells = [
            s.inter_candidates,
            s.inter,
            s.sync,
            s.validated_fp + s.whitelisted_fp,
            s.sync_validated_fp,
            bugs,
        ];
        for (t, c) in tot.iter_mut().zip(cells) {
            *t += c;
        }
        let mut row = vec![r.target.to_owned()];
        row.extend(cells.iter().map(ToString::to_string));
        rows.push(row);
    }
    let mut total_row = vec!["Total".to_owned()];
    total_row.extend(tot.iter().map(ToString::to_string));
    rows.push(total_row);
    table(
        "Table 6: Detected inconsistencies and filtered false positives.",
        &[
            "Systems",
            "Inter-Cand",
            "Inter",
            "Sync",
            "FP (Inter)",
            "FP (Sync)",
            "Bug",
        ],
        &rows,
    )
}

/// Run the shared sweep and render Tables 2, 3, 5, 6.
#[must_use]
pub fn bug_tables(budget: Budget, rng_seed: u64) -> (Vec<FuzzReport>, String) {
    let reports = fuzz_all_targets(budget, rng_seed);
    let mut out = String::new();
    out.push_str(&table2(&reports));
    out.push('\n');
    out.push_str(&table3(&reports));
    out.push('\n');
    out.push_str(&table5(&reports));
    out.push('\n');
    out.push_str(&table6(&reports));
    (reports, out)
}

/// Table 4: code coverage of memcached commands per mutator.
///
/// For each generator, feeds ~2100 commands (100 seeds of 21 commands) into
/// `process_command` and attributes newly covered branches to the family of
/// the command that reached them.
#[must_use]
pub fn table4(commands_per_seed: usize, seeds: usize) -> String {
    let families = [
        CmdFamily::Get,
        CmdFamily::Update,
        CmdFamily::Incr,
        CmdFamily::Decr,
        CmdFamily::Delete,
        CmdFamily::Error,
    ];
    let run = |lines: Vec<String>| -> (HashMap<CmdFamily, usize>, usize, usize) {
        let session = Session::new(
            Arc::new(Pool::new(pmrace_pmem::PoolOpts::small())),
            SessionConfig {
                capture_crash_images: false,
                ..SessionConfig::default()
            },
        );
        let kv = MemKv::init(&session).expect("memkv init");
        let view = session.view(ThreadId(0));
        let mut per_family: HashMap<CmdFamily, usize> = HashMap::new();
        let mut prev = session.coverage_counts().1;
        let mut errors = 0;
        for line in &lines {
            let family = classify(line);
            if family == CmdFamily::Error {
                errors += 1;
            }
            let _ = kv.process_command(&view, line);
            let now = session.coverage_counts().1;
            *per_family.entry(family).or_insert(0) += now - prev;
            prev = now;
        }
        (per_family, prev, errors)
    };

    let total_cmds = commands_per_seed * seeds;
    let mut afl = ByteMutator::new(4242);
    let (afl_cov, afl_total, afl_errors) = run(afl.batch(total_cmds));
    let mut pmr = CommandGen::new(4242);
    let (pmr_cov, pmr_total, pmr_errors) = run(pmr.batch(total_cmds));

    let mut rows = Vec::new();
    for (name, cov, total, errors) in [
        ("AFL++", &afl_cov, afl_total, afl_errors),
        ("PMRace", &pmr_cov, pmr_total, pmr_errors),
    ] {
        let mut row = vec![name.to_owned()];
        for f in families {
            row.push(cov.get(&f).copied().unwrap_or(0).to_string());
        }
        row.push(total.to_string());
        row.push(format!("{errors}/{total_cmds}"));
        rows.push(row);
    }
    table(
        "Table 4: Branch coverage of memcached-pmem commands per input generator.",
        &[
            "Schemes",
            "Get*",
            "Update*",
            "incr",
            "decr",
            "delete",
            "Error",
            "Total",
            "Invalid cmds",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bug_list_matches_table2() {
        let bugs = paper_bugs();
        assert_eq!(bugs.len(), 14);
        assert_eq!(bugs.iter().filter(|b| b.new).count(), 10);
        assert_eq!(
            bugs.iter().filter(|b| b.system == "memcached-pmem").count(),
            6
        );
        assert_eq!(bugs.iter().filter(|b| b.kind == "Inter").count(), 8);
        assert_eq!(bugs.iter().filter(|b| b.kind == "Sync").count(), 2);
    }

    #[test]
    fn table1_lists_all_systems() {
        let t = table1();
        for name in ["P-CLHT", "clevel", "CCEH", "FAST-FAIR", "memcached-pmem"] {
            assert!(t.contains(name), "{name} missing:\n{t}");
        }
    }

    #[test]
    fn table4_pmrace_beats_afl_on_valid_coverage() {
        let t = table4(21, 20); // scaled down for test speed
                                // The PMRace row must exist and the AFL row must show invalid cmds.
        assert!(t.contains("PMRace"));
        assert!(t.contains("AFL++"));
    }
}

//! Plain-text table rendering for experiment output.

/// Render a fixed-width text table with a header rule.
#[must_use]
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a simple `(x, y...)` series block for figures.
#[must_use]
pub fn series(title: &str, headers: &[&str], points: &[Vec<String>]) -> String {
    table(title, headers, points)
}

/// Render a unicode sparkline of a numeric series (for figure output).
#[must_use]
pub fn sparkline(values: &[usize]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let (min, max) = values
        .iter()
        .fold((usize::MAX, 0usize), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    if values.is_empty() {
        return String::new();
    }
    let span = (max - min).max(1);
    values
        .iter()
        .map(|&v| BARS[((v - min) * (BARS.len() - 1)) / span])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0, 5, 10]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '\u{2581}');
        assert_eq!(chars[2], '\u{2588}');
        assert!(chars[1] > chars[0] && chars[1] < chars[2]);
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[7, 7]), "\u{2581}\u{2581}");
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            "T",
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        assert!(out.contains("long-header"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and rows share the first column width.
        let col = lines[1].find("long-header").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), col);
    }
}

//! Shared fuzzing sweep: one PMRace run per target, reused by Tables 2/3/5/6.

use pmrace_core::{FuzzConfig, FuzzReport, Fuzzer, StrategyKind};
use pmrace_targets::all_targets;

use crate::Budget;

/// Run the PMRace fuzzer on every evaluated system with the given budget.
///
/// # Panics
///
/// Panics if a target fails to initialize (a bug in the harness, not an
/// experiment outcome).
#[must_use]
pub fn fuzz_all_targets(budget: Budget, rng_seed: u64) -> Vec<FuzzReport> {
    all_targets()
        .iter()
        .map(|spec| fuzz_target(spec.name, budget, StrategyKind::Pmrace, rng_seed))
        .collect()
}

/// Run one fuzzing sweep on a single target.
///
/// # Panics
///
/// Panics if the target name is unknown or initialization fails.
#[must_use]
pub fn fuzz_target(
    name: &str,
    budget: Budget,
    strategy: StrategyKind,
    rng_seed: u64,
) -> FuzzReport {
    let mut cfg = FuzzConfig::new(name);
    cfg.strategy = strategy;
    cfg.max_campaigns = budget.campaigns;
    cfg.wall_budget = budget.wall;
    cfg.workers = budget.workers;
    cfg.rng_seed = rng_seed;
    Fuzzer::new(cfg)
        .expect("known target")
        .run()
        .expect("fuzzing run completes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sweep_single_target_smoke() {
        let budget = Budget {
            campaigns: 3,
            wall: Duration::from_secs(10),
            workers: 2,
        };
        let report = fuzz_target("clevel", budget, StrategyKind::Pmrace, 5);
        assert_eq!(report.target, "clevel");
        assert!(report.campaigns >= 1);
    }
}

//! Standalone fleet-scaling probe: runs exactly the `fleet_execs` bench
//! cell (same config as `hotpath.rs`) for a list of worker counts in one
//! process, so scaling regressions can be bisected without re-running the
//! whole matrix.
//!
//! Usage: `fleetprobe <workers>[,<workers>...] [secs] [deadline_ms] [threads]`

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workers_list: Vec<usize> = args
        .get(1)
        .map(|v| v.split(',').filter_map(|w| w.parse().ok()).collect())
        .unwrap_or_else(|| vec![1]);
    let secs: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);
    let deadline_ms: u64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(400);
    let threads: usize = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(2);

    pmrace_targets::register_builtins();
    if std::env::var("FLEETPROBE_WARMUP").is_ok() {
        // Emulate the hotpath matrix context: the validate cells run
        // P-CLHT campaigns before the fleet cells, registering that
        // target's instruction sites first and shifting FAST-FAIR's ids.
        let mut cfg = pmrace_core::FuzzConfig::new("P-CLHT");
        cfg.workers = 1;
        cfg.threads = 2;
        cfg.max_campaigns = 50;
        cfg.wall_budget = Duration::from_secs(1);
        let _ = pmrace_core::Fuzzer::new(cfg).expect("P-CLHT").run();
    }
    if std::env::var("FLEETPROBE_SHIFT_SITES").is_ok() {
        // Simulate the hotpath matrix context, where the instrumentation
        // cells register their sites before the fleet cells run: shifting
        // the target's site ids shifts coverage hashes and plan selection.
        let _ = pmrace_runtime::site!("probe-shift-0");
        let _ = pmrace_runtime::site!("probe-shift-1");
        let _ = pmrace_runtime::site!("probe-shift-2");
        let _ = pmrace_runtime::site!("probe-shift-3");
        let _ = pmrace_runtime::site!("probe-shift-4");
        let _ = pmrace_runtime::site!("probe-shift-5");
        let _ = pmrace_runtime::site!("probe-shift-6");
        let _ = pmrace_runtime::site!("probe-shift-7");
    }
    for workers in workers_list {
        let mut cfg = pmrace_core::FuzzConfig::new("FAST-FAIR");
        cfg.workers = workers;
        cfg.threads = threads;
        cfg.max_campaigns = usize::MAX;
        cfg.wall_budget = Duration::from_secs(secs);
        cfg.campaign_deadline = Duration::from_millis(deadline_ms);
        cfg.rng_seed = 0xF1EE7 ^ workers as u64;
        if let Ok(dir) = std::env::var("FLEETPROBE_TELEMETRY") {
            cfg.telemetry_dir = Some(format!("{dir}/w{workers}").into());
        }
        let report = pmrace_core::Fuzzer::new(cfg)
            .expect("FAST-FAIR is registered")
            .run()
            .expect("fleet probe run");
        println!(
            "workers={} campaigns={} execs_per_sec={:.1} accesses_per_sec={:.0}",
            workers, report.campaigns, report.execs_per_sec, report.accesses_per_sec
        );
    }
}

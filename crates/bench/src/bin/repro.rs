//! `repro`: regenerate the tables and figures of the PMRace evaluation,
//! and manage the record/replay regression corpus.
//!
//! ```text
//! repro [--quick] [--seed N] [--out-dir DIR] [--check-against FILE]
//!       [--tolerance X] [--min-fleet-scaling X] <experiments...>
//! experiments: table1 table2 table3 table4 table5 table6 fig8 fig9 fig10
//!              eadr hotpath all
//!     With --check-against, exit 1 unless the hotpath run produces every
//!     cell named in FILE (the CI schema guard for BENCH_hotpath.json).
//!     Adding --tolerance X also enforces a one-sided perf band: exit 1 if
//!     any measured cell falls below the committed ops/sec divided by X
//!     (X > 1; generous values absorb CI noise, regressions still trip it).
//!     Adding --min-fleet-scaling X enforces that FILE's committed
//!     4-worker fleet_execs cell runs at >= X times its 1-worker cell, so
//!     a regenerated trajectory that lost its fleet scaling cannot land.
//!
//! repro replay [--steer|--free] [--attempts N] [--telemetry-out DIR]
//!              <artifact.json|corpus-dir>...
//!     Replay repro artifacts; exit 1 unless every recorded bug re-fires.
//!     With --telemetry-out, write telemetry.json + trace.jsonl for the
//!     replay run into DIR.
//!
//! repro corpus <dir> [--minimize]
//!     Build (and validate by replay) the 14-bug Table 2 regression
//!     corpus; --minimize additionally delta-debugs each artifact.
//!
//! repro stats [--top N] [--check-schema] <telemetry.json|trace.jsonl|dir>...
//!     Render a per-phase time breakdown, campaign counters, and the
//!     hottest instrumentation sites from a telemetry snapshot; with
//!     --check-schema, exit 1 unless every snapshot validates against the
//!     documented schema (docs/OBSERVABILITY.md).
//! ```
//!
//! `table2/3/5/6` share one fuzzing sweep and are emitted together when any
//! of them is requested. `--out-dir` redirects machine-readable outputs
//! (currently `BENCH_hotpath.json`) away from the working directory.

use std::path::{Path, PathBuf};

use pmrace_bench::{figs, hotpath, tables, Budget};
use pmrace_replay::{
    build_corpus, minimize, replay, replay_corpus, MinimizeOptions, ReplayMode, ReplayOptions,
    ReproStore,
};
use pmrace_telemetry as telemetry;

/// Flags that consume the following argument; everything else that does
/// not start with `--` is a positional.
const VALUE_FLAGS: &[&str] = &[
    "--attempts",
    "--telemetry-out",
    "--top",
    "--seed",
    "--out-dir",
    "--check-against",
    "--tolerance",
    "--min-fleet-scaling",
];

fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if VALUE_FLAGS.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") {
            out.push(args[i].clone());
        }
        i += 1;
    }
    out
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn replay_options(args: &[String]) -> ReplayOptions {
    let mut opts = ReplayOptions::default();
    if args.iter().any(|a| a == "--steer") {
        opts.mode = ReplayMode::Steer;
    }
    if args.iter().any(|a| a == "--free") {
        opts.mode = ReplayMode::Free;
    }
    if let Some(n) = args
        .iter()
        .position(|a| a == "--attempts")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        opts.attempts = n.max(1);
    }
    opts
}

/// `repro replay <paths...>`: exit 0 iff every artifact re-triggers its
/// recorded bug.
fn cmd_replay(args: &[String]) -> ! {
    let opts = replay_options(args);
    let telemetry_out = flag_value(args, "--telemetry-out").map(PathBuf::from);
    if telemetry_out.is_some() {
        telemetry::set_enabled(true);
    }
    let paths = positionals(args);
    if paths.is_empty() {
        eprintln!(
            "usage: repro replay [--steer|--free] [--attempts N] \
             [--telemetry-out DIR] <artifact|dir>..."
        );
        std::process::exit(2);
    }
    let mut failures = 0usize;
    let mut total = 0usize;
    for arg in &paths {
        let path = Path::new(arg);
        let entries = if path.is_dir() {
            match replay_corpus(path, &opts) {
                Ok(results) => results
                    .into_iter()
                    .map(|r| (r.path, r.key, r.matched, r.divergence))
                    .collect(),
                Err(e) => {
                    eprintln!("[replay] {arg}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            match ReproStore::load(path).map(|repro| {
                let key = repro.signature.key();
                replay(&repro, &opts)
                    .map(|out| (path.to_path_buf(), key, out.matched, out.divergence))
            }) {
                Ok(Ok(one)) => vec![one],
                Ok(Err(e)) | Err(e) => {
                    eprintln!("[replay] {arg}: {e}");
                    std::process::exit(1);
                }
            }
        };
        for (path, key, matched, divergence) in entries {
            total += 1;
            let status = if matched { "ok" } else { "FAIL" };
            println!("[replay] {status:4} {key}  ({})", path.display());
            if let Some(d) = divergence {
                println!("[replay]      divergence: {d}");
            }
            if !matched {
                failures += 1;
            }
        }
    }
    println!(
        "[replay] {}/{} artifacts re-triggered their bug",
        total - failures,
        total
    );
    if let Some(dir) = &telemetry_out {
        if let Err(e) = write_telemetry(dir) {
            eprintln!("[replay] telemetry: {e}");
            std::process::exit(1);
        }
        println!("[replay] wrote telemetry to {}", dir.display());
    }
    std::process::exit(i32::from(failures > 0));
}

/// Snapshot the telemetry registry into `dir` (`telemetry.json` +
/// `trace.jsonl`), resolving hot-site ids through the runtime's registry.
fn write_telemetry(dir: &Path) -> std::io::Result<()> {
    let resolve = |id: u32| {
        let site = pmrace_runtime::Site::from_id(id);
        let label = pmrace_runtime::site_label(site);
        (label != "<unknown site>")
            .then(|| format!("{label} ({})", pmrace_runtime::site_location(site)))
    };
    telemetry::snapshot::write_snapshot(dir, &resolve)?;
    telemetry::snapshot::write_trace_jsonl(dir)?;
    Ok(())
}

/// `repro stats`: render one or more telemetry snapshots for humans.
fn cmd_stats(args: &[String]) -> ! {
    let top = flag_value(args, "--top")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(10);
    let paths: Vec<PathBuf> = positionals(args).iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        eprintln!(
            "usage: repro stats [--top N] [--check-schema] \
             <telemetry.json|trace.jsonl|dir>..."
        );
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--check-schema") {
        let files = match telemetry::stats::resolve_inputs(&paths) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("[stats] {e}");
                std::process::exit(1);
            }
        };
        for f in files
            .iter()
            .filter(|f| f.extension().is_some_and(|e| e == "json"))
        {
            let text = match std::fs::read_to_string(f) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[stats] {}: {e}", f.display());
                    std::process::exit(1);
                }
            };
            if let Err(e) = telemetry::snapshot::validate_snapshot_text(&text) {
                eprintln!("[stats] {}: schema violation: {e}", f.display());
                std::process::exit(1);
            }
            println!("[stats] schema ok: {}", f.display());
        }
    }
    match telemetry::stats::render_stats(&paths, top) {
        Ok(report) => {
            println!("{report}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[stats] {e}");
            std::process::exit(1);
        }
    }
}

/// `repro corpus <dir> [--minimize]`: build the validated Table 2 corpus.
fn cmd_corpus(args: &[String]) -> ! {
    let Some(dir) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: repro corpus <dir> [--minimize]");
        std::process::exit(2);
    };
    let dir = Path::new(dir);
    let built = match build_corpus(dir) {
        Ok(built) => built,
        Err(e) => {
            eprintln!("[corpus] build failed: {e}");
            std::process::exit(1);
        }
    };
    for b in &built {
        println!(
            "[corpus] bug {:2}: {} ({} rounds) -> {}",
            b.bug_id,
            b.signature.key(),
            b.rounds_used,
            b.path.display()
        );
    }
    if args.iter().any(|a| a == "--minimize") {
        let store = match ReproStore::open(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[corpus] {e}");
                std::process::exit(1);
            }
        };
        let opts = MinimizeOptions::default();
        for b in &built {
            let repro = match ReproStore::load(&b.path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("[corpus] bug {}: {e}", b.bug_id);
                    std::process::exit(1);
                }
            };
            match minimize(&repro, &opts) {
                Ok(report) => {
                    if let Err(e) = store.save(&report.repro) {
                        eprintln!("[corpus] bug {}: {e}", b.bug_id);
                        std::process::exit(1);
                    }
                    println!(
                        "[corpus] bug {:2}: minimized ops {} -> {}, events {} -> {} ({} tests)",
                        b.bug_id,
                        report.ops_before,
                        report.ops_after,
                        report.events_before,
                        report.events_after,
                        report.tests_run
                    );
                }
                Err(e) => {
                    eprintln!("[corpus] bug {}: minimization failed: {e}", b.bug_id);
                    std::process::exit(1);
                }
            }
        }
    }
    println!(
        "[corpus] {} artifacts ready in {}",
        built.len(),
        dir.display()
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {}
    }
    let quick = args.iter().any(|a| a == "--quick");
    let seed = flag_value(&args, "--seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    let positional = positionals(&args);
    let mut wanted: Vec<&str> = positional.iter().map(String::as_str).collect();
    const KNOWN: &[&str] = &[
        "table1", "table2", "table3", "table4", "table5", "table6", "fig8", "fig9", "fig10",
        "eadr", "hotpath", "all",
    ];
    let mut had_unknown = false;
    for unknown in wanted.iter().filter(|w| !KNOWN.contains(w)) {
        eprintln!(
            "[repro] unknown experiment \"{unknown}\"; known: {}",
            KNOWN.join(" ")
        );
        had_unknown = true;
    }
    wanted.retain(|w| KNOWN.contains(w));
    if had_unknown && wanted.is_empty() {
        std::process::exit(2);
    }
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table1", "table2", "table4", "fig8", "fig9", "fig10", "eadr", "hotpath",
        ];
    }
    let budget = if quick {
        Budget::quick()
    } else {
        Budget::full()
    };
    let sweep_needed = wanted
        .iter()
        .any(|w| matches!(*w, "table2" | "table3" | "table5" | "table6"));

    println!(
        "# PMRace evaluation reproduction (seed={seed}, {} budget)\n",
        if quick { "quick" } else { "full" }
    );

    if wanted.contains(&"table1") {
        println!("{}", tables::table1());
    }
    if sweep_needed {
        eprintln!("[repro] running the shared fuzzing sweep over all 5 targets...");
        let (_reports, out) = tables::bug_tables(budget, seed);
        println!("{out}");
    }
    if wanted.contains(&"table4") {
        eprintln!("[repro] running the input-generator coverage comparison...");
        println!("{}", tables::table4(21, if quick { 20 } else { 100 }));
    }
    if wanted.contains(&"fig8") {
        eprintln!("[repro] running the interleaving-exploration comparison (fig 8)...");
        println!("{}", figs::fig8(budget, seed));
    }
    if wanted.contains(&"fig9") {
        eprintln!("[repro] running the exploration-tier ablation (fig 9)...");
        let fig9_budget = Budget {
            workers: 1,
            ..budget
        };
        println!("{}", figs::fig9(fig9_budget, seed));
    }
    if wanted.contains(&"fig10") {
        eprintln!("[repro] measuring checkpoint impact (fig 10)...");
        println!("{}", figs::fig10(if quick { 10 } else { 40 }, seed));
    }
    if wanted.contains(&"eadr") {
        eprintln!("[repro] running the ADR vs eADR ablation (§6.6)...");
        println!("{}", figs::eadr_ablation(budget, seed));
    }
    if wanted.contains(&"hotpath") {
        eprintln!("[repro] measuring contended hot-path throughput...");
        let cells = hotpath::run_matrix(quick);
        println!("{}", hotpath::render(&cells));
        // Schema-drift guard: every cell name present in the committed
        // BENCH_hotpath.json must still be produced by the bench code, so a
        // renamed or dropped cell cannot silently break the tracked perf
        // trajectory.
        if let Some(committed) = flag_value(&args, "--check-against") {
            let text = match std::fs::read_to_string(&committed) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[repro] --check-against {committed}: {e}");
                    std::process::exit(1);
                }
            };
            let missing: Vec<String> = hotpath::cell_names_in_json(&text)
                .into_iter()
                .filter(|name| !cells.iter().any(|c| &c.name == name))
                .collect();
            if missing.is_empty() {
                eprintln!("[repro] hotpath cells match {committed}");
            } else {
                eprintln!(
                    "[repro] hotpath run is missing cells present in {committed}: {}",
                    missing.join(", ")
                );
                std::process::exit(1);
            }
            // Perf-regression band: each measured cell must reach at least
            // `committed / tolerance` ops/sec. One-sided on purpose —
            // getting faster is never a failure — and keyed on the full
            // (name, threads, lines) coordinate.
            if let Some(tol) = flag_value(&args, "--tolerance") {
                let tol: f64 = match tol.parse() {
                    Ok(t) if t >= 1.0 => t,
                    _ => {
                        eprintln!("[repro] --tolerance must be a number >= 1.0, got {tol}");
                        std::process::exit(2);
                    }
                };
                let mut regressed = 0usize;
                for (name, threads, lines, committed_ops) in hotpath::cell_values_in_json(&text) {
                    let Some(cell) = cells.iter().find(|c| {
                        c.name == name
                            && c.threads == threads
                            && (if c.disjoint {
                                "disjoint"
                            } else {
                                "overlapping"
                            }) == lines
                    }) else {
                        continue;
                    };
                    let floor = committed_ops / tol;
                    if cell.ops_per_sec() < floor {
                        eprintln!(
                            "[repro] PERF REGRESSION {name} ({threads}T {lines}): \
                             {:.0} ops/sec < floor {floor:.0} (committed {committed_ops:.0} / {tol})",
                            cell.ops_per_sec()
                        );
                        regressed += 1;
                    }
                }
                if regressed > 0 {
                    eprintln!(
                        "[repro] {regressed} hotpath cells regressed past the tolerance band"
                    );
                    std::process::exit(1);
                }
                eprintln!("[repro] hotpath throughput within {tol}x of {committed}");
            }
            // Fleet-scaling gate: the committed trajectory must show the
            // 4-worker fleet_execs cell at >= X times the 1-worker cell.
            // Evaluated against the committed file, not this run — quick
            // fleet cells are sub-second and too noisy to gate on, while
            // the committed JSON comes from full 8-second windows. The
            // fresh ratio is printed alongside for the curious.
            if let Some(min) = flag_value(&args, "--min-fleet-scaling") {
                let min: f64 = match min.parse() {
                    Ok(m) if m >= 1.0 => m,
                    _ => {
                        eprintln!("[repro] --min-fleet-scaling must be a number >= 1.0, got {min}");
                        std::process::exit(2);
                    }
                };
                let fresh = |threads: usize| {
                    cells
                        .iter()
                        .find(|c| c.name == "fleet_execs" && c.threads == threads)
                        .map(hotpath::HotpathCell::ops_per_sec)
                };
                if let (Some(one), Some(four)) = (fresh(1), fresh(4)) {
                    if one > 0.0 {
                        eprintln!("[repro] fleet scaling this run: 4w/1w = {:.2}x", four / one);
                    }
                }
                match hotpath::fleet_scaling_in_json(&text, 4, 1) {
                    Some(ratio) if ratio >= min => {
                        eprintln!(
                            "[repro] fleet scaling committed in {committed}: \
                             4w/1w = {ratio:.2}x (>= {min}x required)"
                        );
                    }
                    Some(ratio) => {
                        eprintln!(
                            "[repro] FLEET SCALING REGRESSION: {committed} commits \
                             4w/1w = {ratio:.2}x, below the required {min}x"
                        );
                        std::process::exit(1);
                    }
                    None => {
                        eprintln!(
                            "[repro] {committed} lacks fleet_execs cells at 1 and 4 \
                             workers; cannot enforce --min-fleet-scaling"
                        );
                        std::process::exit(1);
                    }
                }
            }
        }
        if quick {
            // Quick numbers are noisy; don't clobber the tracked full run.
            eprintln!("[repro] --quick: not rewriting BENCH_hotpath.json");
        } else {
            let out_dir =
                flag_value(&args, "--out-dir").map_or_else(|| PathBuf::from("."), PathBuf::from);
            let out = out_dir.join("BENCH_hotpath.json");
            let json = hotpath::to_json(&cells);
            match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&out, &json)) {
                Ok(()) => eprintln!("[repro] wrote {}", out.display()),
                Err(e) => eprintln!("[repro] could not write {}: {e}", out.display()),
            }
        }
    }
}

//! `repro`: regenerate the tables and figures of the PMRace evaluation.
//!
//! ```text
//! repro [--quick] [--seed N] <experiments...>
//! experiments: table1 table2 table3 table4 table5 table6 fig8 fig9 fig10
//!              eadr hotpath all
//! ```
//!
//! `table2/3/5/6` share one fuzzing sweep and are emitted together when any
//! of them is requested.

use pmrace_bench::{figs, hotpath, tables, Budget};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    let mut wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .collect();
    const KNOWN: &[&str] = &[
        "table1", "table2", "table3", "table4", "table5", "table6", "fig8", "fig9", "fig10",
        "eadr", "hotpath", "all",
    ];
    let mut had_unknown = false;
    for unknown in wanted.iter().filter(|w| !KNOWN.contains(w)) {
        eprintln!(
            "[repro] unknown experiment \"{unknown}\"; known: {}",
            KNOWN.join(" ")
        );
        had_unknown = true;
    }
    wanted.retain(|w| KNOWN.contains(w));
    if had_unknown && wanted.is_empty() {
        std::process::exit(2);
    }
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table1", "table2", "table4", "fig8", "fig9", "fig10", "eadr", "hotpath",
        ];
    }
    let budget = if quick {
        Budget::quick()
    } else {
        Budget::full()
    };
    let sweep_needed = wanted
        .iter()
        .any(|w| matches!(*w, "table2" | "table3" | "table5" | "table6"));

    println!(
        "# PMRace evaluation reproduction (seed={seed}, {} budget)\n",
        if quick { "quick" } else { "full" }
    );

    if wanted.contains(&"table1") {
        println!("{}", tables::table1());
    }
    if sweep_needed {
        eprintln!("[repro] running the shared fuzzing sweep over all 5 targets...");
        let (_reports, out) = tables::bug_tables(budget, seed);
        println!("{out}");
    }
    if wanted.contains(&"table4") {
        eprintln!("[repro] running the input-generator coverage comparison...");
        println!("{}", tables::table4(21, if quick { 20 } else { 100 }));
    }
    if wanted.contains(&"fig8") {
        eprintln!("[repro] running the interleaving-exploration comparison (fig 8)...");
        println!("{}", figs::fig8(budget, seed));
    }
    if wanted.contains(&"fig9") {
        eprintln!("[repro] running the exploration-tier ablation (fig 9)...");
        let fig9_budget = Budget {
            workers: 1,
            ..budget
        };
        println!("{}", figs::fig9(fig9_budget, seed));
    }
    if wanted.contains(&"fig10") {
        eprintln!("[repro] measuring checkpoint impact (fig 10)...");
        println!("{}", figs::fig10(if quick { 10 } else { 40 }, seed));
    }
    if wanted.contains(&"eadr") {
        eprintln!("[repro] running the ADR vs eADR ablation (§6.6)...");
        println!("{}", figs::eadr_ablation(budget, seed));
    }
    if wanted.contains(&"hotpath") {
        eprintln!("[repro] measuring contended hot-path throughput...");
        let cells = hotpath::run_matrix(quick);
        println!("{}", hotpath::render(&cells));
        if quick {
            // Quick numbers are noisy; don't clobber the tracked full run.
            eprintln!("[repro] --quick: not rewriting BENCH_hotpath.json");
        } else {
            let json = hotpath::to_json(&cells);
            match std::fs::write("BENCH_hotpath.json", &json) {
                Ok(()) => eprintln!("[repro] wrote BENCH_hotpath.json"),
                Err(e) => eprintln!("[repro] could not write BENCH_hotpath.json: {e}"),
            }
        }
    }
}

//! [`PmView`]: the instrumented PM access layer target systems program
//! against. Every method is one hooked instruction of the paper's LLVM pass.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use pmrace_pmem::{SiteTag, ThreadId};

use crate::batch::ThreadBuffer;
use crate::session::LoadKind;
use crate::strategy::{AccessCtx, InterleaveStrategy};
use crate::taint::{TBytes, TaintSet, TU64};
use crate::{RtError, Session, Site};

/// Per-thread instrumented handle over the session's pool.
///
/// Cheap to clone is not needed — create one per target thread via
/// [`Session::view`]. All PM traffic of a target must flow through a view;
/// direct [`Pool`](pmrace_pmem::Pool) access would be invisible to the
/// checkers (like code the pass failed to instrument).
///
/// A view is `Send` but deliberately **not** `Sync`: it is one thread's
/// handle, and its metadata buffer lives behind an uncontended [`RefCell`]
/// instead of a lock — the single biggest saving on the access hot path.
/// Move a view into its thread (campaign workers do exactly this); share
/// the [`Session`] when several threads need handles, and give each its
/// own view.
#[derive(Debug)]
pub struct PmView {
    session: Arc<Session>,
    tid: ThreadId,
    /// This thread's write-combining buffer (see [`crate::batch`]). The
    /// view owns it outright: hooks borrow it for the duration of the
    /// access with no atomic instruction, and [`PmView::flush`]/`Drop`
    /// publish it to the shared session state at epoch boundaries.
    buf: RefCell<ThreadBuffer>,
    /// Per-view deadline-check stride counter — each view samples the
    /// clock on its own stride ([`Session::check`] keeps a shared atomic
    /// one for host code without a view).
    check_ctr: Cell<u32>,
    /// Site id of this thread's most recent *failed* CAS ([`NO_CAS_SITE`]
    /// when the last attempt succeeded or none ran yet). Together with
    /// `cas_fail_streak` this measures consecutive-retry depth, reported to
    /// the strategy's `on_cas_fail` hook so it can distinguish a first
    /// failure (prime interposition point) from a retry storm (back off).
    cas_fail_site: Cell<u32>,
    cas_fail_streak: Cell<u32>,
    /// Session mutation count last observed by [`PmView::spin_yield`], with
    /// the number of consecutive yields that saw it unchanged. A streak of
    /// `livelock_spins` no-progress yields means every thread is stuck
    /// behind a lock nobody will release (a leaked-lock hang bug): latch the
    /// hang early instead of spinning out the wall-clock deadline.
    spin_progress: Cell<u64>,
    spin_streak: Cell<u32>,
}

/// Sentinel for `cas_fail_site`: no failed CAS outstanding.
const NO_CAS_SITE: u32 = u32::MAX;

/// After this many consecutive no-progress yields, [`PmView::spin_yield`]
/// stops burning CPU on `yield_now` and parks the thread in short sleeps:
/// the wait is already far past a scheduler quantum, so another yield
/// cannot make the lock holder run any sooner, but a spinning thread
/// *does* steal cycles from it (the 1-worker fleet profile showed most of
/// a campaign's CPU going to instrumented CAS/yield storms inside the
/// scheduler's deliberate writer stalls).
const SPIN_PARK_AFTER: u32 = 128;

/// Nominal parked-sleep quantum (the OS rounds it up by timer slack, so
/// the realized quantum is somewhat longer on a default Linux config).
/// Sized so a spinner parked across the scheduler's 2 ms writer stall
/// makes ~17 sleep syscalls rather than 50: each `nanosleep` costs a few
/// µs of kernel time, and under the fleet that overhead was a measurable
/// slice of per-campaign CPU. The coarser wakeup adds at most one quantum
/// of latency after the stalled writer finally stores, which is noise next
/// to the 2 ms stall itself.
const SPIN_PARK_QUANTUM: std::time::Duration = std::time::Duration::from_micros(120);

/// Livelock-streak credit per parked sleep: one park covers roughly this
/// many yield-loop iterations of frozen wall-clock time, so the hang latch
/// fires on about the same schedule whether the spinner yields or parks
/// (`livelock_spins` keeps one meaning: frozen spin-iterations until the
/// session is declared hung).
const SPIN_PARK_CREDIT: u32 = 192;

impl PmView {
    pub(crate) fn new(session: Arc<Session>, tid: ThreadId) -> Self {
        let trace_depth = session.config().trace_depth;
        PmView {
            session,
            tid,
            buf: RefCell::new(ThreadBuffer::new(tid, trace_depth)),
            check_ctr: Cell::new(0),
            cas_fail_site: Cell::new(NO_CAS_SITE),
            cas_fail_streak: Cell::new(0),
            spin_progress: Cell::new(0),
            spin_streak: Cell::new(0),
        }
    }

    /// The installed strategy, through this buffer's generation-checked
    /// cache: refreshed only when [`Session::set_strategy`] bumps the
    /// generation, so the access hot path never takes the strategy RwLock.
    fn cached_strategy<'b>(&self, buf: &'b mut ThreadBuffer) -> &'b dyn InterleaveStrategy {
        let gen = self.session.strategy_generation();
        if buf.strategy_gen != gen {
            buf.strategy = Some(self.session.strategy());
            buf.strategy_gen = gen;
        }
        buf.strategy.as_deref().expect("strategy cached")
    }

    /// Publish this thread's batched instrumentation metadata (coverage,
    /// access statistics, trace, counters) to the shared session state —
    /// an explicit epoch boundary. Called automatically at CAS/`clwb`/
    /// `sfence` sync points and on drop; call it directly before reading
    /// session-wide statistics ([`Session::coverage_counts`],
    /// [`Session::shared_accesses`], ...) while this view is still live,
    /// or before hand-rolled cross-thread joins if you need another thread
    /// to observe this one's statistics mid-run.
    pub fn flush(&self) {
        let mut buf = self.buf.borrow_mut();
        self.session.flush_buffer(&mut buf);
    }

    /// This view's thread id.
    #[must_use]
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The owning session.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Deadline/halt check; call inside loops that may spin.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] or [`RtError::Halted`].
    pub fn check(&self) -> Result<(), RtError> {
        let n = self.check_ctr.get();
        self.check_ctr.set(n.wrapping_add(1));
        self.session
            .check_sampled(n & (Session::CHECK_STRIDE - 1) == 0)
    }

    /// Cooperative spin-wait step: deadline check, livelock detection,
    /// thread yield.
    ///
    /// Besides the sampled deadline check this watches the session's
    /// mutation counter: when `livelock_spins` consecutive yields observe no
    /// store anywhere in the session, the lock this thread is spinning on is
    /// never going to be released (a leaked-lock hang bug) and the hang flag
    /// is latched immediately rather than after the full wall-clock
    /// deadline. The bug report is identical either way — only the time to
    /// reach it changes.
    ///
    /// The streak is meant to accumulate inside a *single* blocked
    /// operation; drivers call [`PmView::spin_reset`] between operations so
    /// bounded retry loops that give up (e.g. a consumer re-polling an
    /// empty lock-free stack) are not mistaken for a hang.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] or [`RtError::Halted`].
    pub fn spin_yield(&self) -> Result<(), RtError> {
        self.check()?;
        let limit = self.session.config().livelock_spins;
        if limit != 0 {
            let p = self.session.progress();
            if p != self.spin_progress.get() {
                self.spin_progress.set(p);
                self.spin_streak.set(0);
            } else {
                // Parked sleeps advance the streak by their yield-loop
                // equivalent so the latch deadline stays in wall-clock
                // terms (a parked spinner must not take ~50× longer to
                // notice a genuine leaked-lock hang).
                let step = if self.spin_streak.get() >= SPIN_PARK_AFTER {
                    SPIN_PARK_CREDIT
                } else {
                    1
                };
                let n = self.spin_streak.get().saturating_add(step);
                self.spin_streak.set(n);
                if n >= limit {
                    self.session.latch_hang();
                    return Err(RtError::Timeout);
                }
                if n >= SPIN_PARK_AFTER {
                    std::thread::sleep(SPIN_PARK_QUANTUM);
                    return Ok(());
                }
            }
        }
        std::thread::yield_now();
        Ok(())
    }

    /// Declare spin-loop forward progress that is not a PM store: reset
    /// this view's livelock streak.
    ///
    /// A true livelock keeps one thread inside one spin loop forever, so
    /// the campaign driver calls this between target operations. Without
    /// the reset, a *bounded* retry loop that legitimately gives up
    /// (returns "empty"/"contended" after N yields) would accumulate
    /// streak across consecutive store-free operations — e.g. a consumer
    /// thread draining an already-empty lock-free stack after the
    /// producers finished — and false-trigger the hang latch.
    pub fn spin_reset(&self) {
        self.spin_streak.set(0);
    }

    fn ctx<'a>(
        &self,
        off: u64,
        len: usize,
        site: Site,
        cancelled: &'a dyn Fn() -> bool,
    ) -> AccessCtx<'a> {
        AccessCtx {
            off,
            len,
            site,
            tid: self.tid,
            cancelled,
        }
    }

    /// Instrumented 8-byte load. The returned value carries taint: the ids
    /// of any inconsistency candidates it depends on (fresh candidate when
    /// the word is unpersisted, plus shadow taint left by earlier tainted
    /// stores, plus the address taint of `off`).
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn load_u64(&self, off: impl Into<TU64>, site: Site) -> Result<TU64, RtError> {
        self.check()?;
        let off = off.into();
        let mut buf = self.buf.borrow_mut();
        if !self.session.strategy_passive() {
            let cancelled = || self.session.cancelled();
            self.cached_strategy(&mut buf)
                .before_load(&self.ctx(off.value(), 8, site, &cancelled));
        }
        let (val, info) = self.session.pool().load_u64(off.value())?;
        let mut taint = self.session.on_load(
            &mut buf,
            off.value(),
            8,
            site,
            self.tid,
            &info,
            LoadKind::Plain,
        );
        taint.union_with(off.taint());
        Ok(TU64::with_taint(val, taint))
    }

    /// Instrumented byte-range load; see [`PmView::load_u64`].
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn load_bytes(
        &self,
        off: impl Into<TU64>,
        len: usize,
        site: Site,
    ) -> Result<TBytes, RtError> {
        self.check()?;
        let off = off.into();
        let mut buf = self.buf.borrow_mut();
        if !self.session.strategy_passive() {
            let cancelled = || self.session.cancelled();
            self.cached_strategy(&mut buf).before_load(&self.ctx(
                off.value(),
                len,
                site,
                &cancelled,
            ));
        }
        let mut bytes = vec![0u8; len];
        let info = self.session.pool().load(off.value(), &mut bytes)?;
        let mut taint = self.session.on_load(
            &mut buf,
            off.value(),
            len,
            site,
            self.tid,
            &info,
            LoadKind::Plain,
        );
        taint.union_with(off.taint());
        Ok(TBytes::with_taint(bytes, taint))
    }

    fn store_common(
        &self,
        off: TU64,
        bytes: &[u8],
        value_taint: &TaintSet,
        site: Site,
        non_temporal: bool,
    ) -> Result<(), RtError> {
        self.check()?;
        let cancelled = || self.session.cancelled();
        let ctx = self.ctx(off.value(), bytes.len(), site, &cancelled);
        let mut buf = self.buf.borrow_mut();
        let active = !self.session.strategy_passive();
        if active {
            self.cached_strategy(&mut buf).before_store(&ctx);
        }
        let tag = SiteTag(site.id());
        // The store itself reports the range's prior persistency state, so
        // no separate metadata pass (and shard-lock round trip) is needed.
        let info = if non_temporal {
            self.session
                .pool()
                .ntstore(off.value(), bytes, self.tid, tag)?
        } else {
            self.session
                .pool()
                .store(off.value(), bytes, self.tid, tag)?
        };
        self.session.on_store(
            &mut buf,
            off.value(),
            bytes.len(),
            site,
            self.tid,
            value_taint,
            off.taint(),
            non_temporal,
            info.state_before,
        );
        // Fires cond_signal and stalls the writer *before* its flush (§4.2.2).
        if active {
            self.cached_strategy(&mut buf).after_store(&ctx);
        }
        Ok(())
    }

    /// Instrumented 8-byte store. Tainted contents or a tainted address make
    /// this a durable side effect and raise a PM inconsistency.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn store_u64(
        &self,
        off: impl Into<TU64>,
        val: impl Into<TU64>,
        site: Site,
    ) -> Result<(), RtError> {
        let val = val.into();
        self.store_common(
            off.into(),
            &val.value().to_le_bytes(),
            val.taint(),
            site,
            false,
        )
    }

    /// Instrumented non-temporal 8-byte store (`movnt64`): persists
    /// immediately, still a durable side effect when tainted.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn ntstore_u64(
        &self,
        off: impl Into<TU64>,
        val: impl Into<TU64>,
        site: Site,
    ) -> Result<(), RtError> {
        let val = val.into();
        self.store_common(
            off.into(),
            &val.value().to_le_bytes(),
            val.taint(),
            site,
            true,
        )
    }

    /// Instrumented byte-range store.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn store_bytes(
        &self,
        off: impl Into<TU64>,
        data: &TBytes,
        site: Site,
    ) -> Result<(), RtError> {
        self.store_common(off.into(), data.bytes(), data.taint(), site, false)
    }

    /// Instrumented non-temporal byte-range store.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn ntstore_bytes(
        &self,
        off: impl Into<TU64>,
        data: &TBytes,
        site: Site,
    ) -> Result<(), RtError> {
        self.store_common(off.into(), data.bytes(), data.taint(), site, true)
    }

    /// Instrumented compare-and-swap on an aligned word. Returns
    /// `(swapped, observed)`; the observed value carries taint like a load.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn cas_u64(
        &self,
        off: impl Into<TU64>,
        expected: u64,
        new: impl Into<TU64>,
        site: Site,
    ) -> Result<(bool, TU64), RtError> {
        self.check()?;
        let off = off.into();
        let new = new.into();
        let cancelled = || self.session.cancelled();
        let ctx = self.ctx(off.value(), 8, site, &cancelled);
        let mut buf = self.buf.borrow_mut();
        let active = !self.session.strategy_passive();
        // Fast path: an identical retry of the CAS that just failed. While
        // the session-wide store counter is unchanged, *no* PM store has
        // landed anywhere, so the word provably still holds the observed
        // value (and the same shadow taint) and the retry would fail
        // exactly like the last attempt. Answer it from the per-thread
        // memo: no pool access, no granule flush, no candidate or coverage
        // hooks (the first failure already minted and recorded everything
        // a repeat could — candidates dedup by (writer-tag, site, kind)
        // and consecutive same-thread accesses to one granule never
        // complete an alias pair). The repeat count is batched into the
        // granule statistics at the next sync point. Strategy hooks still
        // fire per attempt: retry storms are the scheduler's CAS decision
        // points. Checkers disable the memo — they observe every event.
        let mut hooked = false;
        if buf.cas_cache.valid
            && buf.cas_cache.off == off.value()
            && buf.cas_cache.site == site.id()
            && self.cas_fail_site.get() == site.id()
            && expected != buf.cas_cache.observed
            && !self.session.checkers_armed()
            && self.session.progress() == buf.cas_cache.progress
        {
            if active {
                self.cached_strategy(&mut buf).before_store(&ctx);
                hooked = true;
            }
            // The hook may have blocked while another thread stored (e.g.
            // released the word this thread is spinning on): only answer
            // from the memo if the session is still frozen.
            if self.session.progress() == buf.cas_cache.progress {
                buf.pm_events += 1;
                if pmrace_telemetry::enabled() {
                    buf.tel.cas += 1;
                    // The full path counts the CAS read through `on_load`;
                    // mirror that here so `pm.loads + pm.stores + ...`
                    // stays consistent with the session's PM event count.
                    buf.tel.loads += 1;
                }
                buf.cas_cache.pending += 1;
                let attempt = self.cas_fail_streak.get().saturating_add(1);
                self.cas_fail_streak.set(attempt);
                if active {
                    self.cached_strategy(&mut buf).on_cas_fail(&ctx, attempt);
                }
                let mut taint = buf.cas_cache.taint.clone();
                taint.union_with(off.taint());
                return Ok((false, TU64::with_taint(buf.cas_cache.observed, taint)));
            }
        }
        // Full path. Fold batched repeats first so the granule flush below
        // publishes an exact slot, and invalidate the memo — it is about
        // to be superseded (or the CAS succeeds and it must die).
        self.session.fold_cas_repeats(&mut buf);
        buf.cas_cache.valid = false;
        // A CAS is a sync point: publish this granule's batched metadata so
        // cross-thread statistics see it at the decision point (a full
        // buffer flush here would tax lock-free retry loops).
        self.session.flush_granule(&mut buf, off.value() / 8);
        if active && !hooked {
            self.cached_strategy(&mut buf).before_store(&ctx);
        }
        if pmrace_telemetry::enabled() {
            buf.tel.cas += 1;
        }
        let state_before = self.session.range_state(off.value(), 8);
        // Snapshot the store counter *before* the CAS reads the word: a
        // store racing this window can only spuriously invalidate the
        // memo, never validate a stale one.
        let progress_before = self.session.progress();
        let (swapped, observed, info) = self.session.pool().cas_u64(
            off.value(),
            expected,
            new.value(),
            self.tid,
            SiteTag(site.id()),
        )?;
        let mut taint = self.session.on_load(
            &mut buf,
            off.value(),
            8,
            site,
            self.tid,
            &info,
            LoadKind::Cas,
        );
        if swapped {
            taint.union_with(off.taint());
            self.cas_fail_site.set(NO_CAS_SITE);
            self.cas_fail_streak.set(0);
            self.session.on_store(
                &mut buf,
                off.value(),
                8,
                site,
                self.tid,
                new.taint(),
                off.taint(),
                false,
                state_before,
            );
            if active {
                self.cached_strategy(&mut buf).after_store(&ctx);
            }
        } else {
            // A failed CAS is the retry decision point of a lock-free loop:
            // count consecutive failures at this site and let the strategy
            // interpose another thread's store before the retry.
            let attempt = if self.cas_fail_site.get() == site.id() {
                self.cas_fail_streak.get().saturating_add(1)
            } else {
                self.cas_fail_site.set(site.id());
                1
            };
            self.cas_fail_streak.set(attempt);
            if active {
                self.cached_strategy(&mut buf).on_cas_fail(&ctx, attempt);
            }
            // Arm the memo for the retry that is almost certainly coming
            // (taint is cached *without* the address taint, which is
            // re-unioned per attempt).
            buf.cas_cache.valid = true;
            buf.cas_cache.off = off.value();
            buf.cas_cache.site = site.id();
            buf.cas_cache.observed = observed;
            buf.cas_cache.taint = taint.clone();
            buf.cas_cache.progress = progress_before;
            buf.cas_cache.pending = 0;
            taint.union_with(off.taint());
        }
        Ok((swapped, TU64::with_taint(observed, taint)))
    }

    /// Instrumented `clwb` over a byte range.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn clwb(&self, off: impl Into<TU64>, len: usize, site: Site) -> Result<(), RtError> {
        self.check()?;
        let off = off.into();
        let mut buf = self.buf.borrow_mut();
        self.session
            .on_clwb(&mut buf, off.value(), len, site, self.tid);
        self.session.pool().clwb(off.value(), len, self.tid)?;
        Ok(())
    }

    /// Instrumented `sfence`.
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn sfence(&self) -> Result<(), RtError> {
        self.check()?;
        let mut buf = self.buf.borrow_mut();
        self.session.on_sfence(&mut buf, self.tid);
        self.session.pool().sfence(self.tid)?;
        Ok(())
    }

    /// `clwb` + `sfence` (the persist idiom).
    ///
    /// # Errors
    ///
    /// Deadline/halt errors and PM substrate errors.
    pub fn persist(&self, off: impl Into<TU64>, len: usize, site: Site) -> Result<(), RtError> {
        let off = off.into();
        self.clwb(off.clone(), len, site)?;
        self.sfence()
    }

    /// Record a branch/basic-block execution for branch coverage.
    pub fn branch(&self, site: Site) {
        self.session.record_branch(site);
    }

    /// Declare that `data` left the program (client reply, disk write): an
    /// external durable side effect if tainted.
    pub fn output(&self, data: &TBytes, site: Site) {
        let mut buf = self.buf.borrow_mut();
        self.session
            .on_extern_output(&mut buf, data.taint(), site, self.tid);
    }
}

impl Drop for PmView {
    /// Dropping a view ends its final epoch: whatever the thread batched
    /// since the last sync point is published to the session.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::RedundantFlushChecker;
    use crate::report::{CandidateKind, EffectKind};
    use crate::session::{SessionConfig, SyncVarAnnotation};
    use crate::site;
    use pmrace_pmem::{Pool, PoolOpts};

    fn session() -> Arc<Session> {
        Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        )
    }

    #[test]
    fn clean_load_is_untainted() {
        let s = session();
        let v = s.view(ThreadId(0));
        v.ntstore_u64(64u64, 5, site!("w")).unwrap();
        let x = v.load_u64(64u64, site!("r")).unwrap();
        assert_eq!(x, 5u64);
        assert!(!x.is_tainted());
        assert!(s.finish().candidates.is_empty());
    }

    #[test]
    fn cross_thread_dirty_read_mints_inter_candidate() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("writer")).unwrap();
        let x = r.load_u64(64u64, site!("reader")).unwrap();
        assert!(x.is_tainted());
        let f = s.finish();
        assert_eq!(f.candidates.len(), 1);
        assert_eq!(f.candidates[0].kind, CandidateKind::Inter);
        assert!(f.inconsistencies.is_empty(), "no side effect yet");
    }

    #[test]
    fn own_dirty_read_mints_intra_candidate() {
        let s = session();
        let v = s.view(ThreadId(0));
        v.store_u64(64u64, 7, site!("w-intra")).unwrap();
        let x = v.load_u64(64u64, site!("r-intra")).unwrap();
        assert!(x.is_tainted());
        let f = s.finish();
        assert_eq!(f.candidates[0].kind, CandidateKind::Intra);
    }

    #[test]
    fn tainted_value_store_is_inconsistency() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("w1")).unwrap();
        let x = r.load_u64(64u64, site!("r1")).unwrap();
        r.store_u64(128u64, x + 1u64, site!("effect1")).unwrap();
        let f = s.finish();
        assert_eq!(f.inconsistencies.len(), 1);
        let rec = &f.inconsistencies[0];
        assert_eq!(rec.kind, EffectKind::Value);
        assert_eq!(rec.effect_off, 128);
        assert!(rec.crash_image.is_some());
        // The crash image holds the side effect but not the dependent data.
        let img = rec.crash_image.as_ref().unwrap();
        assert_eq!(img.load_u64(128).unwrap(), 8);
        assert_eq!(img.load_u64(64).unwrap(), 0);
    }

    #[test]
    fn tainted_address_store_is_inconsistency() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 256, site!("w2")).unwrap(); // a "pointer"
        let ptr = r.load_u64(64u64, site!("r2")).unwrap();
        r.ntstore_u64(ptr, 42, site!("effect2")).unwrap(); // store *via* it
        let f = s.finish();
        assert_eq!(f.inconsistencies.len(), 1);
        assert_eq!(f.inconsistencies[0].kind, EffectKind::Address);
        assert_eq!(f.inconsistencies[0].effect_off, 256);
    }

    #[test]
    fn rewriting_dependent_word_is_not_side_effect() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("w3")).unwrap();
        let x = r.load_u64(64u64, site!("r3")).unwrap();
        r.store_u64(64u64, x, site!("rewrite")).unwrap();
        let f = s.finish();
        assert!(f.inconsistencies.is_empty());
    }

    #[test]
    fn persisted_then_read_is_no_candidate() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("w4")).unwrap();
        w.persist(64u64, 8, site!("flush4")).unwrap();
        let x = r.load_u64(64u64, site!("r4")).unwrap();
        assert!(!x.is_tainted());
        assert!(s.finish().candidates.is_empty());
    }

    #[test]
    fn shadow_taint_flows_through_memory() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("w5")).unwrap();
        let x = r.load_u64(64u64, site!("r5")).unwrap();
        // Store tainted value, persist it, load it back: taint must survive
        // because the *source* is still unpersisted.
        r.store_u64(200u64, x, site!("mid")).unwrap();
        r.persist(200u64, 8, site!("flush5")).unwrap();
        let y = r.load_u64(200u64, site!("r5b")).unwrap();
        assert!(y.is_tainted());
        r.store_u64(300u64, y, site!("effect5")).unwrap();
        let f = s.finish();
        // Two inconsistencies: the tainted store at `mid` and at `effect5`.
        assert_eq!(f.inconsistencies.len(), 2);
    }

    #[test]
    fn sync_var_update_is_recorded_once_per_site() {
        let s = session();
        s.annotate_sync_var(SyncVarAnnotation {
            name: "lock".into(),
            off: 512,
            size: 8,
            init_val: 0,
        });
        let v = s.view(ThreadId(0));
        let lock_site = site!("lock_acquire");
        v.store_u64(512u64, 1, lock_site).unwrap();
        v.store_u64(512u64, 1, lock_site).unwrap(); // same shape: deduped
        let f = s.finish();
        assert_eq!(f.sync_updates.len(), 1);
        let u = &f.sync_updates[0];
        assert_eq!(u.var_name, "lock");
        assert_eq!(u.new_value, 1);
        assert_eq!(u.expected_init, 0);
        assert!(u.crash_image.is_some());
        assert_eq!(u.crash_image.as_ref().unwrap().load_u64(512).unwrap(), 1);
    }

    #[test]
    fn cas_acquires_record_sync_updates_and_candidates() {
        let s = session();
        s.annotate_sync_var(SyncVarAnnotation {
            name: "seg_lock".into(),
            off: 1024,
            size: 8,
            init_val: 0,
        });
        let a = s.view(ThreadId(0));
        let b = s.view(ThreadId(1));
        let (ok, _) = a.cas_u64(1024u64, 0, 1, site!("cas_acquire")).unwrap();
        assert!(ok);
        // b observes a's unpersisted lock word.
        let (ok2, observed) = b.cas_u64(1024u64, 0, 1, site!("cas_acquire_b")).unwrap();
        assert!(!ok2);
        assert_eq!(observed, 1u64);
        assert!(observed.is_tainted());
        let f = s.finish();
        assert_eq!(f.sync_updates.len(), 1);
        assert!(!f.candidates.is_empty());
    }

    #[test]
    fn whitelisted_sites_are_marked() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("clevel.pmdk_tx_alloc.meta"))
            .unwrap();
        let x = r.load_u64(64u64, site!("r6")).unwrap();
        r.store_u64(128u64, x, site!("e6")).unwrap();
        let f = s.finish();
        assert_eq!(f.inconsistencies.len(), 1);
        assert!(f.inconsistencies[0].whitelisted);
    }

    #[test]
    fn extern_output_of_tainted_data_is_inconsistency() {
        let s = session();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        w.store_u64(64u64, 7, site!("w7")).unwrap();
        let x = r.load_bytes(64u64, 8, site!("r7")).unwrap();
        r.output(&x, site!("reply"));
        let f = s.finish();
        assert_eq!(f.inconsistencies.len(), 1);
        assert_eq!(f.inconsistencies[0].kind, EffectKind::Output);
    }

    #[test]
    fn redundant_flush_checker_integration() {
        let s = session();
        s.add_checker(Arc::new(RedundantFlushChecker));
        let v = s.view(ThreadId(0));
        v.store_u64(64u64, 1, site!("w8")).unwrap();
        v.persist(64u64, 8, site!("flush8")).unwrap();
        v.persist(64u64, 8, site!("flush8-again")).unwrap(); // redundant
        let f = s.finish();
        assert_eq!(f.perf_issues.len(), 1);
        assert_eq!(f.perf_issues[0].checker, "redundant-flush");
    }

    #[test]
    fn shared_access_summary_ranks_hot_granules() {
        let s = session();
        let a = s.view(ThreadId(0));
        let b = s.view(ThreadId(1));
        for _ in 0..5 {
            a.store_u64(64u64, 1, site!("hot-w")).unwrap();
            let _ = b.load_u64(64u64, site!("hot-r")).unwrap();
        }
        a.store_u64(128u64, 1, site!("cold-w")).unwrap();
        let _ = b.load_u64(128u64, site!("cold-r")).unwrap();
        // Accessors no longer force-drain live views; end the epochs first.
        a.flush();
        b.flush();
        let shared = s.session().shared_accesses();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].off, 64);
        assert!(shared[0].total > shared[1].total);
        assert_eq!(shared[0].threads, 2);
    }

    #[test]
    fn cas_only_granules_surface_with_cas_sites() {
        let s = session();
        let a = s.view(ThreadId(0));
        let b = s.view(ThreadId(1));
        // Two threads race a CAS word with no plain loads at all: the
        // granule must still enter the shared-access summary, carried by
        // its CAS sites.
        let (ok, _) = a.cas_u64(64u64, 0, 1, site!("cas.a")).unwrap();
        assert!(ok);
        let (ok2, _) = b.cas_u64(64u64, 0, 2, site!("cas.b")).unwrap();
        assert!(!ok2);
        a.flush();
        b.flush();
        let shared = s.session().shared_accesses();
        assert_eq!(shared.len(), 1);
        let e = &shared[0];
        assert_eq!(e.off, 64);
        assert!(e.load_sites.is_empty());
        assert!(!e.cas_sites.is_empty());
        assert!(!e.store_sites.is_empty());
        assert_eq!(e.threads, 2);
        // total counts the CAS attempts too.
        assert_eq!(e.total, 3); // 2 cas reads + 1 store
    }

    #[derive(Debug, Default)]
    struct CasFailProbe {
        seen: parking_lot::Mutex<Vec<(String, u32)>>,
    }

    impl crate::strategy::InterleaveStrategy for CasFailProbe {
        fn name(&self) -> &'static str {
            "cas-fail-probe"
        }

        fn on_cas_fail(&self, ctx: &AccessCtx<'_>, attempt: u32) {
            self.seen
                .lock()
                .push((crate::site_label(ctx.site).to_string(), attempt));
        }
    }

    #[test]
    fn failed_cas_fires_hook_with_consecutive_attempt_counts() {
        let s = session();
        let probe = Arc::new(CasFailProbe::default());
        s.set_strategy(Arc::clone(&probe) as Arc<dyn crate::strategy::InterleaveStrategy>);
        let v = s.view(ThreadId(0));
        v.ntstore_u64(64u64, 9, site!("cas.seed")).unwrap();
        // Three consecutive failures at one site, then a success, then a
        // fresh failure: the streak must ramp 1,2,3 and reset to 1.
        for _ in 0..3 {
            let (ok, _) = v.cas_u64(64u64, 0, 1, site!("cas.retry")).unwrap();
            assert!(!ok);
        }
        let (ok, _) = v.cas_u64(64u64, 9, 1, site!("cas.retry")).unwrap();
        assert!(ok);
        let (ok, _) = v.cas_u64(64u64, 0, 2, site!("cas.retry")).unwrap();
        assert!(!ok);
        let seen = probe.seen.lock();
        let attempts: Vec<u32> = seen.iter().map(|(_, a)| *a).collect();
        assert_eq!(attempts, vec![1, 2, 3, 1]);
        assert!(seen.iter().all(|(l, _)| l == "cas.retry"));
    }

    trait SessionExt {
        fn session(&self) -> &Arc<Session>;
    }
    impl SessionExt for Arc<Session> {
        fn session(&self) -> &Arc<Session> {
            self
        }
    }

    #[test]
    fn deadline_aborts_accesses() {
        let pool = Arc::new(Pool::new(PoolOpts::small()));
        let s = Session::new(
            pool,
            SessionConfig {
                deadline: std::time::Duration::ZERO,
                ..SessionConfig::default()
            },
        );
        let v = s.view(ThreadId(0));
        assert_eq!(
            v.store_u64(64u64, 1, site!("w9")).unwrap_err(),
            RtError::Timeout
        );
        assert_eq!(v.spin_yield().unwrap_err(), RtError::Timeout);
    }

    #[test]
    fn livelock_spin_latches_hang_long_before_the_deadline() {
        // A leaked lock: the word stays 1 forever, so every CAS fails and no
        // store happens anywhere in the session. The spinner must give up
        // after `livelock_spins` no-progress yields — not after the (here
        // deliberately enormous) wall-clock deadline.
        let pool = Arc::new(Pool::new(PoolOpts::with_size(1 << 16)));
        let s = Session::new(
            pool,
            SessionConfig {
                deadline: std::time::Duration::from_secs(3600),
                livelock_spins: 64,
                ..SessionConfig::default()
            },
        );
        let v = s.view(ThreadId(0));
        v.store_u64(64u64, 1, site!("lock.leak")).unwrap();
        let started = std::time::Instant::now();
        let err = loop {
            let (ok, _) = v.cas_u64(64u64, 0, 1, site!("lock.acquire")).unwrap();
            assert!(!ok, "nobody releases this lock");
            if let Err(e) = v.spin_yield() {
                break e;
            }
        };
        assert_eq!(err, RtError::Timeout);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(60),
            "livelock detection must not wait for the deadline"
        );
        drop(v);
        assert!(s.finish().hang, "early latch must still report a hang");
    }
}

//! PMRace instrumentation runtime.
//!
//! The paper instruments target programs with an LLVM pass that hooks every
//! PM load/store/flush/fence and routes them into a runtime library with
//! DataFlowSanitizer-based taint tracking. This crate is that pass *and* that
//! runtime, expressed as an explicit API: target systems are written against
//! [`PmView`], whose typed accessors are the hooked instructions.
//!
//! What happens on each access (paper §4.2–§4.3):
//!
//! - **loads** consult the pool's persistency metadata; reading a granule
//!   that is `Dirty`/`Flushing` creates a *PM Inter-thread Inconsistency
//!   Candidate* (cross-thread writer) or *Intra-thread* candidate (own
//!   write), and taints the loaded value with the candidate id;
//! - **stores** whose value or target address carries taint are *durable
//!   side effects* — the checker records a *PM Inter-/Intra-thread
//!   Inconsistency* and captures the crash image the post-failure validator
//!   will recover from;
//! - **stores to annotated synchronization variables** are recorded as
//!   *PM Synchronization Inconsistencies* (each `(variable, site)` update
//!   shape once);
//! - every access updates **PM alias-pair coverage** (§4.2.1) and feeds the
//!   shared-access statistics the scheduler's priority queue is built from;
//! - every access first calls into the registered
//!   [`InterleaveStrategy`](strategy::InterleaveStrategy), which is how the
//!   `pmrace-sched` crate injects conditional waits (Fig. 6) or random
//!   delays.
//!
//! The [`Checker`](checker::Checker) trait makes the framework extensible
//! with further PM checkers; [`checker::RedundantFlushChecker`] ships as the
//! worked example the paper sketches (flushing already-clean data).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod coverage;
pub mod report;
pub mod session;
pub mod strategy;
pub mod taint;
pub mod trace;
pub mod view;
pub mod whitelist;

mod batch;
mod error;
mod fx;
mod site;

pub use error::RtError;
pub use session::{Session, SessionConfig, SyncVarAnnotation};
pub use site::{site_by_label, site_label, site_location, Site};
pub use taint::{TBytes, TaintSet, TU64};
pub use view::PmView;

// Macro support: `site!` expands to a call of this re-exported function.
#[doc(hidden)]
pub use site::register_site as __register_site;

/// Declare (once, lazily) a static instruction site at this source location.
///
/// Expands to a [`Site`] value that is registered on first execution. The
/// label names the instruction in bug reports and whitelist rules, playing
/// the role of the paper's per-instruction IDs assigned by the compiler
/// pass plus the stack trace in reports.
///
/// ```
/// use pmrace_runtime::site;
/// let s = site!("clht_resize.swap_table_ptr");
/// assert_eq!(pmrace_runtime::site_label(s), "clht_resize.swap_table_ptr");
/// ```
#[macro_export]
macro_rules! site {
    ($label:expr) => {{
        static __SITE: ::std::sync::OnceLock<$crate::Site> = ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::__register_site(concat!(file!(), ":", line!()), $label))
    }};
}

//! Per-campaign session state: checkers, coverage, taint shadow memory,
//! annotations, deadline, and findings.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use pmrace_pmem::{LoadInfo, PersistState, Pool, ThreadId};

use crate::checker::{AccessEvent, Checker};
use crate::trace::{TraceKind, TraceRing};
use crate::coverage::{CoverageMap, Persistency};
use crate::report::{
    Candidate, CandidateKind, EffectKind, Findings, InconsistencyRecord, SyncUpdateRecord,
};
use crate::strategy::{InterleaveStrategy, NoopStrategy};
use crate::taint::TaintSet;
use crate::whitelist::Whitelist;
use crate::{site_label, PmView, RtError, Site};

/// Annotation of a persistent synchronization variable (§5): its location
/// and the value recovery must restore it to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncVarAnnotation {
    /// Variable name for reports (e.g. `"bucket_lock"`).
    pub name: String,
    /// Pool offset of the variable.
    pub off: u64,
    /// Size in bytes (locks are word-sized in all evaluated systems).
    pub size: usize,
    /// Expected (re)initialized value after recovery — `pm_sync_var_hint`'s
    /// `init_val`.
    pub init_val: u64,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Wall-clock budget for one campaign; spin loops and the scheduler
    /// observe it, turning seeded hang bugs into [`RtError::Timeout`].
    pub deadline: Duration,
    /// Capture crash images at detection points (needed for post-failure
    /// validation; disable for pure coverage runs).
    pub capture_crash_images: bool,
    /// Budget of crash images per campaign (each is a pool-sized copy).
    pub max_crash_images: usize,
    /// Benign-read whitelist (§4.4).
    pub whitelist: Whitelist,
    /// Depth of the PM access-trace ring attached to bug reports
    /// (0 disables tracing).
    pub trace_depth: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            deadline: Duration::from_secs(2),
            capture_crash_images: true,
            max_crash_images: 64,
            whitelist: Whitelist::default_rules(),
            trace_depth: 128,
        }
    }
}

/// Per-granule access statistics backing the scheduler's priority queue of
/// shared PM accesses (§4.2.2).
#[derive(Debug, Clone, Default)]
struct AccessStats {
    loads: HashMap<Site, u32>,
    stores: HashMap<Site, u32>,
    threads: HashSet<ThreadId>,
}

/// One entry of the shared-access summary: a PM address with the load and
/// store instructions that touched it and how often.
#[derive(Debug, Clone)]
pub struct SharedAccessEntry {
    /// Byte offset of the granule.
    pub off: u64,
    /// Load sites with execution counts.
    pub load_sites: Vec<(Site, u32)>,
    /// Store sites with execution counts.
    pub store_sites: Vec<(Site, u32)>,
    /// Total accesses (priority key; hot shared data first).
    pub total: u32,
    /// Distinct threads that touched the granule.
    pub threads: usize,
}

struct SessionState {
    trace: TraceRing,
    coverage: CoverageMap,
    mem_taint: HashMap<u64, TaintSet>,
    candidates: Vec<Candidate>,
    candidate_index: HashMap<(u32, u32, CandidateKind), u32>,
    inconsistencies: Vec<InconsistencyRecord>,
    incons_index: HashSet<(u32, u32, u32)>,
    sync_updates: Vec<SyncUpdateRecord>,
    sync_index: HashSet<(String, u32)>,
    perf_issues: Vec<crate::report::PerfIssueRecord>,
    annotations: Vec<SyncVarAnnotation>,
    access_stats: HashMap<u64, AccessStats>,
    images_captured: usize,
    hang: bool,
}

impl SessionState {
    fn new(trace_depth: usize) -> Self {
        SessionState {
            trace: TraceRing::new(trace_depth),
            coverage: CoverageMap::new(),
            mem_taint: HashMap::new(),
            candidates: Vec::new(),
            candidate_index: HashMap::new(),
            inconsistencies: Vec::new(),
            incons_index: HashSet::new(),
            sync_updates: Vec::new(),
            sync_index: HashSet::new(),
            perf_issues: Vec::new(),
            annotations: Vec::new(),
            access_stats: HashMap::new(),
            images_captured: 0,
            hang: false,
        }
    }
}

/// A fuzz-campaign session: owns all checker state for one execution of the
/// target. Create per-thread [`PmView`]s with [`Session::view`].
pub struct Session {
    pool: Arc<Pool>,
    cfg: SessionConfig,
    start: Instant,
    state: Mutex<SessionState>,
    strategy: RwLock<Arc<dyn InterleaveStrategy>>,
    checkers: RwLock<Vec<Arc<dyn Checker>>>,
    halted: AtomicBool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("pool_size", &self.pool.size())
            .field("elapsed", &self.start.elapsed())
            .field("halted", &self.halted.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Create a session over `pool` with the given configuration.
    #[must_use]
    pub fn new(pool: Arc<Pool>, cfg: SessionConfig) -> Arc<Self> {
        let trace_depth = cfg.trace_depth;
        Arc::new(Session {
            pool,
            cfg,
            start: Instant::now(),
            state: Mutex::new(SessionState::new(trace_depth)),
            strategy: RwLock::new(Arc::new(NoopStrategy)),
            checkers: RwLock::new(Vec::new()),
            halted: AtomicBool::new(false),
        })
    }

    /// The pool under test.
    #[must_use]
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Install the interleaving-exploration strategy for this campaign.
    pub fn set_strategy(&self, strategy: Arc<dyn InterleaveStrategy>) {
        *self.strategy.write() = strategy;
    }

    /// Register an extension checker.
    pub fn add_checker(&self, checker: Arc<dyn Checker>) {
        self.checkers.write().push(checker);
    }

    /// Annotate a persistent synchronization variable (the
    /// `pm_sync_var_hint(size, init_val)` macro of §5).
    pub fn annotate_sync_var(&self, ann: SyncVarAnnotation) {
        self.state.lock().annotations.push(ann);
    }

    /// All registered annotations.
    #[must_use]
    pub fn annotations(&self) -> Vec<SyncVarAnnotation> {
        self.state.lock().annotations.clone()
    }

    /// Create the instrumented access handle for a target thread.
    #[must_use]
    pub fn view(self: &Arc<Self>, tid: ThreadId) -> PmView {
        PmView::new(Arc::clone(self), tid)
    }

    /// Abort the campaign: all threads fail their next [`PmView::check`].
    pub fn halt(&self) {
        self.halted.store(true, Ordering::SeqCst);
    }

    /// `true` once halted or past the deadline.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.halted.load(Ordering::Relaxed) || self.start.elapsed() >= self.cfg.deadline
    }

    /// Deadline/halt check; flags the campaign as hung when the deadline
    /// passes.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] past the deadline, [`RtError::Halted`] after
    /// [`Session::halt`].
    pub fn check(&self) -> Result<(), RtError> {
        if self.halted.load(Ordering::Relaxed) {
            return Err(RtError::Halted);
        }
        if self.start.elapsed() >= self.cfg.deadline {
            self.state.lock().hang = true;
            return Err(RtError::Timeout);
        }
        Ok(())
    }

    /// Time since session creation.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    pub(crate) fn strategy(&self) -> Arc<dyn InterleaveStrategy> {
        Arc::clone(&self.strategy.read())
    }

    /// Notify the strategy that a driver thread finished its operation
    /// sequence (feeds the scheduler's live-thread accounting).
    pub fn thread_done(&self, tid: ThreadId) {
        self.strategy().thread_done(tid);
    }

    fn run_checkers<F: Fn(&dyn Checker, &mut Vec<crate::report::PerfIssueRecord>)>(&self, f: F) {
        let checkers = self.checkers.read();
        if checkers.is_empty() {
            return;
        }
        let mut out = Vec::new();
        for c in checkers.iter() {
            f(c.as_ref(), &mut out);
        }
        if !out.is_empty() {
            self.state.lock().perf_issues.extend(out);
        }
    }

    /// Load hook: update coverage/stats, mint candidates, return the taint
    /// the loaded value carries.
    ///
    /// `gateable` is false for the load half of read-modify-write
    /// instructions (CAS): they still mint candidates and coverage, but the
    /// scheduler cannot inject `cond_wait` before them, so they must not
    /// enter the priority queue as sync points.
    pub(crate) fn on_load(
        &self,
        off: u64,
        len: usize,
        site: Site,
        tid: ThreadId,
        info: &LoadInfo,
        gateable: bool,
    ) -> TaintSet {
        let persistency = if info.unpersisted {
            Persistency::Unpersisted
        } else {
            Persistency::Persisted
        };
        let mut state = self.state.lock();
        state.trace.push(tid, TraceKind::Load, site, off, len);
        let mut taint = TaintSet::empty();
        for g in granules(off, len) {
            state.coverage.record_access(g, site, tid, persistency);
            if let Some(t) = state.mem_taint.get(&g) {
                let t = t.clone();
                taint.union_with(&t);
            }
            let st = state.access_stats.entry(g).or_default();
            if gateable {
                *st.loads.entry(site).or_insert(0) += 1;
            }
            st.threads.insert(tid);
        }
        if info.unpersisted {
            let kind = if info.writer == tid {
                CandidateKind::Intra
            } else {
                CandidateKind::Inter
            };
            let key = (info.tag.0, site.id(), kind);
            let id = match state.candidate_index.get(&key) {
                Some(&id) => id,
                None => {
                    let id = u32::try_from(state.candidates.len()).expect("candidate overflow");
                    state.candidate_index.insert(key, id);
                    state.candidates.push(Candidate {
                        id,
                        kind,
                        write_site: Site::from_id(info.tag.0),
                        write_tid: info.writer,
                        read_site: site,
                        read_tid: tid,
                        off,
                    });
                    id
                }
            };
            taint.insert(id);
        }
        drop(state);
        self.run_checkers(|c, out| {
            c.on_load(
                &AccessEvent {
                    off,
                    len,
                    site,
                    tid,
                    state_before: info.state,
                },
                out,
            );
        });
        taint
    }

    /// Store hook (after the pool store landed): coverage/stats, durable
    /// side-effect detection, shadow-taint update, sync-var updates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_store(
        &self,
        off: u64,
        len: usize,
        site: Site,
        tid: ThreadId,
        value_taint: &TaintSet,
        addr_taint: &TaintSet,
        non_temporal: bool,
        state_before: PersistState,
    ) {
        let persistency = if non_temporal {
            Persistency::Persisted
        } else {
            Persistency::Unpersisted
        };
        let mut state = self.state.lock();
        state.trace.push(
            tid,
            if non_temporal { TraceKind::NtStore } else { TraceKind::Store },
            site,
            off,
            len,
        );
        for g in granules(off, len) {
            state.coverage.record_access(g, site, tid, persistency);
            let st = state.access_stats.entry(g).or_default();
            *st.stores.entry(site).or_insert(0) += 1;
            st.threads.insert(tid);
            if value_taint.is_empty() {
                state.mem_taint.remove(&g);
            } else {
                state.mem_taint.insert(g, value_taint.clone());
            }
        }

        // Durable side effect? Ignore labels whose own dependent data is
        // what this store (re)writes — per Definition 2, rewriting the
        // non-persisted data itself is not a side effect of it.
        let mut effect_labels: Vec<(u32, EffectKind)> = Vec::new();
        for l in addr_taint.iter() {
            effect_labels.push((l, EffectKind::Address));
        }
        for l in value_taint.iter() {
            if !addr_taint.contains(l) {
                effect_labels.push((l, EffectKind::Value));
            }
        }
        let mut new_records: Vec<InconsistencyRecord> = Vec::new();
        for (label, kind) in effect_labels {
            let Some(cand) = state.candidates.get(label as usize).cloned() else {
                continue;
            };
            if kind == EffectKind::Value && overlaps(cand.off, 8, off, len) {
                continue; // rewriting the dependent word itself
            }
            let triple = (cand.write_site.id(), cand.read_site.id(), site.id());
            if !state.incons_index.insert(triple) {
                continue;
            }
            let whitelisted = self.cfg.whitelist.matches_any([
                site_label(cand.write_site),
                site_label(cand.read_site),
                site_label(site),
            ]);
            let capture = self.cfg.capture_crash_images
                && state.images_captured < self.cfg.max_crash_images;
            if capture {
                state.images_captured += 1;
            }
            new_records.push(InconsistencyRecord {
                candidate: cand,
                effect_site: site,
                effect_off: off,
                effect_len: len,
                kind,
                whitelisted,
                trace: state.trace.snapshot(24),
                crash_image: if capture {
                    // Crash point: side effect persisted, dependent data
                    // (everything else unflushed) lost.
                    self.pool
                        .crash_image_persisting(&[(off, len)])
                        .ok()
                        .map(Arc::new)
                } else {
                    None
                },
            });
        }
        state.inconsistencies.extend(new_records);

        // PM Synchronization Inconsistency: store into an annotated region.
        let anns: Vec<SyncVarAnnotation> = state
            .annotations
            .iter()
            .filter(|a| overlaps(a.off, a.size, off, len))
            .cloned()
            .collect();
        for ann in anns {
            let new_value = self.pool.load_u64(ann.off).map(|(v, _)| v).unwrap_or(0);
            if new_value == ann.init_val {
                // Restoring the annotated initial value (e.g. a lock
                // release) is not an inconsistency risk.
                continue;
            }
            if !state.sync_index.insert((ann.name.clone(), 0)) {
                continue; // each sync variable's update type checked once (§4.3)
            }
            let capture = self.cfg.capture_crash_images
                && state.images_captured < self.cfg.max_crash_images;
            if capture {
                state.images_captured += 1;
            }
            state.sync_updates.push(SyncUpdateRecord {
                var_name: ann.name.clone(),
                var_off: ann.off,
                var_size: ann.size,
                expected_init: ann.init_val,
                store_site: site,
                new_value,
                tid,
                crash_image: if capture {
                    // Crash right after the sync update persists (Fig. 1's
                    // "crash after thread-2 persists the lock g").
                    self.pool
                        .crash_image_persisting(&[(ann.off, ann.size)])
                        .ok()
                        .map(Arc::new)
                } else {
                    None
                },
            });
        }
        drop(state);
        self.run_checkers(|c, out| {
            c.on_store(
                &AccessEvent {
                    off,
                    len,
                    site,
                    tid,
                    state_before,
                },
                out,
            );
        });
    }

    /// External durable side effect (reply to a client, disk write) based on
    /// possibly-tainted data.
    pub(crate) fn on_extern_output(&self, taint: &TaintSet, site: Site, _tid: ThreadId) {
        if taint.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        let mut new_records = Vec::new();
        for label in taint.iter() {
            let Some(cand) = state.candidates.get(label as usize).cloned() else {
                continue;
            };
            let triple = (cand.write_site.id(), cand.read_site.id(), site.id());
            if !state.incons_index.insert(triple) {
                continue;
            }
            let whitelisted = self.cfg.whitelist.matches_any([
                site_label(cand.write_site),
                site_label(cand.read_site),
                site_label(site),
            ]);
            new_records.push(InconsistencyRecord {
                candidate: cand,
                effect_site: site,
                effect_off: 0,
                effect_len: 0,
                kind: EffectKind::Output,
                whitelisted,
                trace: state.trace.snapshot(24),
                crash_image: None,
            });
        }
        state.inconsistencies.extend(new_records);
    }

    pub(crate) fn on_clwb(&self, off: u64, len: usize, site: Site, tid: ThreadId) {
        self.state.lock().trace.push(tid, TraceKind::Clwb, site, off, len);
        let state_before = self.range_state(off, len);
        self.run_checkers(|c, out| {
            c.on_clwb(
                &AccessEvent {
                    off,
                    len,
                    site,
                    tid,
                    state_before,
                },
                out,
            );
        });
    }

    pub(crate) fn on_sfence(&self, tid: ThreadId) {
        self.run_checkers(|c, out| c.on_sfence(tid, out));
    }

    /// Summarized persistency state over a byte range (`Dirty` dominates).
    #[must_use]
    pub fn range_state(&self, off: u64, len: usize) -> PersistState {
        let mut worst = PersistState::Clean;
        for g in granules(off, len) {
            match self.pool.meta_at(g * 8).state {
                PersistState::Dirty => return PersistState::Dirty,
                PersistState::Flushing => worst = PersistState::Flushing,
                PersistState::Clean => {}
            }
        }
        worst
    }

    /// Record a branch/basic-block hit for branch coverage.
    pub fn record_branch(&self, site: Site) {
        self.state.lock().coverage.record_branch(site);
    }

    /// Coverage counters `(alias_pairs, branches)` so far.
    #[must_use]
    pub fn coverage_counts(&self) -> (usize, usize) {
        let state = self.state.lock();
        (state.coverage.alias_pairs(), state.coverage.branches())
    }

    /// Clone the session coverage map (for merging into a global map).
    #[must_use]
    pub fn coverage_snapshot(&self) -> CoverageMap {
        self.state.lock().coverage.clone()
    }

    /// Shared-PM-access summary for the scheduler's priority queue: granules
    /// touched by several threads with both loads and stores, hottest first.
    #[must_use]
    pub fn shared_accesses(&self) -> Vec<SharedAccessEntry> {
        let state = self.state.lock();
        let mut out: Vec<SharedAccessEntry> = state
            .access_stats
            .iter()
            .filter(|(_, st)| st.threads.len() >= 2 && !st.loads.is_empty() && !st.stores.is_empty())
            .map(|(&g, st)| {
                let mut load_sites: Vec<(Site, u32)> =
                    st.loads.iter().map(|(&s, &c)| (s, c)).collect();
                let mut store_sites: Vec<(Site, u32)> =
                    st.stores.iter().map(|(&s, &c)| (s, c)).collect();
                load_sites.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s.id()));
                store_sites.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s.id()));
                let total = st.loads.values().sum::<u32>() + st.stores.values().sum::<u32>();
                SharedAccessEntry {
                    off: g * 8,
                    load_sites,
                    store_sites,
                    total,
                    threads: st.threads.len(),
                }
            })
            .collect();
        out.sort_by_key(|e| (std::cmp::Reverse(e.total), e.off));
        out
    }

    /// Granules (by byte offset) that received at least one store during
    /// this session. Post-failure validation uses this over a *recovery*
    /// session to decide whether recorded side effects were overwritten
    /// (§4.4): if recovery rewrote every byte of a durable side effect, the
    /// inconsistency is benign.
    #[must_use]
    pub fn stored_granules(&self) -> std::collections::HashSet<u64> {
        let state = self.state.lock();
        state
            .access_stats
            .iter()
            .filter(|(_, st)| !st.stores.is_empty())
            .map(|(&g, _)| g * 8)
            .collect()
    }

    /// End the campaign: notify the strategy, give end-of-campaign checkers
    /// (e.g. missing-flush) their pass over the still-dirty granules, and
    /// extract all findings.
    #[must_use]
    pub fn finish(&self) -> Findings {
        self.strategy().campaign_end();
        if !self.checkers.read().is_empty() {
            let dirty = self.pool.unpersisted_regions();
            self.run_checkers(|c, out| c.on_campaign_end(&dirty, out));
        }
        let mut state = self.state.lock();
        Findings {
            candidates: std::mem::take(&mut state.candidates),
            inconsistencies: std::mem::take(&mut state.inconsistencies),
            sync_updates: std::mem::take(&mut state.sync_updates),
            perf_issues: std::mem::take(&mut state.perf_issues),
            hang: state.hang,
        }
    }
}

fn granules(off: u64, len: usize) -> std::ops::RangeInclusive<u64> {
    if len == 0 {
        return 1..=0;
    }
    (off / 8)..=((off + len as u64 - 1) / 8)
}

fn overlaps(a_off: u64, a_len: usize, b_off: u64, b_len: usize) -> bool {
    a_len > 0 && b_len > 0 && a_off < b_off + b_len as u64 && b_off < a_off + a_len as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::PoolOpts;

    fn session() -> Arc<Session> {
        Session::new(Arc::new(Pool::new(PoolOpts::small())), SessionConfig::default())
    }

    #[test]
    fn overlap_predicate() {
        assert!(overlaps(0, 8, 4, 8));
        assert!(!overlaps(0, 8, 8, 8));
        assert!(overlaps(8, 8, 0, 9));
        assert!(!overlaps(8, 0, 0, 100)); // empty range never overlaps
    }

    #[test]
    fn deadline_marks_hang() {
        let pool = Arc::new(Pool::new(PoolOpts::small()));
        let s = Session::new(
            pool,
            SessionConfig {
                deadline: Duration::from_millis(0),
                ..SessionConfig::default()
            },
        );
        assert_eq!(s.check().unwrap_err(), RtError::Timeout);
        assert!(s.finish().hang);
    }

    #[test]
    fn halt_cancels() {
        let s = session();
        assert!(s.check().is_ok());
        s.halt();
        assert_eq!(s.check().unwrap_err(), RtError::Halted);
        assert!(s.cancelled());
    }

    #[test]
    fn annotations_roundtrip() {
        let s = session();
        s.annotate_sync_var(SyncVarAnnotation {
            name: "lock".into(),
            off: 64,
            size: 8,
            init_val: 0,
        });
        assert_eq!(s.annotations().len(), 1);
        assert_eq!(s.annotations()[0].name, "lock");
    }
}

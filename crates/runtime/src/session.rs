//! Per-campaign session state: checkers, coverage, taint shadow memory,
//! annotations, deadline, and findings.
//!
//! # Locking
//!
//! The session used to serialize every hook behind one `Mutex<SessionState>`;
//! that lock was the instrumentation bottleneck under concurrent target
//! threads. State is now decomposed by access frequency:
//!
//! - **coverage** ([`CoverageMap`]) is lock-free (atomic bitmaps plus a
//!   direct-mapped atomic last-access table), touched by every access
//!   through `&self`;
//! - **taint shadow memory and access statistics** live as one combined
//!   `GranuleShadow` record in 64 stripes keyed by `granule % 64` — an
//!   access to one granule locks exactly one stripe and resolves one hash
//!   entry, and the pool's shard layout already spreads neighbouring cache
//!   lines over different stripes;
//! - **trace** is a set of per-thread rings ([`TraceBuffers`]) with a global
//!   atomic sequence counter;
//! - **reports** (candidates, inconsistencies, sync updates, perf issues,
//!   crash-image budget) stay behind a single mutex — they are rare events,
//!   and a single lock keeps candidate ids dense and dedup exact.
//!
//! On top of that decomposition, all *feedback/diagnostic* updates
//! (coverage, access stats, trace, counters) are epoch-batched in each
//! view's `ThreadBuffer` (the private `batch` module) and only drain into
//! the shared structures at sync points; detection state (taint,
//! candidates, reports) stays write-through so nothing observable changes.
//! See the `batch` module docs for the full argument.
//!
//! Lock order: a view's thread buffer is outermost (borrowed for the whole
//! hook — it is view-owned and lock-free, see [`PmView`]); `reports` may be
//! held while calling into the pool or snapshotting the trace; stripes and
//! trace rings are leaf locks and are never held across any other
//! acquisition.
//!
//! Because buffers are view-owned, session accessors report only state
//! published up to each thread's last sync point ([`PmView::flush`] forces
//! one). Campaign code drops or flushes views before reading session-wide
//! statistics; detection state is write-through and needs no flush.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use pmrace_pmem::{LoadInfo, PersistState, Pool, ThreadId};
use pmrace_telemetry as telemetry;

use crate::batch::{self, Slot, TaintFilter, ThreadBuffer};
use crate::checker::{AccessEvent, Checker};
use crate::coverage::CoverageMap;
use crate::fx::FxHashMap;
use crate::report::{
    Candidate, CandidateKind, EffectKind, Findings, InconsistencyRecord, SyncUpdateRecord,
};
use crate::strategy::{InterleaveStrategy, NoopStrategy};
use crate::taint::TaintSet;
use crate::trace::{TraceBuffers, TraceKind};
use crate::whitelist::Whitelist;
use crate::{site_label, PmView, RtError, Site};

/// Annotation of a persistent synchronization variable (§5): its location
/// and the value recovery must restore it to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncVarAnnotation {
    /// Variable name for reports (e.g. `"bucket_lock"`).
    pub name: String,
    /// Pool offset of the variable.
    pub off: u64,
    /// Size in bytes (locks are word-sized in all evaluated systems).
    pub size: usize,
    /// Expected (re)initialized value after recovery — `pm_sync_var_hint`'s
    /// `init_val`.
    pub init_val: u64,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Wall-clock budget for one campaign; spin loops and the scheduler
    /// observe it, turning seeded hang bugs into [`RtError::Timeout`].
    pub deadline: Duration,
    /// Capture crash images at detection points (needed for post-failure
    /// validation; disable for pure coverage runs).
    pub capture_crash_images: bool,
    /// Budget of crash images per campaign (each is a pool-sized copy).
    pub max_crash_images: usize,
    /// Benign-read whitelist (§4.4).
    pub whitelist: Whitelist,
    /// Depth of the PM access-trace rings attached to bug reports
    /// (0 disables tracing).
    pub trace_depth: usize,
    /// Consecutive [`PmView::spin_yield`] calls that may observe a frozen
    /// session-wide mutation counter before the spinner declares a livelock
    /// and latches the hang flag. Catches leaked-lock hang bugs in
    /// milliseconds instead of burning the whole `deadline` (which remains
    /// the wall-clock backstop). `0` disables early detection.
    ///
    /// [`PmView::spin_yield`]: crate::PmView::spin_yield
    pub livelock_spins: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            deadline: Duration::from_secs(2),
            capture_crash_images: true,
            max_crash_images: 64,
            whitelist: Whitelist::default_rules(),
            trace_depth: 128,
            livelock_spins: 4096,
        }
    }
}

/// How a load reached PM: a plain load instruction (the scheduler can
/// inject `cond_wait` before it) or the read half of a compare-and-swap
/// (not gateable before the fact, but a *retry* decision point after a
/// failed attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadKind {
    /// A plain load instruction.
    Plain,
    /// The read half of a `cas_u64`.
    Cas,
}

/// Per-granule access statistics backing the scheduler's priority queue of
/// shared PM accesses (§4.2.2). A granule sees a handful of distinct sites
/// and threads, so linear-scanned vectors beat hash maps on the hot path.
#[derive(Debug, Clone, Default)]
struct AccessStats {
    loads: Vec<(Site, u32)>,
    stores: Vec<(Site, u32)>,
    cas: Vec<(Site, u32)>,
    threads: Vec<ThreadId>,
}

impl AccessStats {
    /// Fold `n` batched hits of `site` in (the epoch-flush form of the old
    /// per-access bump).
    fn bump_n(sites: &mut Vec<(Site, u32)>, site: Site, n: u32) {
        if let Some(e) = sites.iter_mut().find(|e| e.0 == site) {
            e.1 += n;
        } else {
            sites.push((site, n));
        }
    }

    fn note_thread(&mut self, tid: ThreadId) {
        if !self.threads.contains(&tid) {
            self.threads.push(tid);
        }
    }
}

/// One entry of the shared-access summary: a PM address with the load and
/// store instructions that touched it and how often.
#[derive(Debug, Clone)]
pub struct SharedAccessEntry {
    /// Byte offset of the granule.
    pub off: u64,
    /// Load sites with execution counts.
    pub load_sites: Vec<(Site, u32)>,
    /// Store sites with execution counts.
    pub store_sites: Vec<(Site, u32)>,
    /// CAS sites with execution counts (the read-modify-write instructions
    /// whose failed attempts are retry decision points).
    pub cas_sites: Vec<(Site, u32)>,
    /// Total accesses (priority key; hot shared data first).
    pub total: u32,
    /// Distinct threads that touched the granule.
    pub threads: usize,
}

/// Number of taint/statistics stripes. Stripes are keyed `granule % 64`, so
/// the 8 granules of one cache line land in 8 *consecutive* stripes and
/// neighbouring lines never collide until 64 granules apart.
const STRIPES: usize = 64;

/// Combined per-granule shadow state: taint labels (empty set = untainted)
/// plus access statistics. One struct so a hook updates both with a single
/// map lookup.
#[derive(Debug, Clone, Default)]
struct GranuleShadow {
    taint: TaintSet,
    stats: AccessStats,
}

/// One stripe of the per-granule shadow state. Combined so the common store
/// hook (taint update + stats update on the same granule) takes one lock and
/// one hash lookup, not several. Cache-line aligned so adjacent stripes'
/// mutexes never share a CPU line (threads hash to different stripes by
/// design; unaligned, their lock traffic would still collide).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe {
    shadow: FxHashMap<u64, GranuleShadow>,
}

/// One 64-byte-padded PM-event counter cell; threads bump the cell indexed
/// by their `ThreadId` so the hot instrumentation hooks never contend on a
/// single shared cache line ([`Session::pm_accesses`] sums the cells).
#[repr(align(64))]
#[derive(Debug, Default)]
struct EventCell(AtomicU64);

/// Number of [`EventCell`]s (covers the paper's 4-thread campaigns with
/// headroom; higher thread ids wrap).
const EVENT_CELLS: usize = 8;

fn stripe_of(g: u64) -> usize {
    (g % STRIPES as u64) as usize
}

/// Count freshly minted inconsistency records (total and whitelisted) in
/// the telemetry registry.
fn note_inconsistencies(new_records: &[InconsistencyRecord]) {
    if !telemetry::enabled() || new_records.is_empty() {
        return;
    }
    telemetry::add(
        telemetry::Counter::CheckerInconsistencies,
        new_records.len() as u64,
    );
    let whitelisted = new_records.iter().filter(|r| r.whitelisted).count() as u64;
    if whitelisted > 0 {
        telemetry::add(telemetry::Counter::CheckerWhitelisted, whitelisted);
    }
}

/// Rare-event report state: candidate minting and the three report streams.
/// These stay behind one mutex — keeping candidate ids dense and the dedup
/// indices exact requires cross-thread agreement anyway, and detections are
/// orders of magnitude rarer than accesses.
#[derive(Debug, Default)]
struct Reports {
    candidates: Vec<Candidate>,
    candidate_index: FxHashMap<(u32, u32, CandidateKind), u32>,
    inconsistencies: Vec<InconsistencyRecord>,
    incons_index: HashSet<(u32, u32, u32)>,
    sync_updates: Vec<SyncUpdateRecord>,
    sync_index: HashSet<(String, u32)>,
    perf_issues: Vec<crate::report::PerfIssueRecord>,
    images_captured: usize,
}

/// A fuzz-campaign session: owns all checker state for one execution of the
/// target. Create per-thread [`PmView`]s with [`Session::view`].
pub struct Session {
    pool: Arc<Pool>,
    cfg: SessionConfig,
    start: Instant,
    /// Behind an `Arc` so a finished campaign can hand the map off to the
    /// explorer's frontier merge without cloning it (~272 KiB per
    /// campaign at fleet rates) — see [`Session::coverage_handle`].
    coverage: Arc<CoverageMap>,
    trace: TraceBuffers,
    stripes: Box<[Mutex<Stripe>]>,
    reports: Mutex<Reports>,
    annotations: RwLock<Vec<SyncVarAnnotation>>,
    strategy: RwLock<Arc<dyn InterleaveStrategy>>,
    checkers: RwLock<Vec<Arc<dyn Checker>>>,
    /// Fast-path flags mirroring the registries above: hooks consult these
    /// relaxed atomics instead of taking a read lock per access when no
    /// strategy/checker/annotation is installed (the common case for
    /// coverage-only runs).
    passive_strategy: AtomicBool,
    has_checkers: AtomicBool,
    has_annotations: AtomicBool,
    halted: AtomicBool,
    /// Deadline-expired latch; also strided-sample state for [`Session::check`].
    hang: AtomicBool,
    check_ctr: AtomicU32,
    /// Mutation counter: bumped once per store (plain, non-temporal, or the
    /// store half of a successful CAS). [`PmView::spin_yield`] samples it to
    /// tell a contended-but-live lock from a leaked one — a spin loop that
    /// keeps seeing the same value is making no one any progress.
    ///
    /// [`PmView::spin_yield`]: crate::PmView::spin_yield
    progress: AtomicU64,
    pm_events: [EventCell; EVENT_CELLS],
    /// Monotone may-be-tainted granule filter gating the stripe lock on the
    /// store/load hot paths.
    taint_filter: TaintFilter,
    /// Bumped by [`Session::set_strategy`]; views cache the strategy `Arc`
    /// per buffer and refresh when the generation moves (starts at 1 so a
    /// fresh buffer's generation 0 always misses).
    strategy_gen: AtomicU64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("pool_size", &self.pool.size())
            .field("elapsed", &self.start.elapsed())
            .field("halted", &self.halted.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Create a session over `pool` with the given configuration.
    #[must_use]
    pub fn new(pool: Arc<Pool>, cfg: SessionConfig) -> Arc<Self> {
        let trace_depth = cfg.trace_depth;
        Arc::new(Session {
            pool,
            cfg,
            start: Instant::now(),
            coverage: Arc::new(CoverageMap::new()),
            trace: TraceBuffers::new(trace_depth),
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            reports: Mutex::new(Reports::default()),
            annotations: RwLock::new(Vec::new()),
            strategy: RwLock::new(Arc::new(NoopStrategy)),
            checkers: RwLock::new(Vec::new()),
            passive_strategy: AtomicBool::new(true),
            has_checkers: AtomicBool::new(false),
            has_annotations: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            hang: AtomicBool::new(false),
            check_ctr: AtomicU32::new(0),
            progress: AtomicU64::new(0),
            pm_events: Default::default(),
            taint_filter: TaintFilter::new(),
            strategy_gen: AtomicU64::new(1),
        })
    }

    /// The pool under test.
    #[must_use]
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Install the interleaving-exploration strategy for this campaign.
    pub fn set_strategy(&self, strategy: Arc<dyn InterleaveStrategy>) {
        let mut slot = self.strategy.write();
        self.passive_strategy
            .store(strategy.is_passive(), Ordering::Relaxed);
        *slot = strategy;
        self.strategy_gen.fetch_add(1, Ordering::Release);
    }

    /// Current strategy generation (see the `strategy_gen` field).
    pub(crate) fn strategy_generation(&self) -> u64 {
        self.strategy_gen.load(Ordering::Acquire)
    }

    /// `true` while the installed strategy is passive (no hooks); views use
    /// this to skip strategy dispatch on the access hot path.
    #[must_use]
    pub fn strategy_passive(&self) -> bool {
        self.passive_strategy.load(Ordering::Relaxed)
    }

    /// Register an extension checker.
    pub fn add_checker(&self, checker: Arc<dyn Checker>) {
        self.checkers.write().push(checker);
        self.has_checkers.store(true, Ordering::Relaxed);
    }

    /// Annotate a persistent synchronization variable (the
    /// `pm_sync_var_hint(size, init_val)` macro of §5).
    pub fn annotate_sync_var(&self, ann: SyncVarAnnotation) {
        self.annotations.write().push(ann);
        self.has_annotations.store(true, Ordering::Relaxed);
    }

    /// All registered annotations.
    #[must_use]
    pub fn annotations(&self) -> Vec<SyncVarAnnotation> {
        self.annotations.read().clone()
    }

    /// Create the instrumented access handle for a target thread. The view
    /// owns its metadata buffer; dropping it (or [`PmView::flush`])
    /// publishes any still-batched statistics to this session.
    #[must_use]
    pub fn view(self: &Arc<Self>, tid: ThreadId) -> PmView {
        PmView::new(Arc::clone(self), tid)
    }

    /// Abort the campaign: all threads fail their next [`PmView::check`].
    pub fn halt(&self) {
        self.halted.store(true, Ordering::SeqCst);
    }

    /// `true` once halted or past the deadline.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.halted.load(Ordering::Relaxed) || self.start.elapsed() >= self.cfg.deadline
    }

    /// Calls of [`Session::check`] between clock samples. Reading the
    /// monotonic clock costs ~20ns — a large slice of an instrumented
    /// access — so intermediate calls skip it. Hang detection still fires
    /// within `CHECK_STRIDE` accesses of the deadline, which is microseconds
    /// in any spin loop.
    pub(crate) const CHECK_STRIDE: u32 = 32;

    /// Deadline/halt check; flags the campaign as hung when the deadline
    /// passes.
    ///
    /// The deadline clock is sampled every `CHECK_STRIDE` calls
    /// (always including the first call of a fresh session); an expired
    /// observation latches in the hang flag so every subsequent call fails
    /// without touching the clock.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] past the deadline, [`RtError::Halted`] after
    /// [`Session::halt`].
    pub fn check(&self) -> Result<(), RtError> {
        let n = self.check_ctr.fetch_add(1, Ordering::Relaxed);
        self.check_sampled(n & (Self::CHECK_STRIDE - 1) == 0)
    }

    /// [`Session::check`] with the stride decision made by the caller.
    /// Views keep their own plain (non-atomic) counter so concurrent
    /// threads never contend on one shared cache line for the
    /// clock-sampling stride (a fresh counter samples the clock on its
    /// first call, like a fresh session).
    pub(crate) fn check_sampled(&self, sample_clock: bool) -> Result<(), RtError> {
        if self.halted.load(Ordering::Relaxed) {
            return Err(RtError::Halted);
        }
        if self.hang.load(Ordering::Relaxed) {
            return Err(RtError::Timeout);
        }
        if sample_clock && self.start.elapsed() >= self.cfg.deadline {
            self.hang.store(true, Ordering::Relaxed);
            return Err(RtError::Timeout);
        }
        Ok(())
    }

    /// Current mutation count (see the `progress` field).
    pub(crate) fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Latches the hang flag so every thread's next check fails with
    /// [`RtError::Timeout`] — the spin-loop livelock detector's exit.
    pub(crate) fn latch_hang(&self) {
        self.hang.store(true, Ordering::Relaxed);
    }

    /// Time since session creation.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Total PM events (loads, stores, flushes, fences) instrumented so far;
    /// feeds the fuzzer's accesses/sec throughput meter. Counts events
    /// published up to each view's last sync point — drop or
    /// [`PmView::flush`] the views first for an exact count.
    #[must_use]
    pub fn pm_accesses(&self) -> u64 {
        self.pm_events
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// `true` when at least one checker is armed (the CAS-retry fast path
    /// must stand down: checkers observe every access event).
    pub(crate) fn checkers_armed(&self) -> bool {
        self.has_checkers.load(Ordering::Relaxed)
    }

    /// Publish the CAS-retry fast path's batched repeat count (see
    /// `PmView::cas_u64`): memo-answered retries are indistinguishable from
    /// full-path failures in the granule access statistics, so fold them
    /// into the granule's slot as one bulk bump. Coverage needs no update —
    /// repeats are consecutive same-thread accesses to one granule, and the
    /// epoch's `cov_last` already holds the identical packed event.
    pub(crate) fn fold_cas_repeats(&self, buf: &mut ThreadBuffer) {
        if buf.cas_cache.pending == 0 {
            return;
        }
        let g = buf.cas_cache.off / 8;
        let site = Site::from_id(buf.cas_cache.site);
        let n = buf.cas_cache.pending;
        buf.cas_cache.pending = 0;
        let slot = self.touch_slot(buf, g);
        batch::bump_site_n(&mut slot.cas, site, n);
    }

    /// Drain one thread buffer: granule slots (in first-touch order), then
    /// the staged trace, PM event count, and telemetry deltas.
    pub(crate) fn flush_buffer(&self, buf: &mut ThreadBuffer) {
        self.fold_cas_repeats(buf);
        if !buf.used.is_empty() {
            let tid = buf.tid;
            for k in 0..buf.used.len() {
                let idx = buf.used[k] as usize;
                if buf.slots[idx].in_epoch {
                    self.flush_slot(tid, &mut buf.slots[idx]);
                }
                buf.slots[idx].enrolled = false;
            }
            buf.used.clear();
        }
        buf.trace.flush_into(buf.tid, &self.trace);
        if buf.pm_events > 0 {
            self.pm_events[buf.tid.0 as usize % EVENT_CELLS]
                .0
                .fetch_add(buf.pm_events, Ordering::Relaxed);
            buf.pm_events = 0;
        }
        buf.tel.flush();
    }

    /// Publish one granule's batched state if its slot is dirty (the
    /// CAS-point flush: a successful CAS publishes *that* granule, without
    /// taxing the whole buffer inside retry loops).
    pub(crate) fn flush_granule(&self, buf: &mut ThreadBuffer, g: u64) {
        let base = batch::set_base(g);
        for idx in [base, base + 1] {
            if buf.slots[idx].granule == g && buf.slots[idx].in_epoch {
                let tid = buf.tid;
                self.flush_slot(tid, &mut buf.slots[idx]);
                return;
            }
        }
    }

    /// Drain one granule slot into the stripe map and coverage map.
    fn flush_slot(&self, tid: ThreadId, slot: &mut Slot) {
        let g = slot.granule;
        if slot.cov_first != batch::NO_COV {
            // Consecutive same-thread accesses never complete an alias pair
            // and the last-access table holds one entry per granule, so
            // replaying only the epoch's first and last events produces the
            // exact pair set of the unbatched access stream.
            let (site, p) = batch::unpack_cov(slot.cov_first);
            self.coverage.record_access(g, site, tid, p);
            if slot.cov_last != slot.cov_first {
                let (site, p) = batch::unpack_cov(slot.cov_last);
                self.coverage.record_access(g, site, tid, p);
            }
            slot.cov_first = batch::NO_COV;
            slot.cov_last = batch::NO_COV;
        }
        if !(slot.loads.is_empty() && slot.stores.is_empty() && slot.cas.is_empty()) {
            let mut stripe = self.stripes[stripe_of(g)].lock();
            let sh = stripe.shadow.entry(g).or_default();
            for &(site, n) in &slot.loads {
                AccessStats::bump_n(&mut sh.stats.loads, site, n);
            }
            for &(site, n) in &slot.stores {
                AccessStats::bump_n(&mut sh.stats.stores, site, n);
            }
            for &(site, n) in &slot.cas {
                AccessStats::bump_n(&mut sh.stats.cas, site, n);
            }
            sh.stats.note_thread(tid);
            drop(stripe);
            slot.loads.clear();
            slot.stores.clear();
            slot.cas.clear();
        }
        slot.in_epoch = false;
    }

    /// The granule slot for `g`, enrolling it in this epoch's `used` list.
    /// On a miss in both ways of `g`'s set, a victim way is chosen (an idle
    /// way if one exists, else round-robin among the live ways) and its
    /// batched state flushed before the slot is re-keyed.
    #[inline]
    fn touch_slot<'b>(&self, buf: &'b mut ThreadBuffer, g: u64) -> &'b mut Slot {
        let base = batch::set_base(g);
        let idx = if buf.slots[base].granule == g {
            base
        } else if buf.slots[base + 1].granule == g {
            base + 1
        } else {
            let victim = if !buf.slots[base].in_epoch {
                base
            } else if !buf.slots[base + 1].in_epoch {
                base + 1
            } else {
                let v = base + usize::from(buf.victim_flip);
                buf.victim_flip = !buf.victim_flip;
                v
            };
            if buf.slots[victim].in_epoch {
                let tid = buf.tid;
                self.flush_slot(tid, &mut buf.slots[victim]);
            }
            buf.slots[victim].granule = g;
            victim
        };
        if !buf.slots[idx].enrolled {
            buf.slots[idx].enrolled = true;
            buf.used.push(idx as u16);
        }
        buf.slots[idx].in_epoch = true;
        &mut buf.slots[idx]
    }

    pub(crate) fn strategy(&self) -> Arc<dyn InterleaveStrategy> {
        Arc::clone(&self.strategy.read())
    }

    /// Notify the strategy that a driver thread finished its operation
    /// sequence (feeds the scheduler's live-thread accounting).
    pub fn thread_done(&self, tid: ThreadId) {
        self.strategy().thread_done(tid);
    }

    fn run_checkers<F: Fn(&dyn Checker, &mut Vec<crate::report::PerfIssueRecord>)>(&self, f: F) {
        if !self.has_checkers.load(Ordering::Relaxed) {
            return;
        }
        let checkers = self.checkers.read();
        if checkers.is_empty() {
            return;
        }
        let mut out = Vec::new();
        for c in checkers.iter() {
            f(c.as_ref(), &mut out);
        }
        if !out.is_empty() {
            self.reports.lock().perf_issues.extend(out);
        }
    }

    /// Load hook: update coverage/stats, mint candidates, return the taint
    /// the loaded value carries.
    ///
    /// `kind` is [`LoadKind::Cas`] for the load half of read-modify-write
    /// instructions: they still mint candidates and coverage, but the
    /// scheduler cannot inject `cond_wait` *before* them, so they are
    /// tallied separately (`AccessStats::cas`) and surface in the priority
    /// queue as CAS-retry decision points rather than gateable load sites.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_load(
        &self,
        buf: &mut ThreadBuffer,
        off: u64,
        len: usize,
        site: Site,
        tid: ThreadId,
        info: &LoadInfo,
        kind: LoadKind,
    ) -> TaintSet {
        buf.pm_events += 1;
        if telemetry::enabled() {
            buf.tel.loads += 1;
            buf.tel.site_hit(site.id());
        }
        buf.trace.push(TraceKind::Load, site, off, len as u32);
        let packed = batch::pack_cov(site, info.unpersisted);
        let mut taint = TaintSet::empty();
        for g in granules(off, len) {
            let slot = self.touch_slot(buf, g);
            if slot.cov_first == batch::NO_COV {
                slot.cov_first = packed;
            }
            slot.cov_last = packed;
            match kind {
                LoadKind::Plain => batch::bump_site(&mut slot.loads, site),
                LoadKind::Cas => batch::bump_site(&mut slot.cas, site),
            }
            // Shadow taint stays write-through (detection semantics); the
            // monotone filter skips the stripe lock when the granule has
            // never been tainted — the overwhelmingly common case.
            if self.taint_filter.maybe_tainted(g) {
                let stripe = self.stripes[stripe_of(g)].lock();
                if let Some(sh) = stripe.shadow.get(&g) {
                    if !sh.taint.is_empty() {
                        taint.union_with(&sh.taint);
                    }
                }
            }
        }
        if info.unpersisted {
            let cand_kind = if info.writer == tid {
                CandidateKind::Intra
            } else {
                CandidateKind::Inter
            };
            let key = (info.tag.0, site.id(), cand_kind);
            let mut reports = self.reports.lock();
            let id = match reports.candidate_index.get(&key) {
                Some(&id) => id,
                None => {
                    telemetry::add(
                        match cand_kind {
                            CandidateKind::Inter => telemetry::Counter::CheckerCandidatesInter,
                            CandidateKind::Intra => telemetry::Counter::CheckerCandidatesIntra,
                        },
                        1,
                    );
                    let id = u32::try_from(reports.candidates.len()).expect("candidate overflow");
                    reports.candidate_index.insert(key, id);
                    reports.candidates.push(Candidate {
                        id,
                        kind: cand_kind,
                        write_site: Site::from_id(info.tag.0),
                        write_tid: info.writer,
                        read_site: site,
                        read_tid: tid,
                        off,
                    });
                    id
                }
            };
            drop(reports);
            taint.insert(id);
        }
        self.run_checkers(|c, out| {
            c.on_load(
                &AccessEvent {
                    off,
                    len,
                    site,
                    tid,
                    state_before: info.state,
                },
                out,
            );
        });
        taint
    }

    /// Store hook (after the pool store landed): coverage/stats, durable
    /// side-effect detection, shadow-taint update, sync-var updates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_store(
        &self,
        buf: &mut ThreadBuffer,
        off: u64,
        len: usize,
        site: Site,
        tid: ThreadId,
        value_taint: &TaintSet,
        addr_taint: &TaintSet,
        non_temporal: bool,
        state_before: PersistState,
    ) {
        buf.pm_events += 1;
        // Mutation heartbeat for the spin-loop livelock detector. Stores are
        // orders of magnitude rarer than loads, so one relaxed bump here does
        // not show up in the hot-path matrix.
        self.progress.fetch_add(1, Ordering::Relaxed);
        if telemetry::enabled() {
            if non_temporal {
                buf.tel.ntstores += 1;
            } else {
                buf.tel.stores += 1;
            }
            buf.tel.site_hit(site.id());
        }
        buf.trace.push(
            if non_temporal {
                TraceKind::NtStore
            } else {
                TraceKind::Store
            },
            site,
            off,
            len as u32,
        );
        // A non-temporal store lands persisted.
        let packed = batch::pack_cov(site, !non_temporal);
        for g in granules(off, len) {
            let slot = self.touch_slot(buf, g);
            if slot.cov_first == batch::NO_COV {
                slot.cov_first = packed;
            }
            slot.cov_last = packed;
            batch::bump_site(&mut slot.stores, site);
            // Shadow taint stays write-through. Setting taint marks the
            // granule in the monotone filter; clearing only needs the
            // stripe when the filter says the granule may hold stale taint.
            if value_taint.is_empty() {
                if self.taint_filter.maybe_tainted(g) {
                    let mut stripe = self.stripes[stripe_of(g)].lock();
                    if let Some(sh) = stripe.shadow.get_mut(&g) {
                        if !sh.taint.is_empty() {
                            sh.taint = TaintSet::empty();
                        }
                    }
                }
            } else {
                self.taint_filter.mark(g);
                let mut stripe = self.stripes[stripe_of(g)].lock();
                stripe.shadow.entry(g).or_default().taint = value_taint.clone();
            }
        }

        // Durable side effect? Ignore labels whose own dependent data is
        // what this store (re)writes — per Definition 2, rewriting the
        // non-persisted data itself is not a side effect of it.
        let mut effect_labels: Vec<(u32, EffectKind)> = Vec::new();
        for l in addr_taint.iter() {
            effect_labels.push((l, EffectKind::Address));
        }
        for l in value_taint.iter() {
            if !addr_taint.contains(l) {
                effect_labels.push((l, EffectKind::Value));
            }
        }
        // Overlapping sync-var annotations, collected before the reports
        // lock (annotations is never acquired while holding reports).
        let anns: Vec<SyncVarAnnotation> =
            if effect_labels.is_empty() && !self.has_annotations.load(Ordering::Relaxed) {
                Vec::new()
            } else {
                self.annotations
                    .read()
                    .iter()
                    .filter(|a| overlaps(a.off, a.size, off, len))
                    .cloned()
                    .collect()
            };
        if effect_labels.is_empty() && anns.is_empty() {
            self.run_checkers(|c, out| {
                c.on_store(
                    &AccessEvent {
                        off,
                        len,
                        site,
                        tid,
                        state_before,
                    },
                    out,
                );
            });
            return;
        }

        // A detection snapshots the trace rings; publish this thread's
        // staged events first so the report shows the access just made.
        buf.trace.flush_into(tid, &self.trace);
        let mut reports = self.reports.lock();
        let mut new_records: Vec<InconsistencyRecord> = Vec::new();
        for (label, kind) in effect_labels {
            let Some(cand) = reports.candidates.get(label as usize).cloned() else {
                continue;
            };
            if kind == EffectKind::Value && overlaps(cand.off, 8, off, len) {
                continue; // rewriting the dependent word itself
            }
            let triple = (cand.write_site.id(), cand.read_site.id(), site.id());
            if !reports.incons_index.insert(triple) {
                continue;
            }
            let whitelisted = self.cfg.whitelist.matches_any([
                site_label(cand.write_site),
                site_label(cand.read_site),
                site_label(site),
            ]);
            let capture = self.cfg.capture_crash_images
                && reports.images_captured < self.cfg.max_crash_images;
            if capture {
                reports.images_captured += 1;
            }
            new_records.push(InconsistencyRecord {
                candidate: cand,
                effect_site: site,
                effect_off: off,
                effect_len: len,
                kind,
                whitelisted,
                trace: self.trace.snapshot(24),
                crash_image: if capture {
                    // Crash point: side effect persisted, dependent data
                    // (everything else unflushed) lost.
                    self.pool
                        .crash_image_persisting(&[(off, len)])
                        .ok()
                        .map(Arc::new)
                } else {
                    None
                },
            });
        }
        note_inconsistencies(&new_records);
        reports.inconsistencies.extend(new_records);

        // PM Synchronization Inconsistency: store into an annotated region.
        for ann in anns {
            let new_value = self.pool.load_u64(ann.off).map(|(v, _)| v).unwrap_or(0);
            if new_value == ann.init_val {
                // Restoring the annotated initial value (e.g. a lock
                // release) is not an inconsistency risk.
                continue;
            }
            if !reports.sync_index.insert((ann.name.clone(), 0)) {
                continue; // each sync variable's update type checked once (§4.3)
            }
            let capture = self.cfg.capture_crash_images
                && reports.images_captured < self.cfg.max_crash_images;
            if capture {
                reports.images_captured += 1;
            }
            telemetry::add(telemetry::Counter::CheckerSyncUpdates, 1);
            reports.sync_updates.push(SyncUpdateRecord {
                var_name: ann.name.clone(),
                var_off: ann.off,
                var_size: ann.size,
                expected_init: ann.init_val,
                store_site: site,
                new_value,
                tid,
                crash_image: if capture {
                    // Crash right after the sync update persists (Fig. 1's
                    // "crash after thread-2 persists the lock g").
                    self.pool
                        .crash_image_persisting(&[(ann.off, ann.size)])
                        .ok()
                        .map(Arc::new)
                } else {
                    None
                },
            });
        }
        drop(reports);
        self.run_checkers(|c, out| {
            c.on_store(
                &AccessEvent {
                    off,
                    len,
                    site,
                    tid,
                    state_before,
                },
                out,
            );
        });
    }

    /// External durable side effect (reply to a client, disk write) based on
    /// possibly-tainted data.
    pub(crate) fn on_extern_output(
        &self,
        buf: &mut ThreadBuffer,
        taint: &TaintSet,
        site: Site,
        tid: ThreadId,
    ) {
        if taint.is_empty() {
            return;
        }
        buf.trace.flush_into(tid, &self.trace);
        let mut reports = self.reports.lock();
        let mut new_records = Vec::new();
        for label in taint.iter() {
            let Some(cand) = reports.candidates.get(label as usize).cloned() else {
                continue;
            };
            let triple = (cand.write_site.id(), cand.read_site.id(), site.id());
            if !reports.incons_index.insert(triple) {
                continue;
            }
            let whitelisted = self.cfg.whitelist.matches_any([
                site_label(cand.write_site),
                site_label(cand.read_site),
                site_label(site),
            ]);
            new_records.push(InconsistencyRecord {
                candidate: cand,
                effect_site: site,
                effect_off: 0,
                effect_len: 0,
                kind: EffectKind::Output,
                whitelisted,
                trace: self.trace.snapshot(24),
                crash_image: None,
            });
        }
        note_inconsistencies(&new_records);
        reports.inconsistencies.extend(new_records);
    }

    pub(crate) fn on_clwb(
        &self,
        buf: &mut ThreadBuffer,
        off: u64,
        len: usize,
        site: Site,
        tid: ThreadId,
    ) {
        // A flush is an epoch boundary: publish this thread's batched
        // metadata before recording the flush itself.
        self.flush_buffer(buf);
        buf.pm_events += 1;
        if telemetry::enabled() {
            buf.tel.flushes += 1;
            buf.tel.site_hit(site.id());
        }
        buf.trace.push(TraceKind::Clwb, site, off, len as u32);
        if self.has_checkers.load(Ordering::Relaxed) {
            // The range walk over granule metadata is only for checkers
            // (e.g. redundant-flush); skip it entirely when none is armed.
            let state_before = self.range_state(off, len);
            self.run_checkers(|c, out| {
                c.on_clwb(
                    &AccessEvent {
                        off,
                        len,
                        site,
                        tid,
                        state_before,
                    },
                    out,
                );
            });
        }
    }

    pub(crate) fn on_sfence(&self, buf: &mut ThreadBuffer, tid: ThreadId) {
        // Like clwb: the fence ends the epoch.
        self.flush_buffer(buf);
        buf.pm_events += 1;
        if telemetry::enabled() {
            buf.tel.fences += 1;
        }
        self.run_checkers(|c, out| c.on_sfence(tid, out));
    }

    /// Summarized persistency state over a byte range (`Dirty` dominates).
    #[must_use]
    pub fn range_state(&self, off: u64, len: usize) -> PersistState {
        let mut worst = PersistState::Clean;
        for g in granules(off, len) {
            match self.pool.meta_at(g * 8).state {
                PersistState::Dirty => return PersistState::Dirty,
                PersistState::Flushing => worst = PersistState::Flushing,
                PersistState::Clean => {}
            }
        }
        worst
    }

    /// Record a branch/basic-block hit for branch coverage.
    pub fn record_branch(&self, site: Site) {
        self.coverage.record_branch(site);
    }

    /// Coverage counters `(alias_pairs, branches)` so far.
    #[must_use]
    pub fn coverage_counts(&self) -> (usize, usize) {
        (self.coverage.alias_pairs(), self.coverage.branches())
    }

    /// Clone the session coverage map (for merging into a global map).
    #[must_use]
    pub fn coverage_snapshot(&self) -> CoverageMap {
        (*self.coverage).clone()
    }

    /// Hand off the session coverage map by reference count — the zero-copy
    /// alternative to [`Session::coverage_snapshot`] for a *finished*
    /// campaign: once the views are gone nothing mutates the map, so the
    /// explorer can merge straight from the shared allocation instead of
    /// paying a ~272 KiB clone per campaign.
    #[must_use]
    pub fn coverage_handle(&self) -> Arc<CoverageMap> {
        Arc::clone(&self.coverage)
    }

    /// Shared-PM-access summary for the scheduler's priority queue: granules
    /// touched by several threads with both loads and stores, hottest first.
    #[must_use]
    pub fn shared_accesses(&self) -> Vec<SharedAccessEntry> {
        let mut out: Vec<SharedAccessEntry> = Vec::new();
        for stripe in self.stripes.iter() {
            let stripe = stripe.lock();
            out.extend(
                stripe
                    .shadow
                    .iter()
                    .filter(|(_, sh)| {
                        // A granule with CAS traffic but no plain loads is
                        // still schedulable: failed attempts are retry
                        // decision points the strategy can stall on.
                        sh.stats.threads.len() >= 2
                            && !sh.stats.stores.is_empty()
                            && (!sh.stats.loads.is_empty() || !sh.stats.cas.is_empty())
                    })
                    .map(|(&g, sh)| {
                        let mut load_sites = sh.stats.loads.clone();
                        let mut store_sites = sh.stats.stores.clone();
                        let mut cas_sites = sh.stats.cas.clone();
                        load_sites.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s.id()));
                        store_sites.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s.id()));
                        cas_sites.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s.id()));
                        let total = sh.stats.loads.iter().map(|&(_, c)| c).sum::<u32>()
                            + sh.stats.stores.iter().map(|&(_, c)| c).sum::<u32>()
                            + sh.stats.cas.iter().map(|&(_, c)| c).sum::<u32>();
                        SharedAccessEntry {
                            off: g * 8,
                            load_sites,
                            store_sites,
                            cas_sites,
                            total,
                            threads: sh.stats.threads.len(),
                        }
                    }),
            );
        }
        out.sort_by_key(|e| (std::cmp::Reverse(e.total), e.off));
        out
    }

    /// Granules (by byte offset) that received at least one store during
    /// this session. Post-failure validation uses this over a *recovery*
    /// session to decide whether recorded side effects were overwritten
    /// (§4.4): if recovery rewrote every byte of a durable side effect, the
    /// inconsistency is benign.
    #[must_use]
    pub fn stored_granules(&self) -> std::collections::HashSet<u64> {
        let mut out = std::collections::HashSet::new();
        for stripe in self.stripes.iter() {
            let stripe = stripe.lock();
            out.extend(
                stripe
                    .shadow
                    .iter()
                    .filter(|(_, sh)| !sh.stats.stores.is_empty())
                    .map(|(&g, _)| g * 8),
            );
        }
        out
    }

    /// End the campaign: notify the strategy, give end-of-campaign checkers
    /// (e.g. missing-flush) their pass over the still-dirty granules, and
    /// extract all findings.
    #[must_use]
    pub fn finish(&self) -> Findings {
        self.strategy().campaign_end();
        if self.has_checkers.load(Ordering::Relaxed) {
            let dirty = self.pool.unpersisted_regions();
            self.run_checkers(|c, out| c.on_campaign_end(&dirty, out));
        }
        let mut reports = self.reports.lock();
        Findings {
            candidates: std::mem::take(&mut reports.candidates),
            inconsistencies: std::mem::take(&mut reports.inconsistencies),
            sync_updates: std::mem::take(&mut reports.sync_updates),
            perf_issues: std::mem::take(&mut reports.perf_issues),
            hang: self.hang.load(Ordering::Relaxed),
        }
    }
}

#[allow(clippy::reversed_empty_ranges)]
fn granules(off: u64, len: usize) -> std::ops::RangeInclusive<u64> {
    if len == 0 {
        return 1..=0;
    }
    (off / 8)..=((off + len as u64 - 1) / 8)
}

fn overlaps(a_off: u64, a_len: usize, b_off: u64, b_len: usize) -> bool {
    a_len > 0 && b_len > 0 && a_off < b_off + b_len as u64 && b_off < a_off + a_len as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::PoolOpts;

    fn session() -> Arc<Session> {
        Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        )
    }

    #[test]
    fn overlap_predicate() {
        assert!(overlaps(0, 8, 4, 8));
        assert!(!overlaps(0, 8, 8, 8));
        assert!(overlaps(8, 8, 0, 9));
        assert!(!overlaps(8, 0, 0, 100)); // empty range never overlaps
    }

    #[test]
    fn deadline_marks_hang() {
        let pool = Arc::new(Pool::new(PoolOpts::small()));
        let s = Session::new(
            pool,
            SessionConfig {
                deadline: Duration::from_millis(0),
                ..SessionConfig::default()
            },
        );
        assert_eq!(s.check().unwrap_err(), RtError::Timeout);
        assert!(s.finish().hang);
    }

    #[test]
    fn halt_cancels() {
        let s = session();
        assert!(s.check().is_ok());
        s.halt();
        assert_eq!(s.check().unwrap_err(), RtError::Halted);
        assert!(s.cancelled());
    }

    #[test]
    fn annotations_roundtrip() {
        let s = session();
        s.annotate_sync_var(SyncVarAnnotation {
            name: "lock".into(),
            off: 64,
            size: 8,
            init_val: 0,
        });
        assert_eq!(s.annotations().len(), 1);
        assert_eq!(s.annotations()[0].name, "lock");
    }

    #[test]
    fn pm_access_counter_counts_hooks() {
        let s = session();
        let view = s.view(ThreadId(0));
        let site = crate::site!("session.counter");
        view.store_u64(0, 7, site).unwrap();
        view.load_u64(0, site).unwrap();
        view.clwb(0, 8, site).unwrap();
        view.sfence().unwrap();
        drop(view); // publishes the final epoch (sfence already did here)
        assert_eq!(s.pm_accesses(), 4);
    }
}

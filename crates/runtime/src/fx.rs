//! A fast, non-cryptographic hasher for the instrumentation hot path.
//!
//! The default `std` hasher (SipHash) dominates the per-access cost of the
//! taint/statistics maps; this is the classic multiply-rotate-xor scheme
//! (as used by the rustc compiler) — not DoS-resistant, which is fine for
//! maps keyed by pool offsets and instruction sites we generate ourselves.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate-xor hasher; see the module docs.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_distinct_keys_differ() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k as u32);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m[&k], k as u32);
        }
        let mut a = FxHasher::default();
        a.write_u64(1);
        let mut b = FxHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }
}

//! Raw finding records produced by the runtime checkers.
//!
//! These are the *pre-failure* detections (§4.3). The fuzzer crate runs
//! post-failure validation over them and promotes the survivors to bug
//! reports.

use std::sync::Arc;

use pmrace_pmem::{CrashImage, ThreadId};

use crate::trace::TraceEvent;
use crate::{site_label, Site};

/// Whether a candidate crosses threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// Reader and writer are different threads (Definition 1).
    Inter,
    /// A thread read its own non-persisted write.
    Intra,
}

impl std::fmt::Display for CandidateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CandidateKind::Inter => f.write_str("inter-thread"),
            CandidateKind::Intra => f.write_str("intra-thread"),
        }
    }
}

/// A *PM Inconsistency Candidate*: a load that observed non-persisted data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Session-local id; doubles as the taint label.
    pub id: u32,
    /// Inter- vs intra-thread.
    pub kind: CandidateKind,
    /// Store instruction that produced the non-persisted data.
    pub write_site: Site,
    /// Thread that issued that store.
    pub write_tid: ThreadId,
    /// Load instruction that observed it.
    pub read_site: Site,
    /// Thread that issued the load.
    pub read_tid: ThreadId,
    /// Pool offset of the observed word.
    pub off: u64,
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} candidate c{}: {} read non-persisted data at {:#x} written by {} at {}",
            self.kind,
            self.id,
            site_label(self.read_site),
            self.off,
            self.write_tid,
            site_label(self.write_site),
        )
    }
}

/// How a durable side effect depends on non-persisted data (§4.3's two data
/// flows, plus external output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    /// The stored *contents* are computed from non-persisted data.
    Value,
    /// The store *address* is computed from non-persisted data (the P-CLHT
    /// data-loss shape).
    Address,
    /// Data derived from non-persisted values left the program (reply to a
    /// client, write to disk).
    Output,
}

impl std::fmt::Display for EffectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EffectKind::Value => f.write_str("tainted value"),
            EffectKind::Address => f.write_str("tainted address"),
            EffectKind::Output => f.write_str("external output"),
        }
    }
}

/// A confirmed *PM Inter-/Intra-thread Inconsistency*: candidate + durable
/// side effect (Definition 2).
#[derive(Debug, Clone)]
pub struct InconsistencyRecord {
    /// The candidate this side effect depends on.
    pub candidate: Candidate,
    /// Instruction performing the durable side effect.
    pub effect_site: Site,
    /// Pool offset of the side effect (0 for [`EffectKind::Output`]).
    pub effect_off: u64,
    /// Byte length of the side effect.
    pub effect_len: usize,
    /// Data-flow class.
    pub kind: EffectKind,
    /// `true` if a whitelist rule matched one of the involved sites; such
    /// records are counted as whitelisted false positives, not bugs.
    pub whitelisted: bool,
    /// Recent PM access history at the detection point (the report's
    /// stack-trace analog; empty when tracing is disabled).
    pub trace: Vec<TraceEvent>,
    /// Crash image at the detection point (side effect persisted, dependent
    /// data lost) for post-failure validation. `None` when capture was
    /// disabled or budget-limited.
    pub crash_image: Option<Arc<CrashImage>>,
}

impl InconsistencyRecord {
    /// Stable identity for deduplication: (write site, read site, effect
    /// site). The paper groups unique bugs by the store instruction of the
    /// non-persisted data.
    #[must_use]
    pub fn triple(&self) -> (u32, u32, u32) {
        (
            self.candidate.write_site.id(),
            self.candidate.read_site.id(),
            self.effect_site.id(),
        )
    }
}

impl std::fmt::Display for InconsistencyRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} inconsistency: {} -> durable side effect ({}) by {} at {:#x}+{}{}",
            self.candidate.kind,
            self.candidate,
            self.kind,
            site_label(self.effect_site),
            self.effect_off,
            self.effect_len,
            if self.whitelisted {
                " [whitelisted]"
            } else {
                ""
            },
        )
    }
}

/// One recorded update of an annotated synchronization variable
/// (*PM Synchronization Inconsistency*, Definition 3).
#[derive(Debug, Clone)]
pub struct SyncUpdateRecord {
    /// Name of the annotated variable.
    pub var_name: String,
    /// Pool offset of the variable.
    pub var_off: u64,
    /// Variable size in bytes.
    pub var_size: usize,
    /// Expected value after a correct recovery (from the annotation).
    pub expected_init: u64,
    /// Store instruction that updated the variable.
    pub store_site: Site,
    /// Value written.
    pub new_value: u64,
    /// Thread performing the update.
    pub tid: ThreadId,
    /// Crash image right after the update persists.
    pub crash_image: Option<Arc<CrashImage>>,
}

impl std::fmt::Display for SyncUpdateRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sync inconsistency: {} updated persistent sync var '{}' at {:#x} to {} (expected {} after recovery) at {}",
            self.tid, self.var_name, self.var_off, self.new_value, self.expected_init,
            site_label(self.store_site),
        )
    }
}

/// A performance-class issue raised by an extension checker (e.g. redundant
/// flush of clean data — the paper's Bug 4 class).
#[derive(Debug, Clone)]
pub struct PerfIssueRecord {
    /// Checker that raised the issue.
    pub checker: &'static str,
    /// Instruction site involved.
    pub site: Site,
    /// Pool offset involved.
    pub off: u64,
    /// Byte length involved.
    pub len: usize,
    /// Human-readable description.
    pub what: String,
}

impl std::fmt::Display for PerfIssueRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at {} ({:#x}+{})",
            self.checker,
            self.what,
            site_label(self.site),
            self.off,
            self.len
        )
    }
}

/// Everything a campaign produced, handed to the fuzzer at campaign end.
#[derive(Debug, Clone, Default)]
pub struct Findings {
    /// All candidates (deduplicated per campaign by write/read site pair).
    pub candidates: Vec<Candidate>,
    /// Confirmed inconsistencies (deduplicated per campaign by triple).
    pub inconsistencies: Vec<InconsistencyRecord>,
    /// Sync-variable updates (deduplicated by variable + store site).
    pub sync_updates: Vec<SyncUpdateRecord>,
    /// Extension-checker issues.
    pub perf_issues: Vec<PerfIssueRecord>,
    /// `true` if the campaign ended by deadline (possible hang bug).
    pub hang: bool,
}

impl Findings {
    /// Candidates of a given kind.
    #[must_use]
    pub fn candidates_of(&self, kind: CandidateKind) -> usize {
        self.candidates.iter().filter(|c| c.kind == kind).count()
    }

    /// Inconsistencies of a given kind (non-whitelisted only when `strict`).
    #[must_use]
    pub fn inconsistencies_of(&self, kind: CandidateKind, strict: bool) -> usize {
        self.inconsistencies
            .iter()
            .filter(|i| i.candidate.kind == kind && (!strict || !i.whitelisted))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    fn cand(kind: CandidateKind) -> Candidate {
        Candidate {
            id: 1,
            kind,
            write_site: site!("w"),
            write_tid: ThreadId(0),
            read_site: site!("r"),
            read_tid: ThreadId(1),
            off: 0x40,
        }
    }

    #[test]
    fn displays_are_informative() {
        let c = cand(CandidateKind::Inter);
        assert!(c.to_string().contains("non-persisted"));
        let rec = InconsistencyRecord {
            candidate: c,
            effect_site: site!("e"),
            effect_off: 0x80,
            effect_len: 8,
            kind: EffectKind::Address,
            whitelisted: true,
            trace: Vec::new(),
            crash_image: None,
        };
        let s = rec.to_string();
        assert!(s.contains("tainted address"));
        assert!(s.contains("[whitelisted]"));
    }

    #[test]
    fn findings_counters_filter_kind_and_whitelist() {
        let mut f = Findings::default();
        f.candidates.push(cand(CandidateKind::Inter));
        f.candidates.push(cand(CandidateKind::Intra));
        f.inconsistencies.push(InconsistencyRecord {
            candidate: cand(CandidateKind::Inter),
            effect_site: site!("e2"),
            effect_off: 0,
            effect_len: 8,
            kind: EffectKind::Value,
            whitelisted: true,
            trace: Vec::new(),
            crash_image: None,
        });
        assert_eq!(f.candidates_of(CandidateKind::Inter), 1);
        assert_eq!(f.inconsistencies_of(CandidateKind::Inter, false), 1);
        assert_eq!(f.inconsistencies_of(CandidateKind::Inter, true), 0);
    }

    #[test]
    fn triple_is_site_based() {
        let rec = InconsistencyRecord {
            candidate: cand(CandidateKind::Inter),
            effect_site: site!("e3"),
            effect_off: 0,
            effect_len: 1,
            kind: EffectKind::Value,
            whitelisted: false,
            trace: Vec::new(),
            crash_image: None,
        };
        let (w, r, e) = rec.triple();
        assert_eq!(w, rec.candidate.write_site.id());
        assert_eq!(r, rec.candidate.read_site.id());
        assert_eq!(e, rec.effect_site.id());
    }
}

//! Whitelist of known-benign non-persisted reads (§4.4).
//!
//! Post-failure validation cannot see through application-specific
//! tolerance mechanisms (lazy recovery, checksums, redo logging), so PMRace
//! lets developers list code locations whose non-persisted reads are safe.
//! Rules match substrings of site labels — the analog of the paper matching
//! stack-trace entries.

/// A set of label-substring rules; an inconsistency is whitelisted when any
/// rule matches the label of its read, write, or effect site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Whitelist {
    rules: Vec<String>,
}

impl Whitelist {
    /// Empty whitelist (every detection is reported).
    #[must_use]
    pub fn empty() -> Self {
        Whitelist { rules: Vec::new() }
    }

    /// The default whitelist the paper ships: PMDK's redo-logged
    /// transactional allocations, plus checksum-guarded regions (used by
    /// memcached-pmem).
    #[must_use]
    pub fn default_rules() -> Self {
        Whitelist {
            rules: vec!["pmdk_tx_alloc".to_owned(), "checksum_guard".to_owned()],
        }
    }

    /// Add a rule (label substring).
    pub fn add(&mut self, rule: impl Into<String>) {
        self.rules.push(rule.into());
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Does any rule match this site label?
    #[must_use]
    pub fn matches_label(&self, label: &str) -> bool {
        self.rules.iter().any(|r| label.contains(r.as_str()))
    }

    /// Does any rule match any of the given labels?
    #[must_use]
    pub fn matches_any<'a, I: IntoIterator<Item = &'a str>>(&self, labels: I) -> bool {
        labels.into_iter().any(|l| self.matches_label(l))
    }
}

impl Default for Whitelist {
    fn default() -> Self {
        Whitelist::default_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_pmdk_tx_alloc() {
        let w = Whitelist::default_rules();
        assert!(w.matches_label("clevel.pmdk_tx_alloc.first_level"));
        assert!(w.matches_label("memkv.checksum_guard.read_value"));
        assert!(!w.matches_label("clht.resize.swap_ptr"));
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn custom_rules_extend_matching() {
        let mut w = Whitelist::empty();
        assert!(w.is_empty());
        assert!(!w.matches_label("fastfair.lazy_fix"));
        w.add("lazy_fix");
        assert!(w.matches_label("fastfair.lazy_fix"));
        assert!(w.matches_any(["nope", "fastfair.lazy_fix"]));
        assert!(!w.matches_any(["nope", "still nope"]));
    }
}

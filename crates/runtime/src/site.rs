//! Static instruction-site registry.
//!
//! Every instrumented PM access carries a [`Site`]: a dense integer id bound
//! to a source location and a human-readable label. Sites stand in for the
//! instruction IDs the paper's LLVM pass assigns, and labels stand in for
//! stack traces in bug reports and whitelist rules.

use std::sync::{Mutex, OnceLock};

/// A registered instruction site (cheap `Copy` id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    id: u32,
}

impl Site {
    /// Dense integer id, unique per registered site within the process.
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }

    /// Rebuild a `Site` from a raw id carried through the PM substrate's
    /// [`SiteTag`](pmrace_pmem::SiteTag). Ids that were never registered
    /// resolve to the `"<unknown site>"` label rather than panicking.
    #[must_use]
    pub fn from_id(id: u32) -> Site {
        Site { id }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", site_label(*self), site_location(*self))
    }
}

#[derive(Debug)]
struct SiteInfo {
    location: &'static str,
    label: &'static str,
}

fn registry() -> &'static Mutex<Vec<SiteInfo>> {
    static REG: OnceLock<Mutex<Vec<SiteInfo>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a site; used by the [`site!`](crate::site) macro. Calling this
/// twice registers two distinct sites — the macro's per-callsite `OnceLock`
/// guarantees one id per source location.
#[must_use]
pub fn register_site(location: &'static str, label: &'static str) -> Site {
    let mut reg = registry().lock().expect("site registry poisoned");
    let id = u32::try_from(reg.len()).expect("too many sites");
    reg.push(SiteInfo { location, label });
    Site { id }
}

/// Human-readable label of a site (e.g. `"clht_lb_res.c:785"`).
#[must_use]
pub fn site_label(site: Site) -> &'static str {
    registry()
        .lock()
        .expect("site registry poisoned")
        .get(site.id as usize)
        .map_or("<unknown site>", |s| s.label)
}

/// Look up a registered site by its exact label.
///
/// Sites register lazily on first execution of their call site, so this
/// only finds labels whose code has already run in this process (replay
/// tooling runs a recon campaign first for exactly that reason). Labels are
/// unique per call site in practice; the first match wins.
#[must_use]
pub fn site_by_label(label: &str) -> Option<Site> {
    let reg = registry().lock().expect("site registry poisoned");
    reg.iter()
        .position(|s| s.label == label)
        .map(|id| Site { id: id as u32 })
}

/// Source location (`file:line`) where the site was declared.
#[must_use]
pub fn site_location(site: Site) -> &'static str {
    registry()
        .lock()
        .expect("site registry poisoned")
        .get(site.id as usize)
        .map_or("<unknown>", |s| s.location)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_distinct_ids() {
        let a = register_site("here:1", "a");
        let b = register_site("here:2", "b");
        assert_ne!(a.id(), b.id());
        assert_eq!(site_label(a), "a");
        assert_eq!(site_location(b), "here:2");
    }

    #[test]
    fn macro_returns_same_site_on_reexecution() {
        fn probe() -> Site {
            crate::site!("probe")
        }
        assert_eq!(probe(), probe());
        assert_eq!(site_label(probe()), "probe");
    }

    #[test]
    fn unknown_site_has_nonempty_label() {
        let bogus = Site { id: u32::MAX };
        assert!(!site_label(bogus).is_empty());
        assert!(!site_location(bogus).is_empty());
    }

    #[test]
    fn lookup_by_label_finds_registered_sites_only() {
        let s = register_site("file.rs:11", "lookup-probe");
        assert_eq!(site_by_label("lookup-probe"), Some(s));
        assert_eq!(site_by_label("never-registered-label"), None);
    }

    #[test]
    fn display_mentions_label_and_location() {
        let s = register_site("file.rs:9", "swap_ptr");
        let shown = s.to_string();
        assert!(shown.contains("swap_ptr"));
        assert!(shown.contains("file.rs:9"));
    }
}

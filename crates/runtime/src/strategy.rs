//! The interleaving-exploration extension point.
//!
//! The runtime calls the registered [`InterleaveStrategy`] around every PM
//! access; `pmrace-sched` provides the paper's conditional-wait scheduler
//! (Fig. 6) and the delay-injection baseline. The trait lives here so the
//! scheduler crate can depend on the runtime without a cycle.

use pmrace_pmem::ThreadId;

use crate::Site;

/// Everything a strategy may inspect about an imminent PM access.
pub struct AccessCtx<'a> {
    /// Pool offset of the access.
    pub off: u64,
    /// Access length in bytes.
    pub len: usize,
    /// Instruction site.
    pub site: Site,
    /// Executing thread.
    pub tid: ThreadId,
    /// Returns `true` when the campaign is cancelled (deadline/halt); any
    /// strategy wait loop must poll this and bail out promptly.
    pub cancelled: &'a dyn Fn() -> bool,
}

impl std::fmt::Debug for AccessCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessCtx")
            .field("off", &self.off)
            .field("len", &self.len)
            .field("site", &self.site)
            .field("tid", &self.tid)
            .finish_non_exhaustive()
    }
}

/// Hook points around instrumented PM accesses.
///
/// All methods default to no-ops so strategies implement only what they
/// need. Implementations must be fast and must never block without polling
/// `ctx.cancelled`.
pub trait InterleaveStrategy: Send + Sync {
    /// Human-readable name for logs and experiment tables.
    fn name(&self) -> &'static str;

    /// `true` when this strategy installs no hooks at all (the no-op
    /// default). Views skip hook dispatch — including the strategy
    /// `RwLock`/`Arc` round trip — entirely for passive strategies, which is
    /// the common case for plain coverage runs and benchmarks.
    fn is_passive(&self) -> bool {
        false
    }

    /// Called before a PM load (the paper injects `cond_wait` here).
    fn before_load(&self, ctx: &AccessCtx<'_>) {
        let _ = ctx;
    }

    /// Called before a PM store.
    fn before_store(&self, ctx: &AccessCtx<'_>) {
        let _ = ctx;
    }

    /// Called after a PM store completes but **before** the program reaches
    /// its flush — the paper fires `cond_signal` and stalls the writer here
    /// so readers can observe the not-yet-persisted value.
    fn after_store(&self, ctx: &AccessCtx<'_>) {
        let _ = ctx;
    }

    /// Called after a `cas_u64` that did **not** swap, with the number of
    /// consecutive failures this thread has accumulated at this site
    /// (`attempt` starts at 1 and resets on success or site change). A
    /// failed CAS is the natural yield point of a lock-free retry loop: the
    /// thread has just observed the word and is about to re-read it, so a
    /// scheduler can interpose another thread's store *between* the CAS read
    /// and the retry — the interleaving family lock-based targets never
    /// exhibit. Implementations must bound how long they stall here
    /// (`attempt` grows without limit during a retry storm) and must poll
    /// `ctx.cancelled` in any wait loop.
    fn on_cas_fail(&self, ctx: &AccessCtx<'_>, attempt: u32) {
        let _ = (ctx, attempt);
    }

    /// Called when a driver thread finished its operation sequence.
    /// Schedulers use this to track how many threads are still live (the
    /// "all threads block" detection of Fig. 6 is over live threads).
    fn thread_done(&self, tid: ThreadId) {
        let _ = tid;
    }

    /// Called once when a campaign ends (threads joined); strategies persist
    /// cross-campaign state (e.g. sync-point skip counts) here.
    fn campaign_end(&self) {}
}

/// Strategy that schedules nothing: plain multi-run fuzzing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopStrategy;

impl InterleaveStrategy for NoopStrategy {
    fn name(&self) -> &'static str {
        "none"
    }

    fn is_passive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_strategy_is_inert() {
        let s = NoopStrategy;
        assert_eq!(s.name(), "none");
        let cancelled = || false;
        let ctx = AccessCtx {
            off: 0,
            len: 8,
            site: crate::site!("x"),
            tid: ThreadId(0),
            cancelled: &cancelled,
        };
        s.before_load(&ctx);
        s.before_store(&ctx);
        s.after_store(&ctx);
        s.on_cas_fail(&ctx, 1);
        s.campaign_end();
        assert!(format!("{ctx:?}").contains("off"));
    }
}

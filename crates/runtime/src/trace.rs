//! Access-trace recording: the event history attached to bug reports.
//!
//! The paper's reports carry stack traces; since our instruction sites are
//! already symbolic, the equivalent diagnostic is the *recent PM event
//! history* around a detection — which thread did what, in which order,
//! right before the inconsistency. The session keeps per-thread bounded
//! rings ([`TraceBuffers`]) stamped from one global sequence counter, and a
//! detection merges them into the snapshot attached to each
//! [`InconsistencyRecord`](crate::report::InconsistencyRecord). Per-thread
//! rings mean concurrent target threads append to disjoint locks instead of
//! serializing on one shared ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use pmrace_pmem::ThreadId;

use crate::{site_label, Site};

/// Kind of PM access in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Regular load.
    Load,
    /// Regular (cached) store.
    Store,
    /// Non-temporal store.
    NtStore,
    /// Cache-line write-back.
    Clwb,
    /// Store fence.
    Sfence,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceKind::Load => "load",
            TraceKind::Store => "store",
            TraceKind::NtStore => "ntstore",
            TraceKind::Clwb => "clwb",
            TraceKind::Sfence => "sfence",
        };
        f.write_str(s)
    }
}

/// One recorded PM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic index within the session.
    pub seq: u64,
    /// Executing thread.
    pub tid: ThreadId,
    /// Access kind.
    pub kind: TraceKind,
    /// Instruction site.
    pub site: Site,
    /// Pool offset (0 for `sfence`).
    pub off: u64,
    /// Access length in bytes (0 for `sfence`).
    pub len: usize,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:<5} {} {:<7} {:#08x}+{:<3} {}",
            self.seq,
            self.tid,
            self.kind,
            self.off,
            self.len,
            site_label(self.site),
        )
    }
}

/// Bounded ring of recent PM events.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
}

impl TraceRing {
    /// Ring holding at most `capacity` events (0 disables recording).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
        }
    }

    /// `true` when recording is disabled.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Append a pre-stamped event (dropping the oldest beyond capacity).
    fn push_event(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
    }

    /// Record one event (dropping the oldest beyond capacity).
    pub fn push(&mut self, tid: ThreadId, kind: TraceKind, site: Site, off: u64, len: usize) {
        if self.capacity == 0 {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_event(TraceEvent {
            seq,
            tid,
            kind,
            site,
            off,
            len,
        });
    }

    /// Snapshot the most recent `n` events, oldest first.
    #[must_use]
    pub fn snapshot(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }

    /// Total events recorded (including dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }
}

/// One thread-locally staged event (no seq/tid yet — both are assigned in
/// bulk when the owning [`ThreadBuffer`](crate::batch::ThreadBuffer) drains
/// through [`TraceBuffers::push_batch`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LocalTraceEvent {
    pub(crate) kind: TraceKind,
    pub(crate) site: Site,
    pub(crate) off: u64,
    pub(crate) len: u32,
}

/// Number of per-thread rings; thread ids are small dense integers assigned
/// per campaign, so `tid % TRACE_RINGS` keeps concurrent threads disjoint.
const TRACE_RINGS: usize = 16;

/// Per-thread trace rings stamped from one global sequence counter.
///
/// Each ring holds `depth` events, so a merged [`TraceBuffers::snapshot`] of
/// up to `depth` events is exact (every thread's newest `depth` events are
/// retained), while concurrent threads only contend on their own ring's lock
/// when recording.
#[derive(Debug)]
pub struct TraceBuffers {
    rings: Box<[Mutex<TraceRing>]>,
    seq: AtomicU64,
    depth: usize,
}

impl TraceBuffers {
    /// Buffers holding `depth` events per thread ring (0 disables
    /// recording).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        TraceBuffers {
            rings: (0..TRACE_RINGS)
                .map(|_| Mutex::new(TraceRing::new(depth)))
                .collect(),
            seq: AtomicU64::new(0),
            depth,
        }
    }

    /// `true` when recording is disabled.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.depth == 0
    }

    /// Record one event into the calling thread's ring.
    pub fn push(&self, tid: ThreadId, kind: TraceKind, site: Site, off: u64, len: usize) {
        if self.depth == 0 {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.rings[tid.0 as usize % TRACE_RINGS]
            .lock()
            .push_event(TraceEvent {
                seq,
                tid,
                kind,
                site,
                off,
                len,
            });
    }

    /// Append one thread's staged events (oldest first across
    /// `head ++ tail`) with a single sequence-block reservation and one
    /// ring lock. `dropped` events that fell out of the bounded local
    /// buffer consume the leading sequence numbers of the block, so
    /// [`TraceBuffers::recorded`] counts every event exactly once.
    pub(crate) fn push_batch(
        &self,
        tid: ThreadId,
        dropped: u64,
        head: &[LocalTraceEvent],
        tail: &[LocalTraceEvent],
    ) {
        if self.depth == 0 {
            return;
        }
        let n = dropped + (head.len() + tail.len()) as u64;
        if n == 0 {
            return;
        }
        let seq0 = self.seq.fetch_add(n, Ordering::Relaxed) + dropped;
        let mut ring = self.rings[tid.0 as usize % TRACE_RINGS].lock();
        for (i, ev) in head.iter().chain(tail).enumerate() {
            ring.push_event(TraceEvent {
                seq: seq0 + i as u64,
                tid,
                kind: ev.kind,
                site: ev.site,
                off: ev.off,
                len: ev.len as usize,
            });
        }
    }

    /// Merge all rings and return the most recent `n` events, oldest first.
    #[must_use]
    pub fn snapshot(&self, n: usize) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in self.rings.iter() {
            all.extend(ring.lock().buf.iter().copied());
        }
        all.sort_unstable_by_key(|e| e.seq);
        let skip = all.len().saturating_sub(n);
        all.drain(..skip);
        all
    }

    /// Total events recorded (including dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// Render a snapshot as the report block.
#[must_use]
pub fn render_trace(events: &[TraceEvent]) -> String {
    if events.is_empty() {
        return "<no trace recorded>".to_owned();
    }
    events
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut ring = TraceRing::new(4);
        let s = site!("trace.test");
        for i in 0..10u64 {
            ring.push(ThreadId(0), TraceKind::Store, s, i * 8, 8);
        }
        assert_eq!(ring.recorded(), 10);
        let snap = ring.snapshot(8);
        assert_eq!(snap.len(), 4, "bounded by capacity");
        assert_eq!(snap[0].seq, 6);
        assert_eq!(snap[3].seq, 9);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut ring = TraceRing::new(0);
        assert!(ring.is_disabled());
        ring.push(ThreadId(0), TraceKind::Load, site!("t2"), 0, 8);
        assert_eq!(ring.recorded(), 0);
        assert!(ring.snapshot(5).is_empty());
    }

    #[test]
    fn render_shows_thread_kind_and_site() {
        let mut ring = TraceRing::new(4);
        ring.push(
            ThreadId(2),
            TraceKind::NtStore,
            site!("trace.render"),
            0x40,
            8,
        );
        let text = render_trace(&ring.snapshot(4));
        assert!(text.contains("t2"));
        assert!(text.contains("ntstore"));
        assert!(text.contains("trace.render"));
        assert_eq!(render_trace(&[]), "<no trace recorded>");
    }

    #[test]
    fn buffers_merge_across_threads_in_global_order() {
        let bufs = TraceBuffers::new(8);
        let s = site!("trace.bufs");
        // Interleave two threads; global seq must order the merge.
        for i in 0..6u64 {
            bufs.push(ThreadId((i % 2) as u32), TraceKind::Store, s, i * 8, 8);
        }
        assert_eq!(bufs.recorded(), 6);
        let snap = bufs.snapshot(10);
        assert_eq!(snap.len(), 6);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(snap[0].tid, ThreadId(0));
        assert_eq!(snap[1].tid, ThreadId(1));
        // A bounded snapshot keeps only the newest events.
        let snap = bufs.snapshot(2);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].seq, 5);
    }

    #[test]
    fn buffers_snapshot_up_to_depth_is_exact_per_thread() {
        let bufs = TraceBuffers::new(4);
        let s = site!("trace.depth");
        // Thread 0 floods its own ring; thread 1's events must survive.
        for i in 0..20u64 {
            bufs.push(ThreadId(0), TraceKind::Load, s, i * 8, 8);
        }
        bufs.push(ThreadId(1), TraceKind::Store, s, 0, 8);
        let snap = bufs.snapshot(4);
        assert_eq!(snap.len(), 4);
        assert!(snap.iter().any(|e| e.tid == ThreadId(1)));
    }

    #[test]
    fn disabled_buffers_record_nothing() {
        let bufs = TraceBuffers::new(0);
        assert!(bufs.is_disabled());
        bufs.push(ThreadId(0), TraceKind::Load, site!("t3"), 0, 8);
        assert_eq!(bufs.recorded(), 0);
        assert!(bufs.snapshot(5).is_empty());
    }
}

//! Access-trace recording: the event history attached to bug reports.
//!
//! The paper's reports carry stack traces; since our instruction sites are
//! already symbolic, the equivalent diagnostic is the *recent PM event
//! history* around a detection — which thread did what, in which order,
//! right before the inconsistency. The session keeps a bounded ring of
//! [`TraceEvent`]s and snapshots it into each
//! [`InconsistencyRecord`](crate::report::InconsistencyRecord).

use std::collections::VecDeque;

use pmrace_pmem::ThreadId;

use crate::{site_label, Site};

/// Kind of PM access in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Regular load.
    Load,
    /// Regular (cached) store.
    Store,
    /// Non-temporal store.
    NtStore,
    /// Cache-line write-back.
    Clwb,
    /// Store fence.
    Sfence,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceKind::Load => "load",
            TraceKind::Store => "store",
            TraceKind::NtStore => "ntstore",
            TraceKind::Clwb => "clwb",
            TraceKind::Sfence => "sfence",
        };
        f.write_str(s)
    }
}

/// One recorded PM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic index within the session.
    pub seq: u64,
    /// Executing thread.
    pub tid: ThreadId,
    /// Access kind.
    pub kind: TraceKind,
    /// Instruction site.
    pub site: Site,
    /// Pool offset (0 for `sfence`).
    pub off: u64,
    /// Access length in bytes (0 for `sfence`).
    pub len: usize,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:<5} {} {:<7} {:#08x}+{:<3} {}",
            self.seq,
            self.tid,
            self.kind,
            self.off,
            self.len,
            site_label(self.site),
        )
    }
}

/// Bounded ring of recent PM events.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
}

impl TraceRing {
    /// Ring holding at most `capacity` events (0 disables recording).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
        }
    }

    /// `true` when recording is disabled.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Record one event (dropping the oldest beyond capacity).
    pub fn push(&mut self, tid: ThreadId, kind: TraceKind, site: Site, off: u64, len: usize) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(TraceEvent {
            seq: self.next_seq,
            tid,
            kind,
            site,
            off,
            len,
        });
        self.next_seq += 1;
    }

    /// Snapshot the most recent `n` events, oldest first.
    #[must_use]
    pub fn snapshot(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }

    /// Total events recorded (including dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }
}

/// Render a snapshot as the report block.
#[must_use]
pub fn render_trace(events: &[TraceEvent]) -> String {
    if events.is_empty() {
        return "<no trace recorded>".to_owned();
    }
    events
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut ring = TraceRing::new(4);
        let s = site!("trace.test");
        for i in 0..10u64 {
            ring.push(ThreadId(0), TraceKind::Store, s, i * 8, 8);
        }
        assert_eq!(ring.recorded(), 10);
        let snap = ring.snapshot(8);
        assert_eq!(snap.len(), 4, "bounded by capacity");
        assert_eq!(snap[0].seq, 6);
        assert_eq!(snap[3].seq, 9);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut ring = TraceRing::new(0);
        assert!(ring.is_disabled());
        ring.push(ThreadId(0), TraceKind::Load, site!("t2"), 0, 8);
        assert_eq!(ring.recorded(), 0);
        assert!(ring.snapshot(5).is_empty());
    }

    #[test]
    fn render_shows_thread_kind_and_site() {
        let mut ring = TraceRing::new(4);
        ring.push(ThreadId(2), TraceKind::NtStore, site!("trace.render"), 0x40, 8);
        let text = render_trace(&ring.snapshot(4));
        assert!(text.contains("t2"));
        assert!(text.contains("ntstore"));
        assert!(text.contains("trace.render"));
        assert_eq!(render_trace(&[]), "<no trace recorded>");
    }
}

//! Extensible PM checkers.
//!
//! The built-in candidate/inconsistency/sync detection is wired directly
//! into the [`Session`](crate::Session) hot path; this module is the
//! *extension* mechanism the paper describes ("PMRace's framework is
//! easy-to-use and extensible for other bug patterns by adding new PM
//! checkers"): implement [`Checker`] and register it with
//! [`Session::add_checker`](crate::Session::add_checker).
//!
//! [`RedundantFlushChecker`] is the worked example from §4.3 — flagging
//! cache-line flushes whose data is already entirely clean (a performance
//! bug; the paper's Bug 4 in P-CLHT is of this flavor).

use pmrace_pmem::{PersistState, ThreadId};

use crate::report::PerfIssueRecord;
use crate::Site;

/// Facts about a PM access offered to extension checkers.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Pool offset.
    pub off: u64,
    /// Length in bytes.
    pub len: usize,
    /// Instruction site.
    pub site: Site,
    /// Executing thread.
    pub tid: ThreadId,
    /// Summarized persistency state of the range *before* the access.
    pub state_before: PersistState,
}

/// An extension checker: receives access events, may emit issues.
///
/// Implementations must be `Send + Sync`; events arrive from multiple
/// target threads concurrently (serialized per event by the session lock).
pub trait Checker: Send + Sync {
    /// Checker name, used in issue records.
    fn name(&self) -> &'static str;

    /// A PM load executed.
    fn on_load(&self, ev: &AccessEvent, out: &mut Vec<PerfIssueRecord>) {
        let _ = (ev, out);
    }

    /// A PM store executed.
    fn on_store(&self, ev: &AccessEvent, out: &mut Vec<PerfIssueRecord>) {
        let _ = (ev, out);
    }

    /// A `clwb` executed over the given range.
    fn on_clwb(&self, ev: &AccessEvent, out: &mut Vec<PerfIssueRecord>) {
        let _ = (ev, out);
    }

    /// An `sfence` executed.
    fn on_sfence(&self, tid: ThreadId, out: &mut Vec<PerfIssueRecord>) {
        let _ = (tid, out);
    }

    /// The campaign ended; `dirty` lists every granule still unpersisted
    /// (offset + metadata of the last store). Missing-flush checkers
    /// report here.
    fn on_campaign_end(
        &self,
        dirty: &[(u64, pmrace_pmem::GranuleMeta)],
        out: &mut Vec<PerfIssueRecord>,
    ) {
        let _ = (dirty, out);
    }
}

/// Flags `clwb` calls whose whole range is already `Clean`: the write-back
/// is unnecessary and costs PM bandwidth.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundantFlushChecker;

impl Checker for RedundantFlushChecker {
    fn name(&self) -> &'static str {
        "redundant-flush"
    }

    fn on_clwb(&self, ev: &AccessEvent, out: &mut Vec<PerfIssueRecord>) {
        if ev.state_before == PersistState::Clean {
            out.push(PerfIssueRecord {
                checker: self.name(),
                site: ev.site,
                off: ev.off,
                len: ev.len,
                what: "flush of already-persisted data (redundant clwb)".to_owned(),
            });
        }
    }
}

/// Reports PM data still unpersisted when the campaign ends, grouped by
/// the store instruction that wrote it — the classic *missing flush*
/// sequential crash-consistency checker (the PMDebugger/AGAMOTTO bug class
/// §6.6 names as complementary to PMRace's concurrency checkers).
///
/// One issue is emitted per distinct writing site, with the count and the
/// first offset of the granules it left dirty.
#[derive(Debug, Clone, Copy, Default)]
pub struct MissingFlushChecker;

impl Checker for MissingFlushChecker {
    fn name(&self) -> &'static str {
        "missing-flush"
    }

    fn on_campaign_end(
        &self,
        dirty: &[(u64, pmrace_pmem::GranuleMeta)],
        out: &mut Vec<PerfIssueRecord>,
    ) {
        let mut by_site: std::collections::BTreeMap<u32, (u64, usize)> =
            std::collections::BTreeMap::new();
        for &(off, meta) in dirty {
            let entry = by_site.entry(meta.tag.0).or_insert((off, 0));
            entry.1 += 1;
        }
        for (site_id, (first_off, count)) in by_site {
            let site = Site::from_id(site_id);
            out.push(PerfIssueRecord {
                checker: self.name(),
                site,
                off: first_off,
                len: count * 8,
                what: format!(
                    "{count} granule(s) written at {} never flushed before the end of execution",
                    crate::site_label(site)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    fn ev(state: PersistState) -> AccessEvent {
        AccessEvent {
            off: 0x40,
            len: 8,
            site: site!("flush"),
            tid: ThreadId(0),
            state_before: state,
        }
    }

    #[test]
    fn redundant_flush_fires_only_on_clean() {
        let c = RedundantFlushChecker;
        let mut out = Vec::new();
        c.on_clwb(&ev(PersistState::Dirty), &mut out);
        assert!(out.is_empty());
        c.on_clwb(&ev(PersistState::Clean), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].checker, "redundant-flush");
        assert!(out[0].to_string().contains("redundant"));
    }

    #[test]
    fn missing_flush_groups_by_writing_site() {
        use pmrace_pmem::{GranuleMeta, PersistState, SiteTag};
        let c = MissingFlushChecker;
        let s1 = crate::site::register_site("t:1", "writer_a");
        let s2 = crate::site::register_site("t:2", "writer_b");
        let meta = |tag: u32| GranuleMeta {
            state: PersistState::Dirty,
            writer: ThreadId(0),
            tag: SiteTag(tag),
            seq: 1,
        };
        let dirty = vec![
            (64, meta(s1.id())),
            (72, meta(s1.id())),
            (128, meta(s2.id())),
        ];
        let mut out = Vec::new();
        c.on_campaign_end(&dirty, &mut out);
        assert_eq!(out.len(), 2);
        let a = out.iter().find(|i| i.what.contains("writer_a")).unwrap();
        assert_eq!(a.len, 16);
        assert_eq!(a.off, 64);
        let b = out.iter().find(|i| i.what.contains("writer_b")).unwrap();
        assert_eq!(b.len, 8);
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Named;
        impl Checker for Named {
            fn name(&self) -> &'static str {
                "named"
            }
        }
        let c = Named;
        let mut out = Vec::new();
        c.on_load(&ev(PersistState::Clean), &mut out);
        c.on_store(&ev(PersistState::Clean), &mut out);
        c.on_sfence(ThreadId(0), &mut out);
        assert!(out.is_empty());
    }
}

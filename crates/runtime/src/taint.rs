//! Value-level dynamic taint, the DataFlowSanitizer substitute.
//!
//! A taint label is the id of a *PM inconsistency candidate* (a load that
//! observed non-persisted data, §4.3). Values loaded from PM carry a
//! [`TaintSet`]; arithmetic and concatenation union the sets, so by the time
//! a value (or a computed address) reaches a PM store, the store hook can
//! tell exactly which candidate reads it depends on — the two data-flow
//! classes the paper checks (tainted *contents* and tainted *addresses*).

use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Rem, Shl, Shr, Sub};

/// Set of candidate ids a value depends on. Small and usually empty; stored
/// as a sorted, deduplicated vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TaintSet {
    labels: Vec<u32>,
}

impl TaintSet {
    /// The empty set (untainted).
    #[must_use]
    pub fn empty() -> Self {
        TaintSet::default()
    }

    /// A singleton set.
    #[must_use]
    pub fn single(label: u32) -> Self {
        TaintSet {
            labels: vec![label],
        }
    }

    /// `true` when the value carries no taint.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, label: u32) -> bool {
        self.labels.binary_search(&label).is_ok()
    }

    /// Union in-place.
    pub fn union_with(&mut self, other: &TaintSet) {
        if other.labels.is_empty() {
            return;
        }
        for &l in &other.labels {
            if let Err(pos) = self.labels.binary_search(&l) {
                self.labels.insert(pos, l);
            }
        }
    }

    /// Union, producing a new set.
    #[must_use]
    pub fn union(&self, other: &TaintSet) -> TaintSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Add one label.
    pub fn insert(&mut self, label: u32) {
        if let Err(pos) = self.labels.binary_search(&label) {
            self.labels.insert(pos, label);
        }
    }

    /// Iterate over labels in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.labels.iter().copied()
    }
}

impl fmt::Display for TaintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "c{l}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u32> for TaintSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = TaintSet::empty();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

/// A tainted 64-bit word: the unit of PM data flow in target code.
///
/// Equality and ordering compare the *value* only — taint is metadata, and
/// target algorithms must behave identically whether or not data happens to
/// be tainted (the instrumentation must not perturb control flow).
#[derive(Debug, Clone, Default)]
pub struct TU64 {
    val: u64,
    taint: TaintSet,
}

impl TU64 {
    /// Wrap a value with explicit taint.
    #[must_use]
    pub fn with_taint(val: u64, taint: TaintSet) -> Self {
        TU64 { val, taint }
    }

    /// The numeric value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.val
    }

    /// The taint labels.
    #[must_use]
    pub fn taint(&self) -> &TaintSet {
        &self.taint
    }

    /// `true` if the value depends on non-persisted data.
    #[must_use]
    pub fn is_tainted(&self) -> bool {
        !self.taint.is_empty()
    }

    /// Map the numeric value, keeping taint (e.g. masking bits).
    #[must_use]
    pub fn map<F: FnOnce(u64) -> u64>(self, f: F) -> TU64 {
        TU64 {
            val: f(self.val),
            taint: self.taint,
        }
    }
}

impl From<u64> for TU64 {
    fn from(val: u64) -> Self {
        TU64 {
            val,
            taint: TaintSet::empty(),
        }
    }
}

impl PartialEq for TU64 {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val
    }
}
impl Eq for TU64 {}

impl PartialEq<u64> for TU64 {
    fn eq(&self, other: &u64) -> bool {
        self.val == *other
    }
}

impl PartialOrd for TU64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.val.cmp(&other.val))
    }
}

impl PartialOrd<u64> for TU64 {
    fn partial_cmp(&self, other: &u64) -> Option<std::cmp::Ordering> {
        Some(self.val.cmp(other))
    }
}

impl fmt::Display for TU64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.taint.is_empty() {
            write!(f, "{}", self.val)
        } else {
            write!(f, "{}~{}", self.val, self.taint)
        }
    }
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for TU64 {
            type Output = TU64;
            fn $method(self, rhs: TU64) -> TU64 {
                TU64 {
                    val: self.val $op rhs.val,
                    taint: self.taint.union(&rhs.taint),
                }
            }
        }
        impl $trait<u64> for TU64 {
            type Output = TU64;
            fn $method(self, rhs: u64) -> TU64 {
                TU64 { val: self.val $op rhs, taint: self.taint }
            }
        }
        impl $trait<TU64> for u64 {
            type Output = TU64;
            fn $method(self, rhs: TU64) -> TU64 {
                TU64 { val: self $op rhs.val, taint: rhs.taint }
            }
        }
    };
}

impl_bin_op!(Add, add, +);
impl_bin_op!(Sub, sub, -);
impl_bin_op!(Mul, mul, *);
impl_bin_op!(Rem, rem, %);
impl_bin_op!(BitAnd, bitand, &);
impl_bin_op!(BitOr, bitor, |);
impl_bin_op!(BitXor, bitxor, ^);
impl_bin_op!(Shl, shl, <<);
impl_bin_op!(Shr, shr, >>);

/// A tainted byte buffer (item values, keys). One taint set covers the whole
/// buffer — byte-precise shadow memory is unnecessary at the granularity the
/// checkers reason about.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TBytes {
    bytes: Vec<u8>,
    taint: TaintSet,
}

impl TBytes {
    /// Wrap bytes with explicit taint.
    #[must_use]
    pub fn with_taint(bytes: Vec<u8>, taint: TaintSet) -> Self {
        TBytes { bytes, taint }
    }

    /// The raw bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Buffer length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The taint labels.
    #[must_use]
    pub fn taint(&self) -> &TaintSet {
        &self.taint
    }

    /// `true` if the contents depend on non-persisted data.
    #[must_use]
    pub fn is_tainted(&self) -> bool {
        !self.taint.is_empty()
    }

    /// Concatenate, unioning taint.
    #[must_use]
    pub fn concat(&self, other: &TBytes) -> TBytes {
        let mut bytes = self.bytes.clone();
        bytes.extend_from_slice(&other.bytes);
        TBytes {
            bytes,
            taint: self.taint.union(&other.taint),
        }
    }

    /// Consume, returning the raw bytes (dropping taint — only for use at
    /// program boundaries the checkers have already inspected).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl From<Vec<u8>> for TBytes {
    fn from(bytes: Vec<u8>) -> Self {
        TBytes {
            bytes,
            taint: TaintSet::empty(),
        }
    }
}

impl From<&[u8]> for TBytes {
    fn from(bytes: &[u8]) -> Self {
        TBytes {
            bytes: bytes.to_vec(),
            taint: TaintSet::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_is_sorted_and_deduped() {
        let mut a = TaintSet::single(5);
        a.union_with(&TaintSet::single(2));
        a.union_with(&TaintSet::single(5));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 5]);
        assert!(a.contains(2));
        assert!(!a.contains(3));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_iterator_collects() {
        let s: TaintSet = [3u32, 1, 3, 2].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn arithmetic_propagates_taint() {
        let a = TU64::with_taint(10, TaintSet::single(1));
        let b = TU64::with_taint(4, TaintSet::single(2));
        let c = a + b;
        assert_eq!(c.value(), 14);
        assert!(c.taint().contains(1) && c.taint().contains(2));
        let d = c.clone() * 2u64;
        assert_eq!(d.value(), 28);
        assert_eq!(d.taint(), c.taint());
        let e = 100u64 - d;
        assert_eq!(e.value(), 72);
        assert!(e.is_tainted());
    }

    #[test]
    fn bit_ops_and_shifts_propagate_taint() {
        let a = TU64::with_taint(0b1100, TaintSet::single(9));
        assert_eq!((a.clone() & 0b0100u64).value(), 0b0100);
        assert_eq!((a.clone() | 1u64).value(), 0b1101);
        assert_eq!((a.clone() ^ 0b1111u64).value(), 0b0011);
        assert_eq!((a.clone() << 1u64).value(), 0b11000);
        assert_eq!((a.clone() >> 2u64).value(), 0b11);
        assert_eq!((a % 5u64).value(), 2);
    }

    #[test]
    fn comparisons_ignore_taint() {
        let a = TU64::with_taint(7, TaintSet::single(1));
        let b = TU64::from(7);
        assert_eq!(a, b);
        assert_eq!(a, 7u64);
        assert!(a > 6u64);
        assert!(a < 8u64);
    }

    #[test]
    fn map_keeps_taint() {
        let a = TU64::with_taint(0xff00, TaintSet::single(3));
        let b = a.map(|v| v >> 8);
        assert_eq!(b.value(), 0xff);
        assert!(b.taint().contains(3));
    }

    #[test]
    fn tbytes_concat_unions_taint() {
        let a = TBytes::with_taint(vec![1, 2], TaintSet::single(1));
        let b = TBytes::with_taint(vec![3], TaintSet::single(2));
        let c = a.concat(&b);
        assert_eq!(c.bytes(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(c.taint().contains(1) && c.taint().contains(2));
        assert!(!TBytes::from(vec![9u8]).is_tainted());
    }

    #[test]
    fn display_shows_taint() {
        let a = TU64::with_taint(5, TaintSet::single(8));
        assert_eq!(a.to_string(), "5~{c8}");
        assert_eq!(TU64::from(5).to_string(), "5");
    }
}

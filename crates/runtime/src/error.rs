//! Runtime error type.

use std::error::Error;
use std::fmt;

use pmrace_pmem::PmemError;

/// Errors surfaced to instrumented target code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// Underlying PM substrate error.
    Pmem(PmemError),
    /// The campaign deadline elapsed; the executing thread must unwind.
    /// This is how the harness breaks targets out of spin loops when a
    /// seeded bug (e.g. a never-released persistent lock) causes a hang.
    Timeout,
    /// The session was cancelled (another thread hit a fatal condition).
    Halted,
    /// A filesystem operation failed (corpus/repro stores); carries the
    /// underlying cause so users see *why* instead of a bare halt.
    Io(String),
    /// A target name did not resolve against the target registry. The
    /// message is pre-built by the resolver (`pmrace-api`) and names the
    /// targets that *are* registered, so the user sees their options
    /// instead of a bare failure.
    UnknownTarget(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Pmem(e) => write!(f, "pm substrate error: {e}"),
            RtError::Timeout => write!(f, "campaign deadline elapsed"),
            RtError::Halted => write!(f, "session halted"),
            RtError::Io(msg) => write!(f, "io error: {msg}"),
            RtError::UnknownTarget(msg) => write!(f, "unknown target {msg}"),
        }
    }
}

impl Error for RtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RtError::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmemError> for RtError {
    fn from(e: PmemError) -> Self {
        RtError::Pmem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_source() {
        let e: RtError = PmemError::TxClosed.into();
        assert!(matches!(e, RtError::Pmem(_)));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&RtError::Timeout).is_none());
        assert!(!RtError::Halted.to_string().is_empty());
    }

    #[test]
    fn unknown_target_names_the_alternatives() {
        let e = RtError::UnknownTarget("\"nope\"; registered targets: P-CLHT, CCEH".to_owned());
        let msg = e.to_string();
        assert!(msg.starts_with("unknown target"), "{msg}");
        assert!(msg.contains("nope") && msg.contains("P-CLHT"), "{msg}");
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn io_variant_carries_the_cause() {
        let e = RtError::Io("corpus dir /tmp/x: permission denied".to_owned());
        assert!(e.to_string().contains("permission denied"));
        assert!(Error::source(&e).is_none());
    }
}

//! Coverage metrics: PM alias-pair coverage (§4.2.1) and branch coverage.
//!
//! A *PM alias pair* is two back-to-back accesses to the same PM address by
//! different threads, identified by `(instruction, persistency-state)` of
//! both sides. New pairs indicate unexplored PM-relevant interleavings and
//! are the fuzzer's primary feedback signal; conventional branch coverage is
//! the secondary signal (§4.2.3).

use std::collections::HashMap;

use pmrace_pmem::ThreadId;

use crate::Site;

/// Number of bits in each coverage bitmap (the paper keeps the bitmap in
/// shared memory; 64 Ki entries matches AFL-style maps).
pub const MAP_BITS: usize = 1 << 16;

/// Whether an access observed persisted or unpersisted data — the
/// persistency component `P` of the paper's access tuple `(I, P, T)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persistency {
    /// All bytes clean.
    Persisted,
    /// Some byte dirty or queued.
    Unpersisted,
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    site: Site,
    tid: ThreadId,
    persistency: Persistency,
}

/// Per-campaign (and, merged, global) coverage state.
#[derive(Debug, Clone)]
pub struct CoverageMap {
    alias: Vec<u8>,
    branch: Vec<u8>,
    alias_count: usize,
    branch_count: usize,
    last: HashMap<u64, LastAccess>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// Fresh, empty coverage state.
    #[must_use]
    pub fn new() -> Self {
        CoverageMap {
            alias: vec![0; MAP_BITS / 8],
            branch: vec![0; MAP_BITS / 8],
            alias_count: 0,
            branch_count: 0,
            last: HashMap::new(),
        }
    }

    fn mix(a: u32, b: u32, c: u32, d: u32) -> usize {
        let mut h = 0x9e37_79b9u64;
        for v in [a, b, c, d] {
            h ^= u64::from(v).wrapping_add(0x9e37_79b9).wrapping_add(h << 6) ^ (h >> 2);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h as usize) % MAP_BITS
    }

    fn set_bit(map: &mut [u8], idx: usize) -> bool {
        let (byte, bit) = (idx / 8, idx % 8);
        let mask = 1u8 << bit;
        let new = map[byte] & mask == 0;
        map[byte] |= mask;
        new
    }

    fn get_bit(map: &[u8], idx: usize) -> bool {
        map[idx / 8] & (1 << (idx % 8)) != 0
    }

    /// Record a PM access to `granule`; returns `true` when it completes a
    /// *new* PM alias pair (same address, different thread than the previous
    /// access, pair shape unseen so far).
    pub fn record_access(
        &mut self,
        granule: u64,
        site: Site,
        tid: ThreadId,
        persistency: Persistency,
    ) -> bool {
        let prev = self.last.insert(
            granule,
            LastAccess {
                site,
                tid,
                persistency,
            },
        );
        let Some(prev) = prev else { return false };
        if prev.tid == tid {
            return false;
        }
        let idx = Self::mix(
            prev.site.id(),
            prev.persistency as u32,
            site.id(),
            persistency as u32,
        );
        let new = Self::set_bit(&mut self.alias, idx);
        if new {
            self.alias_count += 1;
        }
        new
    }

    /// Record a branch/basic-block execution; returns `true` when new.
    pub fn record_branch(&mut self, site: Site) -> bool {
        let idx = Self::mix(site.id(), 0, 0, 1);
        let new = Self::set_bit(&mut self.branch, idx);
        if new {
            self.branch_count += 1;
        }
        new
    }

    /// Number of distinct PM alias pairs observed.
    #[must_use]
    pub fn alias_pairs(&self) -> usize {
        self.alias_count
    }

    /// Number of distinct branches observed.
    #[must_use]
    pub fn branches(&self) -> usize {
        self.branch_count
    }

    /// Merge another map into this one (fuzzer's global accumulation).
    /// Returns `(new_alias_bits, new_branch_bits)` contributed by `other`.
    pub fn merge_from(&mut self, other: &CoverageMap) -> (usize, usize) {
        let mut new_alias = 0;
        let mut new_branch = 0;
        for idx in 0..MAP_BITS {
            if Self::get_bit(&other.alias, idx) && Self::set_bit(&mut self.alias, idx) {
                new_alias += 1;
            }
            if Self::get_bit(&other.branch, idx) && Self::set_bit(&mut self.branch, idx) {
                new_branch += 1;
            }
        }
        self.alias_count += new_alias;
        self.branch_count += new_branch;
        (new_alias, new_branch)
    }

    /// Forget per-address last-access state (campaign boundary) while
    /// keeping accumulated bitmaps.
    pub fn reset_last_access(&mut self) {
        self.last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn same_thread_back_to_back_is_not_a_pair() {
        let mut cov = CoverageMap::new();
        let s = site!("a");
        assert!(!cov.record_access(1, s, T0, Persistency::Persisted));
        assert!(!cov.record_access(1, s, T0, Persistency::Persisted));
        assert_eq!(cov.alias_pairs(), 0);
    }

    #[test]
    fn cross_thread_pair_counts_once() {
        let mut cov = CoverageMap::new();
        let (w, r) = (site!("w"), site!("r"));
        assert!(!cov.record_access(1, w, T0, Persistency::Unpersisted));
        assert!(cov.record_access(1, r, T1, Persistency::Unpersisted));
        assert_eq!(cov.alias_pairs(), 1);
        // Alternating again: the reverse pair (r -> w) is new once, then
        // both shapes are saturated.
        assert!(cov.record_access(1, w, T0, Persistency::Unpersisted));
        assert!(!cov.record_access(1, r, T1, Persistency::Unpersisted));
        assert!(!cov.record_access(1, w, T0, Persistency::Unpersisted));
        assert_eq!(cov.alias_pairs(), 2);
    }

    #[test]
    fn persistency_state_distinguishes_pairs() {
        let mut cov = CoverageMap::new();
        let (w, r) = (site!("w2"), site!("r2"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        assert!(cov.record_access(1, r, T1, Persistency::Unpersisted)); // (w,U)->(r,U)
        cov.record_access(1, w, T0, Persistency::Persisted); // (r,U)->(w,P)
        assert!(
            cov.record_access(1, r, T1, Persistency::Persisted), // (w,P)->(r,P)
            "same instructions, different persistency: new pair"
        );
        assert_eq!(cov.alias_pairs(), 3);
    }

    #[test]
    fn different_addresses_are_independent() {
        let mut cov = CoverageMap::new();
        let (w, r) = (site!("w3"), site!("r3"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        cov.record_access(2, r, T1, Persistency::Unpersisted); // first access to granule 2
        assert_eq!(cov.alias_pairs(), 0);
    }

    #[test]
    fn branch_coverage_counts_distinct_sites() {
        let mut cov = CoverageMap::new();
        let (a, b) = (site!("bb1"), site!("bb2"));
        assert!(cov.record_branch(a));
        assert!(!cov.record_branch(a));
        assert!(cov.record_branch(b));
        assert_eq!(cov.branches(), 2);
    }

    #[test]
    fn merge_reports_only_new_bits() {
        let mut global = CoverageMap::new();
        let mut s1 = CoverageMap::new();
        let (w, r) = (site!("w4"), site!("r4"));
        s1.record_access(1, w, T0, Persistency::Unpersisted);
        s1.record_access(1, r, T1, Persistency::Unpersisted);
        s1.record_branch(w);
        let (na, nb) = global.merge_from(&s1);
        assert_eq!((na, nb), (1, 1));
        let (na, nb) = global.merge_from(&s1);
        assert_eq!((na, nb), (0, 0));
        assert_eq!(global.alias_pairs(), 1);
        assert_eq!(global.branches(), 1);
    }

    #[test]
    fn reset_last_access_keeps_bitmaps() {
        let mut cov = CoverageMap::new();
        let (w, r) = (site!("w5"), site!("r5"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        cov.record_access(1, r, T1, Persistency::Unpersisted);
        cov.reset_last_access();
        assert_eq!(cov.alias_pairs(), 1);
        // After reset, the first access is "first touch" again.
        assert!(!cov.record_access(1, r, T1, Persistency::Unpersisted));
    }
}

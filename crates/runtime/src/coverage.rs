//! Coverage metrics: PM alias-pair coverage (§4.2.1) and branch coverage.
//!
//! A *PM alias pair* is two back-to-back accesses to the same PM address by
//! different threads, identified by `(instruction, persistency-state)` of
//! both sides. New pairs indicate unexplored PM-relevant interleavings and
//! are the fuzzer's primary feedback signal; conventional branch coverage is
//! the secondary signal (§4.2.3).
//!
//! The map is fully lock-free: bitmap bits are set with `AtomicU64::fetch_or`
//! and counted with atomic counters, and the per-address last-access table is
//! a direct-mapped array of packed `AtomicU64` slots updated with a single
//! `swap`, so every method takes `&self` and target threads never serialize
//! on a coverage lock (the paper keeps its bitmap in shared memory for the
//! same reason). Direct mapping trades exactness for speed: two granules that
//! collide on a slot evict each other's last access (losing, never
//! fabricating, an alias pair) — with `LAST_SLOTS` slots indexed by the low
//! granule bits, granules of pools up to `LAST_SLOTS * 8` bytes never
//! collide at all, and the slot's tag bits keep colliding granules apart.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pmrace_pmem::ThreadId;

use crate::Site;

/// Number of bits in each coverage bitmap (the paper keeps the bitmap in
/// shared memory; 64 Ki entries matches AFL-style maps).
pub const MAP_BITS: usize = 1 << 16;

/// log2 of the last-access slot count.
const LAST_SLOT_BITS: u32 = 15;
/// Slots in the direct-mapped last-access table.
const LAST_SLOTS: usize = 1 << LAST_SLOT_BITS;
/// Marker bit distinguishing an occupied slot from the zeroed initial state.
const LAST_PRESENT: u64 = 1 << 63;

/// Whether an access observed persisted or unpersisted data — the
/// persistency component `P` of the paper's access tuple `(I, P, T)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persistency {
    /// All bytes clean.
    Persisted,
    /// Some byte dirty or queued.
    Unpersisted,
}

/// One CPU cache line of last-access slots. Adjacent granules map to
/// adjacent slots, so one `LastLine` covers exactly one PM cache line
/// (8 granules); the 64-byte alignment pins each block to its own CPU
/// cache line, so threads working disjoint PM lines never false-share a
/// coverage line (an unaligned `Box<[AtomicU64]>` lets blocks straddle
/// two CPU lines, coupling neighbouring PM lines under contention).
#[repr(align(64))]
#[derive(Debug, Default)]
struct LastLine([AtomicU64; 8]);

/// Packs one last-access record into a slot word:
/// `[63] present | [62:47] granule tag | [46:17] site | [16:1] tid |
/// [0] persistency`. The tag is the granule bits above the slot index, so a
/// `(slot, tag)` pair identifies the granule exactly for any pool below
/// 16 GiB.
fn pack_last(granule: u64, site: Site, tid: ThreadId, persistency: Persistency) -> u64 {
    LAST_PRESENT
        | (((granule >> LAST_SLOT_BITS) & 0xFFFF) << 47)
        | ((u64::from(site.id()) & 0x3FFF_FFFF) << 17)
        | ((u64::from(tid.0) & 0xFFFF) << 1)
        | (persistency as u64)
}

/// Per-campaign (and, merged, global) coverage state.
///
/// Bitmaps are stored as `AtomicU64` *words*, not bytes: `merge_from` — run
/// once per campaign by every fleet worker — walks 1 Ki words per map
/// instead of 8 Ki bytes, and `new`/`clone` touch an eighth of the
/// allocations. `set_bit` is the same single `fetch_or` either way.
#[derive(Debug)]
pub struct CoverageMap {
    alias: Box<[AtomicU64]>,
    branch: Box<[AtomicU64]>,
    alias_count: AtomicUsize,
    branch_count: AtomicUsize,
    last: Box<[LastLine]>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl Clone for CoverageMap {
    fn clone(&self) -> Self {
        let copy_bits = |src: &[AtomicU64]| -> Box<[AtomicU64]> {
            src.iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect()
        };
        CoverageMap {
            alias: copy_bits(&self.alias),
            branch: copy_bits(&self.branch),
            alias_count: AtomicUsize::new(self.alias_count.load(Ordering::Relaxed)),
            branch_count: AtomicUsize::new(self.branch_count.load(Ordering::Relaxed)),
            last: self
                .last
                .iter()
                .map(|line| {
                    LastLine(std::array::from_fn(|i| {
                        AtomicU64::new(line.0[i].load(Ordering::Relaxed))
                    }))
                })
                .collect(),
        }
    }
}

impl CoverageMap {
    /// Fresh, empty coverage state.
    #[must_use]
    pub fn new() -> Self {
        let zeroed =
            || -> Box<[AtomicU64]> { (0..MAP_BITS / 64).map(|_| AtomicU64::new(0)).collect() };
        CoverageMap {
            alias: zeroed(),
            branch: zeroed(),
            alias_count: AtomicUsize::new(0),
            branch_count: AtomicUsize::new(0),
            last: (0..LAST_SLOTS / 8).map(|_| LastLine::default()).collect(),
        }
    }

    fn mix(a: u32, b: u32, c: u32, d: u32) -> usize {
        let mut h = 0x9e37_79b9u64;
        for v in [a, b, c, d] {
            h ^= u64::from(v).wrapping_add(0x9e37_79b9).wrapping_add(h << 6) ^ (h >> 2);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h as usize) % MAP_BITS
    }

    /// Atomically set bit `idx`; `true` when it was previously clear.
    fn set_bit(map: &[AtomicU64], idx: usize) -> bool {
        let (word, bit) = (idx / 64, idx % 64);
        let mask = 1u64 << bit;
        map[word].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Record a PM access to `granule`; returns `true` when it completes a
    /// *new* PM alias pair (same address, different thread than the previous
    /// access, pair shape unseen so far).
    pub fn record_access(
        &self,
        granule: u64,
        site: Site,
        tid: ThreadId,
        persistency: Persistency,
    ) -> bool {
        let slot = (granule & (LAST_SLOTS as u64 - 1)) as usize;
        let packed = pack_last(granule, site, tid, persistency);
        let prev = self.last[slot >> 3].0[slot & 7].swap(packed, Ordering::Relaxed);
        if prev & LAST_PRESENT == 0 || (prev ^ packed) >> 47 != 0 {
            // Empty slot, or a colliding granule got evicted: no pair.
            return false;
        }
        if (prev >> 1) & 0xFFFF == (packed >> 1) & 0xFFFF {
            return false; // same thread twice: not an alias pair
        }
        let idx = Self::mix(
            ((prev >> 17) & 0x3FFF_FFFF) as u32,
            (prev & 1) as u32,
            site.id() & 0x3FFF_FFFF,
            persistency as u32,
        );
        let new = Self::set_bit(&self.alias, idx);
        if new {
            self.alias_count.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Record a branch/basic-block execution; returns `true` when new.
    pub fn record_branch(&self, site: Site) -> bool {
        let idx = Self::mix(site.id(), 0, 0, 1);
        let new = Self::set_bit(&self.branch, idx);
        if new {
            self.branch_count.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Number of distinct PM alias pairs observed.
    #[must_use]
    pub fn alias_pairs(&self) -> usize {
        self.alias_count.load(Ordering::Relaxed)
    }

    /// Both coverage counters `(alias_pairs, branches)` in one call — the
    /// read side of the fleet's shared frontier. Each counter is a single
    /// relaxed atomic load, so concurrent fuzzing workers sample the global
    /// frontier without any lock (the pair is not a consistent cut across
    /// both counters, which a level gauge does not need).
    #[must_use]
    pub fn counts(&self) -> (usize, usize) {
        (
            self.alias_count.load(Ordering::Relaxed),
            self.branch_count.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct branches observed.
    #[must_use]
    pub fn branches(&self) -> usize {
        self.branch_count.load(Ordering::Relaxed)
    }

    /// Merge another map into this one (fuzzer's global accumulation).
    /// Returns `(new_alias_bits, new_branch_bits)` contributed by `other`.
    ///
    /// Wait-free: bitmap bytes are OR-ed in with `fetch_or` and the
    /// counters bumped atomically, so a fleet of fuzzing workers can use
    /// one `CoverageMap` as their shared coverage frontier and merge
    /// per-campaign maps concurrently — each worker's return value counts
    /// exactly the bits *it* contributed first, never double-counting a
    /// bit that raced in from a sibling worker.
    pub fn merge_from(&self, other: &CoverageMap) -> (usize, usize) {
        let or_in = |dst: &[AtomicU64], src: &[AtomicU64]| -> usize {
            let mut new = 0usize;
            for (d, s) in dst.iter().zip(src.iter()) {
                let bits = s.load(Ordering::Relaxed);
                if bits != 0 {
                    let old = d.fetch_or(bits, Ordering::Relaxed);
                    new += (bits & !old).count_ones() as usize;
                }
            }
            new
        };
        let new_alias = or_in(&self.alias, &other.alias);
        let new_branch = or_in(&self.branch, &other.branch);
        self.alias_count.fetch_add(new_alias, Ordering::Relaxed);
        self.branch_count.fetch_add(new_branch, Ordering::Relaxed);
        (new_alias, new_branch)
    }

    /// Forget per-address last-access state (campaign boundary) while
    /// keeping accumulated bitmaps.
    pub fn reset_last_access(&self) {
        for line in self.last.iter() {
            for slot in line.0.iter() {
                slot.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn same_thread_back_to_back_is_not_a_pair() {
        let cov = CoverageMap::new();
        let s = site!("a");
        assert!(!cov.record_access(1, s, T0, Persistency::Persisted));
        assert!(!cov.record_access(1, s, T0, Persistency::Persisted));
        assert_eq!(cov.alias_pairs(), 0);
    }

    #[test]
    fn cross_thread_pair_counts_once() {
        let cov = CoverageMap::new();
        let (w, r) = (site!("w"), site!("r"));
        assert!(!cov.record_access(1, w, T0, Persistency::Unpersisted));
        assert!(cov.record_access(1, r, T1, Persistency::Unpersisted));
        assert_eq!(cov.alias_pairs(), 1);
        // Alternating again: the reverse pair (r -> w) is new once, then
        // both shapes are saturated.
        assert!(cov.record_access(1, w, T0, Persistency::Unpersisted));
        assert!(!cov.record_access(1, r, T1, Persistency::Unpersisted));
        assert!(!cov.record_access(1, w, T0, Persistency::Unpersisted));
        assert_eq!(cov.alias_pairs(), 2);
    }

    #[test]
    fn persistency_state_distinguishes_pairs() {
        let cov = CoverageMap::new();
        let (w, r) = (site!("w2"), site!("r2"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        assert!(cov.record_access(1, r, T1, Persistency::Unpersisted)); // (w,U)->(r,U)
        cov.record_access(1, w, T0, Persistency::Persisted); // (r,U)->(w,P)
        assert!(
            cov.record_access(1, r, T1, Persistency::Persisted), // (w,P)->(r,P)
            "same instructions, different persistency: new pair"
        );
        assert_eq!(cov.alias_pairs(), 3);
    }

    #[test]
    fn different_addresses_are_independent() {
        let cov = CoverageMap::new();
        let (w, r) = (site!("w3"), site!("r3"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        cov.record_access(2, r, T1, Persistency::Unpersisted); // first access to granule 2
        assert_eq!(cov.alias_pairs(), 0);
    }

    #[test]
    fn branch_coverage_counts_distinct_sites() {
        let cov = CoverageMap::new();
        let (a, b) = (site!("bb1"), site!("bb2"));
        assert!(cov.record_branch(a));
        assert!(!cov.record_branch(a));
        assert!(cov.record_branch(b));
        assert_eq!(cov.branches(), 2);
    }

    #[test]
    fn merge_reports_only_new_bits() {
        let global = CoverageMap::new();
        let s1 = CoverageMap::new();
        let (w, r) = (site!("w4"), site!("r4"));
        s1.record_access(1, w, T0, Persistency::Unpersisted);
        s1.record_access(1, r, T1, Persistency::Unpersisted);
        s1.record_branch(w);
        let (na, nb) = global.merge_from(&s1);
        assert_eq!((na, nb), (1, 1));
        let (na, nb) = global.merge_from(&s1);
        assert_eq!((na, nb), (0, 0));
        assert_eq!(global.alias_pairs(), 1);
        assert_eq!(global.branches(), 1);
    }

    #[test]
    fn concurrent_merges_into_a_shared_frontier_count_each_bit_once() {
        // Fleet contract: N workers merging overlapping campaign maps into
        // one frontier must attribute every new bit to exactly one worker.
        let frontier = CoverageMap::new();
        let local = CoverageMap::new();
        for g in 0..64u64 {
            let (w, r) = (site!("fw"), site!("fr"));
            local.record_access(g, w, T0, Persistency::Unpersisted);
            local.record_access(g, r, T1, Persistency::Unpersisted);
            local.record_branch(if g % 2 == 0 { w } else { r });
        }
        let expect = (local.alias_pairs(), local.branches());
        let totals: Vec<(usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (f, l) = (&frontier, &local);
                    scope.spawn(move || f.merge_from(l))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let sum = totals
            .iter()
            .fold((0, 0), |acc, t| (acc.0 + t.0, acc.1 + t.1));
        assert_eq!(sum, expect, "bits attributed more or less than once");
        assert_eq!(frontier.counts(), expect);
    }

    #[test]
    fn reset_last_access_keeps_bitmaps() {
        let cov = CoverageMap::new();
        let (w, r) = (site!("w5"), site!("r5"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        cov.record_access(1, r, T1, Persistency::Unpersisted);
        cov.reset_last_access();
        assert_eq!(cov.alias_pairs(), 1);
        // After reset, the first access is "first touch" again.
        assert!(!cov.record_access(1, r, T1, Persistency::Unpersisted));
    }

    #[test]
    fn clone_snapshots_counters_and_bits() {
        let cov = CoverageMap::new();
        let (w, r) = (site!("w6"), site!("r6"));
        cov.record_access(1, w, T0, Persistency::Unpersisted);
        cov.record_access(1, r, T1, Persistency::Unpersisted);
        cov.record_branch(w);
        let copy = cov.clone();
        assert_eq!(copy.alias_pairs(), 1);
        assert_eq!(copy.branches(), 1);
        // The copy carries the last-access state (r by T1 was last): a
        // cross-thread follow-up completes a fresh pair shape on the copy...
        assert!(copy.record_access(1, w, T0, Persistency::Persisted));
        // ...without affecting the original.
        assert_eq!(cov.alias_pairs(), 1);
    }

    #[test]
    fn concurrent_recording_counts_each_pair_once() {
        let cov = CoverageMap::new();
        let (w, r) = (site!("cw"), site!("cr"));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cov = &cov;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        let g = 100 + (i % 16);
                        let site = if t % 2 == 0 { w } else { r };
                        let p = if i % 2 == 0 {
                            Persistency::Persisted
                        } else {
                            Persistency::Unpersisted
                        };
                        cov.record_access(g, site, ThreadId(t), p);
                        cov.record_branch(site);
                    }
                });
            }
        });
        // At most |sites|^2 * |persistency|^2 = 16 alias shapes exist.
        assert!(cov.alias_pairs() <= 16, "got {}", cov.alias_pairs());
        assert_eq!(cov.branches(), 2);
    }
}

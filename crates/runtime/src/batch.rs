//! Per-thread epoch batching of instrumentation metadata.
//!
//! Splitting the per-access work by *what it feeds* is what makes the
//! instrumentation tax affordable:
//!
//! - **Detection stays synchronous.** Candidate minting, inconsistency and
//!   sync-update records, and checker hooks decide what the fuzzer reports;
//!   they must observe cross-thread state at the access and still run inline
//!   in the session hooks.
//! - **Feedback and diagnostics are write-combined here.** Alias-pair
//!   coverage, per-granule access statistics, the report trace ring, the PM
//!   event counter, and telemetry deltas only steer the *next* campaign or
//!   decorate reports — they tolerate epoch-granular publication. Each
//!   [`PmView`](crate::PmView) owns one [`ThreadBuffer`]; accesses
//!   accumulate in its granule slots and drain to the shared striped/atomic
//!   session structures only at sync points (CAS, `clwb`, `sfence`,
//!   detection, view drop) — exactly where the scheduler already serializes
//!   threads.
//!
//! The slot array doubles as the granule-local metadata cache: a repeated
//! same-line access hits its slot without touching the shared stripe map at
//! all. Slots form 2-way sets (see [`SETS`]) indexed by the top bits of
//! [`granule_hash`](pmrace_pmem::granule_hash) because raw granule indices
//! are line-aligned and would alias pathologically under `g % N`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmrace_pmem::{granule_hash, ThreadId};
use pmrace_telemetry as telemetry;

use crate::coverage::Persistency;
use crate::strategy::InterleaveStrategy;
use crate::taint::TaintSet;
use crate::trace::{LocalTraceEvent, TraceBuffers, TraceKind};
use crate::Site;

/// log2 of the per-thread granule-cache slot count.
const SLOT_BITS: u32 = 9;

/// Granule slots per thread buffer (512 × ~80 B ≈ 40 KiB — small enough to
/// stay cache-resident, large enough that a 64-line-per-thread working set
/// maps with no alias group larger than a set's two ways). Organized as
/// [`SETS`] 2-way sets.
pub(crate) const SLOTS: usize = 1 << SLOT_BITS;

/// log2 of the set count (two ways per set).
const SET_BITS: u32 = SLOT_BITS - 1;

/// 2-way sets in the granule cache. Two ways, not a bigger direct map,
/// because the failure mode of a direct map is *ping-pong*: two hot
/// granules aliasing one slot evict (and stripe-flush) each other on every
/// alternating access. A second way absorbs every 2-granule alias group,
/// so steady-state rotation over a working set only flushes at real sync
/// points; 3-way collisions degrade to round-robin eviction.
pub(crate) const SETS: usize = 1 << SET_BITS;

/// Sentinel granule key marking an empty slot.
const NO_GRANULE: u64 = u64::MAX;

/// Sentinel packed coverage event (no access this epoch).
pub(crate) const NO_COV: u32 = u32::MAX;

/// Per-epoch distinct sites kept in the telemetry site-heat delta before
/// overflowing to direct global counts.
const MAX_DELTA_SITES: usize = 64;

/// Slot index of the first way of granule `g`'s set (top hash bits); the
/// second way is `set_base(g) + 1`.
#[inline]
pub(crate) fn set_base(g: u64) -> usize {
    let set = (granule_hash(g) >> (64 - SET_BITS)) as usize;
    debug_assert!(set < SETS);
    set << 1
}

/// Pack a coverage event: `site_id << 1 | unpersisted`.
#[inline]
pub(crate) fn pack_cov(site: Site, unpersisted: bool) -> u32 {
    (site.id() << 1) | u32::from(unpersisted)
}

/// Invert [`pack_cov`].
#[inline]
pub(crate) fn unpack_cov(packed: u32) -> (Site, Persistency) {
    let p = if packed & 1 == 1 {
        Persistency::Unpersisted
    } else {
        Persistency::Persisted
    };
    (Site::from_id(packed >> 1), p)
}

/// Linear-scan site-count bump — granules see a handful of distinct sites,
/// same rationale as the session's `AccessStats`.
#[inline]
pub(crate) fn bump_site(sites: &mut Vec<(Site, u32)>, site: Site) {
    bump_site_n(sites, site, 1);
}

/// [`bump_site`] by `n` at once — the CAS-retry fast path batches whole
/// retry storms into one bump.
#[inline]
pub(crate) fn bump_site_n(sites: &mut Vec<(Site, u32)>, site: Site, n: u32) {
    if let Some(e) = sites.iter_mut().find(|e| e.0 == site) {
        e.1 += n;
    } else {
        sites.push((site, n));
    }
}

/// Memo of this thread's most recent *failed* CAS, the key to the
/// CAS-retry fast path in `PmView::cas_u64`. While the session-wide store
/// counter still reads `progress`, no PM store has landed anywhere in the
/// session, so the word provably still holds `observed` (with the same
/// shadow taint) and an identical retry would fail exactly like the last
/// attempt — it can be answered from this memo without touching the pool
/// or re-running the instrumentation hooks. `pending` counts answered
/// retries not yet folded into the granule's slot statistics
/// (`Session::fold_cas_repeats`).
#[derive(Debug)]
pub(crate) struct CasFailCache {
    pub(crate) valid: bool,
    pub(crate) off: u64,
    pub(crate) site: u32,
    pub(crate) observed: u64,
    pub(crate) taint: TaintSet,
    pub(crate) progress: u64,
    pub(crate) pending: u32,
}

impl CasFailCache {
    fn new() -> Self {
        CasFailCache {
            valid: false,
            off: 0,
            site: 0,
            observed: 0,
            taint: TaintSet::empty(),
            progress: 0,
            pending: 0,
        }
    }
}

/// One direct-mapped granule slot: this epoch's accumulated per-site access
/// counts and the first/last coverage events for one granule.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Granule key ([`NO_GRANULE`] when the slot has never been used).
    pub(crate) granule: u64,
    /// `true` while the slot holds unflushed data for `granule`.
    pub(crate) in_epoch: bool,
    /// `true` while the slot has an entry in the buffer's `used` list.
    /// Kept separate from `in_epoch` so eviction ping-pong within one epoch
    /// re-uses the existing entry instead of growing the list unboundedly.
    pub(crate) enrolled: bool,
    /// Plain-load site counts.
    pub(crate) loads: Vec<(Site, u32)>,
    /// Store site counts.
    pub(crate) stores: Vec<(Site, u32)>,
    /// CAS-read site counts.
    pub(crate) cas: Vec<(Site, u32)>,
    /// First packed coverage event of the epoch ([`NO_COV`] if none).
    pub(crate) cov_first: u32,
    /// Last packed coverage event of the epoch.
    pub(crate) cov_last: u32,
}

impl Slot {
    fn new() -> Self {
        Slot {
            granule: NO_GRANULE,
            in_epoch: false,
            enrolled: false,
            loads: Vec::new(),
            stores: Vec::new(),
            cas: Vec::new(),
            cov_first: NO_COV,
            cov_last: NO_COV,
        }
    }
}

/// Bounded thread-local trace staging area. Behaves like one thread's slice
/// of the shared ring: beyond `cap` events the oldest local event is
/// overwritten, and each drop is counted so the shared sequence counter can
/// account for it exactly on flush.
#[derive(Debug)]
pub(crate) struct LocalTrace {
    cap: usize,
    buf: Vec<LocalTraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
    dropped: u64,
}

impl LocalTrace {
    fn new(cap: usize) -> Self {
        LocalTrace {
            cap,
            buf: Vec::new(),
            start: 0,
            dropped: 0,
        }
    }

    /// Record one event (dropping the oldest beyond capacity).
    #[inline]
    pub(crate) fn push(&mut self, kind: TraceKind, site: Site, off: u64, len: u32) {
        if self.cap == 0 {
            return;
        }
        let ev = LocalTraceEvent {
            kind,
            site,
            off,
            len,
        };
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start += 1;
            if self.start == self.cap {
                self.start = 0;
            }
            self.dropped += 1;
        }
    }

    /// Drain into the shared rings (oldest first), in one sequence-block
    /// reservation and one ring lock.
    pub(crate) fn flush_into(&mut self, tid: ThreadId, sink: &TraceBuffers) {
        if self.buf.is_empty() && self.dropped == 0 {
            return;
        }
        let (tail, head) = self.buf.split_at(self.start);
        sink.push_batch(tid, self.dropped, head, tail);
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

/// Telemetry counter deltas accumulated per epoch (only while telemetry is
/// enabled) and published with one atomic add per counter on flush.
#[derive(Debug, Default)]
pub(crate) struct TelDeltas {
    pub(crate) loads: u64,
    pub(crate) stores: u64,
    pub(crate) ntstores: u64,
    pub(crate) cas: u64,
    pub(crate) flushes: u64,
    pub(crate) fences: u64,
    site_hits: Vec<(u32, u32)>,
}

impl TelDeltas {
    /// Count one site-heat hit in the delta (overflowing rare long tails to
    /// the global table directly).
    #[inline]
    pub(crate) fn site_hit(&mut self, site: u32) {
        if let Some(e) = self.site_hits.iter_mut().find(|e| e.0 == site) {
            e.1 += 1;
        } else if self.site_hits.len() < MAX_DELTA_SITES {
            self.site_hits.push((site, 1));
        } else {
            telemetry::metrics::site_access(site);
        }
    }

    /// Publish and reset all non-zero deltas.
    pub(crate) fn flush(&mut self) {
        use telemetry::Counter;
        for (counter, delta) in [
            (Counter::PmLoads, &mut self.loads),
            (Counter::PmStores, &mut self.stores),
            (Counter::PmNtStores, &mut self.ntstores),
            (Counter::PmCas, &mut self.cas),
            (Counter::PmFlushes, &mut self.flushes),
            (Counter::PmFences, &mut self.fences),
        ] {
            if *delta > 0 {
                telemetry::add(counter, *delta);
                *delta = 0;
            }
        }
        for (site, n) in self.site_hits.drain(..) {
            telemetry::metrics::site_access_n(site, u64::from(n));
        }
    }
}

/// One thread's write-combining buffer: granule slots, staged trace, PM
/// event count, telemetry deltas, and the generation-checked strategy cache
/// (so the access hot path borrows the strategy without a `RwLock` round
/// trip per access).
pub(crate) struct ThreadBuffer {
    pub(crate) tid: ThreadId,
    pub(crate) slots: Box<[Slot]>,
    /// Slot indices dirtied since the last full flush, in first-touch
    /// order — the deterministic flush order. Each slot appears at most
    /// once (guarded by [`Slot::enrolled`]), so the list is bounded by
    /// [`SLOTS`]; the flush loop skips anything not `in_epoch` (e.g. slots
    /// already drained by a CAS-point granule flush).
    pub(crate) used: Vec<u16>,
    /// Round-robin victim way for sets whose both ways are live (3-way
    /// alias groups); flipped on every such eviction.
    pub(crate) victim_flip: bool,
    pub(crate) trace: LocalTrace,
    pub(crate) pm_events: u64,
    pub(crate) tel: TelDeltas,
    /// Last-failed-CAS memo (see [`CasFailCache`]).
    pub(crate) cas_cache: CasFailCache,
    /// Generation of the cached strategy (0 = never fetched; the session
    /// generation starts at 1, so the first access always refreshes).
    pub(crate) strategy_gen: u64,
    pub(crate) strategy: Option<Arc<dyn InterleaveStrategy>>,
}

impl std::fmt::Debug for ThreadBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadBuffer")
            .field("tid", &self.tid)
            .field("dirty_slots", &self.used.len())
            .field("pm_events", &self.pm_events)
            .finish_non_exhaustive()
    }
}

impl ThreadBuffer {
    pub(crate) fn new(tid: ThreadId, trace_depth: usize) -> Self {
        ThreadBuffer {
            tid,
            slots: (0..SLOTS).map(|_| Slot::new()).collect(),
            used: Vec::new(),
            victim_flip: false,
            trace: LocalTrace::new(trace_depth),
            pm_events: 0,
            tel: TelDeltas::default(),
            cas_cache: CasFailCache::new(),
            strategy_gen: 0,
            strategy: None,
        }
    }
}

/// Monotone presence filter over tainted granules: a bit is set when a
/// granule *may* hold a non-empty shadow taint, never cleared. The store
/// hook probes it to skip the stripe lock for the overwhelmingly common
/// untainted-granule case while keeping taint propagation write-through
/// (exactly synchronous); a false positive only costs one stripe lock.
pub(crate) struct TaintFilter {
    words: [AtomicU64; Self::WORDS],
}

impl TaintFilter {
    const WORDS: usize = 64;
    /// log2 of the bit count (64 words × 64 bits = 4096 bits).
    const BITS: u32 = 12;

    pub(crate) fn new() -> Self {
        TaintFilter {
            words: [const { AtomicU64::new(0) }; Self::WORDS],
        }
    }

    #[inline]
    fn bit_of(g: u64) -> (usize, u64) {
        let h = (granule_hash(g) >> (64 - Self::BITS)) as usize;
        (h >> 6, 1u64 << (h & 63))
    }

    /// Mark granule `g` as possibly tainted.
    #[inline]
    pub(crate) fn mark(&self, g: u64) {
        let (w, m) = Self::bit_of(g);
        // Read-before-RMW: the common re-mark costs no exclusive line.
        if self.words[w].load(Ordering::Relaxed) & m == 0 {
            self.words[w].fetch_or(m, Ordering::Relaxed);
        }
    }

    /// `false` means granule `g` is definitely untainted.
    #[inline]
    pub(crate) fn maybe_tainted(&self, g: u64) -> bool {
        let (w, m) = Self::bit_of(g);
        self.words[w].load(Ordering::Relaxed) & m != 0
    }
}

impl std::fmt::Debug for TaintFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintFilter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    #[test]
    fn set_base_spreads_line_aligned_granules() {
        // Line-aligned workloads touch granules in multiples of 8; the
        // fibonacci hash must spread 64 of them over the 256 sets without
        // pathological clustering (g % SETS would use only 32 sets), and
        // with two ways per set no alias group may exceed what round-robin
        // eviction handles gracefully.
        let mut per_set = std::collections::HashMap::new();
        for line in 0..64u64 {
            *per_set.entry(set_base(line * 8)).or_insert(0u32) += 1;
        }
        assert!(per_set.len() > 48, "only {} distinct sets", per_set.len());
        // The hot 64-granule rotation working set must be ping-pong free:
        // every alias group fits in the two ways of its set.
        assert!(
            per_set.values().all(|&n| n <= 2),
            "an alias group exceeds the set's two ways: {per_set:?}"
        );
    }

    #[test]
    fn cov_pack_roundtrip() {
        let s = site!("batch.pack");
        let (s2, p) = unpack_cov(pack_cov(s, true));
        assert_eq!(s2, s);
        assert_eq!(p, Persistency::Unpersisted);
        let (_, p) = unpack_cov(pack_cov(s, false));
        assert_eq!(p, Persistency::Persisted);
    }

    #[test]
    fn taint_filter_is_monotone_and_sound() {
        let f = TaintFilter::new();
        assert!(!f.maybe_tainted(42));
        f.mark(42);
        assert!(f.maybe_tainted(42), "marked granule must stay visible");
        f.mark(42);
        assert!(f.maybe_tainted(42));
    }

    #[test]
    fn local_trace_wraps_and_counts_drops() {
        let mut t = LocalTrace::new(4);
        let s = site!("batch.trace");
        for i in 0..10u64 {
            t.push(TraceKind::Store, s, i * 8, 8);
        }
        assert_eq!(t.dropped, 6);
        assert_eq!(t.buf.len(), 4);
        // Oldest surviving event is #6.
        let (tail, head) = t.buf.split_at(t.start);
        let offs: Vec<u64> = head.iter().chain(tail).map(|e| e.off).collect();
        assert_eq!(offs, vec![48, 56, 64, 72]);
    }

    #[test]
    fn zero_depth_local_trace_is_disabled() {
        let mut t = LocalTrace::new(0);
        t.push(TraceKind::Load, site!("batch.zero"), 0, 8);
        assert!(t.buf.is_empty());
        assert_eq!(t.dropped, 0);
    }
}

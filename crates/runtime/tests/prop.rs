//! Property-based tests for the instrumentation runtime: taint algebra,
//! coverage-map laws, and the candidate-minting invariant.

use std::sync::Arc;

use pmrace_pmem::{Pool, PoolOpts, ThreadId};
use pmrace_runtime::coverage::{CoverageMap, Persistency};
use pmrace_runtime::{site, Session, SessionConfig, TaintSet, TU64};
use proptest::prelude::*;

fn taint_strategy() -> impl Strategy<Value = TaintSet> {
    prop::collection::vec(0u32..64, 0..8).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Union is commutative, associative, and idempotent.
    #[test]
    fn taint_union_laws(a in taint_strategy(), b in taint_strategy(), c in taint_strategy()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.union(&TaintSet::empty()), a.clone());
    }

    /// Union contains exactly the members of both sides.
    #[test]
    fn taint_union_membership(a in taint_strategy(), b in taint_strategy()) {
        let u = a.union(&b);
        for l in 0u32..64 {
            prop_assert_eq!(u.contains(l), a.contains(l) || b.contains(l));
        }
    }

    /// TU64 arithmetic matches u64 arithmetic on the value while the taint
    /// is always the union of the operands' taint.
    #[test]
    fn tu64_arithmetic_is_value_faithful(
        x in any::<u64>(), y in 1u64..1_000_000,
        ta in taint_strategy(), tb in taint_strategy(),
    ) {
        let a = TU64::with_taint(x, ta.clone());
        let b = TU64::with_taint(y, tb.clone());
        let cases: Vec<(TU64, u64)> = vec![
            (a.clone() + b.clone(), x.wrapping_add(y)),
            (a.clone() ^ b.clone(), x ^ y),
            (a.clone() | b.clone(), x | y),
            (a.clone() & b.clone(), x & y),
            (a.clone() % b.clone(), x % y),
        ];
        for (got, want) in cases {
            prop_assert_eq!(got.value(), want);
            prop_assert_eq!(got.taint(), &ta.union(&tb));
        }
    }

    /// Merging a coverage map into an empty one reproduces its counts, and
    /// re-merging adds nothing (idempotence).
    #[test]
    fn coverage_merge_laws(accesses in prop::collection::vec(
        (0u64..32, 0u8..2, any::<bool>()), 1..60)) {
        let src = CoverageMap::new();
        let s0 = site!("prop.a");
        let s1 = site!("prop.b");
        for (g, t, unp) in &accesses {
            let site = if *t == 0 { s0 } else { s1 };
            let p = if *unp { Persistency::Unpersisted } else { Persistency::Persisted };
            src.record_access(*g, site, ThreadId(u32::from(*t)), p);
        }
        src.record_branch(s0);
        let dst = CoverageMap::new();
        let (a1, b1) = dst.merge_from(&src);
        prop_assert_eq!(a1, src.alias_pairs());
        prop_assert_eq!(b1, src.branches());
        let (a2, b2) = dst.merge_from(&src);
        prop_assert_eq!((a2, b2), (0, 0));
        prop_assert_eq!(dst.alias_pairs(), src.alias_pairs());
    }

    /// Candidate-minting invariant: a load mints taint iff some overlapped
    /// granule is unpersisted — checked against an independent model of
    /// dirty words driven by the same operation stream.
    #[test]
    fn candidates_track_dirtiness_model(ops in prop::collection::vec(
        (0u64..16, 0u8..3, any::<bool>()), 1..80)) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig { capture_crash_images: false, ..SessionConfig::default() },
        );
        let v0 = session.view(ThreadId(0));
        let v1 = session.view(ThreadId(1));
        let mut dirty = std::collections::HashSet::new();
        let (sw, sr, sf) = (site!("prop.w"), site!("prop.r"), site!("prop.f"));
        for (word, action, second_thread) in ops {
            let off = 4096 + word * 8;
            let view = if second_thread { &v1 } else { &v0 };
            match action {
                0 => {
                    view.store_u64(off, 1u64, sw).unwrap();
                    dirty.insert(word);
                }
                1 => {
                    view.persist(off, 8, sf).unwrap();
                    // clwb covers the whole 64-byte line.
                    let line = word / 8 * 8;
                    for w in line..line + 8 {
                        dirty.remove(&w);
                    }
                }
                _ => {
                    let got = view.load_u64(off, sr).unwrap();
                    prop_assert_eq!(
                        got.is_tainted(),
                        dirty.contains(&word),
                        "word {} dirty-model mismatch", word
                    );
                }
            }
        }
    }
}

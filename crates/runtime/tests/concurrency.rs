//! Concurrency stress tests for the lock-free coverage map: recording the
//! same event stream concurrently (atomics, `&self`) must produce exactly
//! the coverage that serialized recording through a global lock produces —
//! the old `Mutex<CoverageMap>` discipline is the reference.

use std::sync::Mutex;

use pmrace_pmem::ThreadId;
use pmrace_runtime::coverage::{CoverageMap, Persistency};
use pmrace_runtime::{site, Site};

#[derive(Clone, Copy)]
struct Event {
    granule: u64,
    site: Site,
    tid: ThreadId,
    persistency: Persistency,
}

/// Deterministic per-thread event stream over a private granule range, with
/// alternating sites/persistency and a "phantom" second thread id on every
/// other pass over the granule range, so every granule sees alternating
/// thread ids and alias pairs actually mint.
fn stream(t: u64, sites: &[Site; 3]) -> Vec<Event> {
    let mut events = Vec::new();
    for i in 0..600u64 {
        let granule = t * 1000 + i % 40;
        let site = sites[(i % 3) as usize];
        let tid = if (i / 40) % 2 == 0 {
            ThreadId(100 + t as u32) // phantom partner: cross-thread pair
        } else {
            ThreadId(t as u32)
        };
        let persistency = if i % 2 == 0 {
            Persistency::Persisted
        } else {
            Persistency::Unpersisted
        };
        events.push(Event {
            granule,
            site,
            tid,
            persistency,
        });
    }
    events
}

#[test]
fn concurrent_recording_matches_global_lock_reference() {
    let sites = [site!("conc.a"), site!("conc.b"), site!("conc.c")];
    let streams: Vec<Vec<Event>> = (0..8).map(|t| stream(t, &sites)).collect();

    // Reference: every event serialized through one global lock, the
    // pre-rewrite discipline.
    let reference = Mutex::new(CoverageMap::new());
    for events in &streams {
        for ev in events {
            reference
                .lock()
                .unwrap()
                .record_access(ev.granule, ev.site, ev.tid, ev.persistency);
        }
        reference.lock().unwrap().record_branch(sites[0]);
    }
    let reference = reference.into_inner().unwrap();

    // Atomic: the same streams recorded concurrently with no lock. Streams
    // touch disjoint granule ranges, so the outcome is deterministic
    // regardless of interleaving.
    let concurrent = CoverageMap::new();
    std::thread::scope(|s| {
        for events in &streams {
            let concurrent = &concurrent;
            s.spawn(move || {
                for ev in events {
                    concurrent.record_access(ev.granule, ev.site, ev.tid, ev.persistency);
                }
                concurrent.record_branch(sites[0]);
            });
        }
    });

    assert!(reference.alias_pairs() > 0, "streams must mint alias pairs");
    assert_eq!(concurrent.alias_pairs(), reference.alias_pairs());
    assert_eq!(concurrent.branches(), reference.branches());

    // Bit-level equivalence: merging either map into the other adds nothing.
    let a = reference.clone();
    assert_eq!(a.merge_from(&concurrent), (0, 0));
    let b = concurrent.clone();
    assert_eq!(b.merge_from(&reference), (0, 0));
}

#[test]
fn concurrent_merges_into_one_global_map_lose_nothing() {
    // The fuzzer pattern: workers record privately, then merge into the
    // global map concurrently. Every pair recorded by any worker must be
    // present globally afterwards.
    let sites = [site!("merge.a"), site!("merge.b"), site!("merge.c")];
    let locals: Vec<CoverageMap> = (0..6)
        .map(|t| {
            let m = CoverageMap::new();
            for ev in stream(t, &sites) {
                m.record_access(ev.granule, ev.site, ev.tid, ev.persistency);
            }
            m
        })
        .collect();
    let global = CoverageMap::new();
    std::thread::scope(|s| {
        for local in &locals {
            let global = &global;
            s.spawn(move || {
                global.merge_from(local);
            });
        }
    });
    for local in &locals {
        let probe = global.clone();
        assert_eq!(
            probe.merge_from(local),
            (0, 0),
            "global map must already contain every worker's coverage"
        );
    }
}

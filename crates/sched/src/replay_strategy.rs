//! Deterministic schedule replay: re-enforce a recorded access order.
//!
//! [`ReplayStrategy`] takes the event log a
//! [`RecordingStrategy`](crate::RecordingStrategy) captured for one granule
//! and gates every matching access until all earlier events in the log have
//! fired — a condition-gated total order on the racy address, with no
//! timing dependence. Writers additionally *hold* after a store while the
//! recorded schedule says other threads' loads observe the not-yet-flushed
//! value (the event-gated analog of the Fig. 6 `writerWaiting` stall).
//!
//! When the target's control flow shifts (different build, minimized seed,
//! drifted layout) the recorded schedule may become unsatisfiable. Instead
//! of hanging, a watchdog declares *divergence*: gating is abandoned, the
//! campaign runs to completion ungated, and the divergence is reported so
//! the caller can distinguish "bug gone" from "schedule did not apply".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pmrace_runtime::site_label;
use pmrace_runtime::strategy::{AccessCtx, InterleaveStrategy};

/// One schedule constraint: the occurrence of a (kind, site label, thread)
/// triple at a fixed slot of the recorded order. Labels, not site ids —
/// ids are process-local, labels are stable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayEvent {
    /// `true` for a load, `false` for a store.
    pub is_load: bool,
    /// Site label (e.g. `"clht_lb_res.c:417.read_ht_off"`).
    pub label: String,
    /// Driver thread that must perform this access.
    pub tid: u32,
}

type EventKey = (bool, String, u32);

/// Enforces a recorded per-address access order, condition-gated.
#[derive(Debug)]
pub struct ReplayStrategy {
    granule: u64,
    events: Vec<ReplayEvent>,
    /// Slot indices per (kind, label, tid) triple, in recorded order: the
    /// k-th arriving occurrence of a triple must run at `positions[k]`.
    positions: HashMap<EventKey, Vec<usize>>,
    /// For each store slot, the last following slot that is a load by a
    /// *different* thread: the writer holds its flush until the cursor
    /// passes it, so those loads deterministically observe non-persisted
    /// data. `None` when no such window follows.
    hold_until: Vec<Option<usize>>,
    /// Slot granted last per thread (consumed by `after_store` holds).
    pending_hold: Mutex<HashMap<u32, usize>>,
    /// Occurrences of each triple seen so far this campaign.
    seen: Mutex<HashMap<EventKey, usize>>,
    /// Next slot to grant.
    cursor: AtomicUsize,
    diverged: AtomicBool,
    divergence: Mutex<Option<String>>,
    watchdog: Duration,
    poll: Duration,
}

impl ReplayStrategy {
    /// Replay `events` on the granule containing byte offset `off`.
    /// `watchdog` bounds how long any access waits for its slot before the
    /// schedule is declared divergent.
    #[must_use]
    pub fn new(off: u64, events: Vec<ReplayEvent>, watchdog: Duration) -> Self {
        let mut positions: HashMap<EventKey, Vec<usize>> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            positions
                .entry((e.is_load, e.label.clone(), e.tid))
                .or_default()
                .push(i);
        }
        let mut hold_until = vec![None; events.len()];
        for (i, e) in events.iter().enumerate() {
            if e.is_load {
                continue;
            }
            // Walk the run of other-thread loads directly after this store.
            let mut last = None;
            for (j, f) in events.iter().enumerate().skip(i + 1) {
                if f.is_load && f.tid != e.tid {
                    last = Some(j);
                } else {
                    break;
                }
            }
            hold_until[i] = last;
        }
        ReplayStrategy {
            granule: off / 8,
            events,
            positions,
            hold_until,
            pending_hold: Mutex::new(HashMap::new()),
            seen: Mutex::new(HashMap::new()),
            cursor: AtomicUsize::new(0),
            diverged: AtomicBool::new(false),
            divergence: Mutex::new(None),
            watchdog,
            poll: Duration::from_micros(50),
        }
    }

    /// Slots granted so far (== schedule length after a full replay).
    #[must_use]
    pub fn granted(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Number of slots in the schedule.
    #[must_use]
    pub fn total(&self) -> usize {
        self.events.len()
    }

    /// The divergence report, if the watchdog abandoned gating.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        self.divergence.lock().clone()
    }

    fn diverge(&self, why: String) {
        let mut slot = self.divergence.lock();
        if slot.is_none() {
            *slot = Some(why);
        }
        self.diverged.store(true, Ordering::Release);
    }

    /// Wait until `cursor` reaches `target`; `true` on success, `false`
    /// when cancelled or diverged (gates are open from then on).
    fn await_cursor(&self, target: usize, ctx: &AccessCtx<'_>, why: &str) -> bool {
        let start = Instant::now();
        loop {
            if self.cursor.load(Ordering::Acquire) >= target {
                return true;
            }
            if self.diverged.load(Ordering::Acquire) || (ctx.cancelled)() {
                return false;
            }
            if start.elapsed() >= self.watchdog {
                let cur = self.cursor.load(Ordering::Acquire);
                let expected = self.events.get(cur).map_or("<end>".to_owned(), |e| {
                    format!(
                        "{} {} by t{}",
                        if e.is_load { "load" } else { "store" },
                        e.label,
                        e.tid
                    )
                });
                self.diverge(format!(
                    "watchdog after {:?} {why}: cursor stuck at slot {cur}/{} \
                     (next expected: {expected}); t{} at {} never got its turn",
                    self.watchdog,
                    self.events.len(),
                    ctx.tid.0,
                    site_label(ctx.site),
                ));
                return false;
            }
            std::thread::sleep(self.poll);
        }
    }

    fn gate(&self, is_load: bool, ctx: &AccessCtx<'_>) {
        if self.diverged.load(Ordering::Acquire) || ctx.off / 8 != self.granule {
            return;
        }
        let label = site_label(ctx.site);
        let key: EventKey = (is_load, label.to_owned(), ctx.tid.0);
        let slot = {
            let Some(slots) = self.positions.get(&key) else {
                return; // unconstrained access (not part of the schedule)
            };
            let mut seen = self.seen.lock();
            let k = seen.entry(key.clone()).or_insert(0);
            let idx = *k;
            *k += 1;
            match slots.get(idx) {
                Some(&slot) => slot,
                None => return, // beyond the recorded window: unconstrained
            }
        };
        if self.await_cursor(slot, ctx, "waiting for slot") {
            // Our slot: grant it and advance the order.
            self.cursor.store(slot + 1, Ordering::Release);
            if !is_load {
                if let Some(until) = self.hold_until[slot] {
                    self.pending_hold.lock().insert(ctx.tid.0, until);
                }
            }
        }
    }
}

impl InterleaveStrategy for ReplayStrategy {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn before_load(&self, ctx: &AccessCtx<'_>) {
        self.gate(true, ctx);
    }

    fn before_store(&self, ctx: &AccessCtx<'_>) {
        self.gate(false, ctx);
    }

    fn after_store(&self, ctx: &AccessCtx<'_>) {
        if ctx.off / 8 != self.granule {
            return;
        }
        let Some(until) = self.pending_hold.lock().remove(&ctx.tid.0) else {
            return;
        };
        // Hold the flush until the recorded racy reads went through.
        let _ = self.await_cursor(until + 1, ctx, "holding flush for readers");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::ThreadId;
    use pmrace_runtime::site;
    use std::sync::Arc;

    fn ctx<'a>(
        off: u64,
        site: pmrace_runtime::Site,
        tid: u32,
        cancelled: &'a dyn Fn() -> bool,
    ) -> AccessCtx<'a> {
        AccessCtx {
            off,
            len: 8,
            site,
            tid: ThreadId(tid),
            cancelled,
        }
    }

    fn ev(is_load: bool, label: &str, tid: u32) -> ReplayEvent {
        ReplayEvent {
            is_load,
            label: label.to_owned(),
            tid,
        }
    }

    #[test]
    fn enforces_store_before_load_order() {
        let (l, s) = (site!("rp-load"), site!("rp-store"));
        let strat = Arc::new(ReplayStrategy::new(
            64,
            vec![ev(false, "rp-store", 0), ev(true, "rp-load", 1)],
            Duration::from_secs(2),
        ));
        let strat2 = Arc::clone(&strat);
        let reader = std::thread::spawn(move || {
            let cancelled = || false;
            let start = Instant::now();
            strat2.before_load(&ctx(64, l, 1, &cancelled));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        let cancelled = || false;
        strat.before_store(&ctx(64, s, 0, &cancelled));
        // The writer's flush is held until the reader's slot fired.
        let held = std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                let start = Instant::now();
                strat.after_store(&ctx(64, s, 0, &cancelled));
                start.elapsed()
            });
            h.join().unwrap()
        });
        let waited = reader.join().unwrap();
        assert!(waited >= Duration::from_millis(10), "reader ran early");
        assert!(strat.divergence().is_none());
        assert_eq!(strat.granted(), 2);
        assert!(held < Duration::from_secs(2), "writer hold released");
    }

    #[test]
    fn unconstrained_accesses_pass_through() {
        let l = site!("rp-free-load");
        let strat = ReplayStrategy::new(
            64,
            vec![ev(false, "some-store", 0)],
            Duration::from_millis(200),
        );
        let cancelled = || false;
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 0, &cancelled)); // label not in schedule
        strat.before_load(&ctx(4096, l, 0, &cancelled)); // other granule
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(strat.granted(), 0);
    }

    #[test]
    fn watchdog_reports_divergence_instead_of_hanging() {
        let l = site!("rp-div-load");
        // Schedule expects a store that will never happen before the load.
        let strat = ReplayStrategy::new(
            64,
            vec![ev(false, "missing-store", 0), ev(true, "rp-div-load", 1)],
            Duration::from_millis(50),
        );
        let cancelled = || false;
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 1, &cancelled));
        assert!(start.elapsed() < Duration::from_secs(1));
        let why = strat.divergence().expect("watchdog must report");
        assert!(why.contains("missing-store"), "{why}");
        // After divergence, every gate is open.
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 1, &cancelled));
        assert!(start.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn occurrences_beyond_the_window_are_unconstrained() {
        let l = site!("rp-win-load");
        let strat = ReplayStrategy::new(
            64,
            vec![ev(true, "rp-win-load", 0)],
            Duration::from_millis(100),
        );
        let cancelled = || false;
        strat.before_load(&ctx(64, l, 0, &cancelled)); // slot 0
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 0, &cancelled)); // beyond the window
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(strat.granted(), 1);
        assert!(strat.divergence().is_none());
    }
}

//! Random delay-injection baseline (*Delay Inj* in §6.1).
//!
//! Before each PM access, inject a uniformly distributed random delay. This
//! is the conventional interleaving-exploration technique PMRace is compared
//! against in Fig. 8; it is PM-oblivious, so it spends its delays on all
//! accesses equally instead of steering readers onto unflushed data.

use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmrace_runtime::strategy::{AccessCtx, InterleaveStrategy};

/// Uniform-random delay before every PM load and store.
#[derive(Debug)]
pub struct DelayStrategy {
    max_delay: Duration,
    rng: Mutex<StdRng>,
}

impl DelayStrategy {
    /// Delays drawn uniformly from `[0, max_delay]`. The paper uses at most
    /// 1 ms; scaled-down values keep campaigns fast in tests.
    #[must_use]
    pub fn new(max_delay: Duration, seed: u64) -> Self {
        DelayStrategy {
            max_delay,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    fn delay(&self) {
        let max = self.max_delay.as_micros() as u64;
        if max == 0 {
            return;
        }
        let us = self.rng.lock().random_range(0..=max);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

impl InterleaveStrategy for DelayStrategy {
    fn name(&self) -> &'static str {
        "delay-injection"
    }

    fn before_load(&self, _ctx: &AccessCtx<'_>) {
        self.delay();
    }

    fn before_store(&self, _ctx: &AccessCtx<'_>) {
        self.delay();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::ThreadId;
    use pmrace_runtime::site;
    use std::time::Instant;

    #[test]
    fn delays_are_bounded() {
        let s = DelayStrategy::new(Duration::from_micros(100), 42);
        let cancelled = || false;
        let ctx = AccessCtx {
            off: 0,
            len: 8,
            site: site!("x"),
            tid: ThreadId(0),
            cancelled: &cancelled,
        };
        let start = Instant::now();
        for _ in 0..20 {
            s.before_load(&ctx);
            s.before_store(&ctx);
        }
        // 40 delays of at most 100µs each, plus generous scheduling slack.
        assert!(start.elapsed() < Duration::from_millis(500));
        assert_eq!(s.name(), "delay-injection");
    }

    #[test]
    fn zero_max_delay_never_sleeps() {
        let s = DelayStrategy::new(Duration::ZERO, 1);
        let cancelled = || false;
        let ctx = AccessCtx {
            off: 0,
            len: 8,
            site: site!("y"),
            tid: ThreadId(0),
            cancelled: &cancelled,
        };
        let start = Instant::now();
        for _ in 0..1000 {
            s.before_load(&ctx);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}

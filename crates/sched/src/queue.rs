//! Priority queue of shared PM data accesses (§4.2.2).
//!
//! Entries are addresses (granules) of global PM data accessed by several
//! threads with both loads and stores, prioritized by access frequency —
//! "hot shared data" is where non-persistency tends to cause crash
//! inconsistencies. The fuzzer fetches one unexplored entry per
//! interleaving-tier step and builds a [`SyncPlan`](crate::SyncPlan) from
//! it.

use std::collections::{HashMap, HashSet};

use pmrace_runtime::session::SharedAccessEntry;
use pmrace_runtime::Site;

/// One queue entry: a shared PM address with its load and store
/// instructions.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// Byte offset of the shared granule.
    pub off: u64,
    /// Load instructions observed at this address (the sync points).
    pub load_sites: Vec<Site>,
    /// Store instructions observed at this address (the signallers).
    pub store_sites: Vec<Site>,
    /// CAS instructions observed at this address (retry decision points:
    /// a failed attempt lets the scheduler stall the retry loop).
    pub cas_sites: Vec<Site>,
    /// Priority: total access count across campaigns.
    pub priority: u32,
}

/// Frequency-ordered queue of shared accesses with explored-set tracking.
#[derive(Debug, Default)]
pub struct AccessQueue {
    entries: HashMap<u64, QueueEntry>,
    explored: HashSet<u64>,
}

impl AccessQueue {
    /// Empty queue.
    #[must_use]
    pub fn new() -> Self {
        AccessQueue::default()
    }

    /// Merge shared-access statistics from a finished campaign, adding new
    /// addresses and bumping priorities/instruction sets of known ones.
    pub fn merge(&mut self, shared: &[SharedAccessEntry]) {
        for e in shared {
            let entry = self.entries.entry(e.off).or_insert_with(|| QueueEntry {
                off: e.off,
                load_sites: Vec::new(),
                store_sites: Vec::new(),
                cas_sites: Vec::new(),
                priority: 0,
            });
            entry.priority = entry.priority.saturating_add(e.total);
            for &(s, _) in &e.load_sites {
                if !entry.load_sites.contains(&s) {
                    entry.load_sites.push(s);
                }
            }
            for &(s, _) in &e.store_sites {
                if !entry.store_sites.contains(&s) {
                    entry.store_sites.push(s);
                }
            }
            for &(s, _) in &e.cas_sites {
                if !entry.cas_sites.contains(&s) {
                    entry.cas_sites.push(s);
                }
            }
        }
    }

    /// Fetch the hottest entry not yet explored, marking it explored.
    pub fn pop_unexplored(&mut self) -> Option<QueueEntry> {
        let best = self
            .entries
            .values()
            .filter(|e| !self.explored.contains(&e.off))
            .max_by_key(|e| (e.priority, std::cmp::Reverse(e.off)))?
            .clone();
        self.explored.insert(best.off);
        Some(best)
    }

    /// Forget exploration state (used when switching seeds — the paper
    /// reconstructs the priority queue at the seed tier).
    pub fn reset_explored(&mut self) {
        self.explored.clear();
        self.entries.clear();
    }

    /// Number of known shared addresses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no shared addresses are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries not yet explored.
    #[must_use]
    pub fn unexplored(&self) -> usize {
        self.entries
            .keys()
            .filter(|off| !self.explored.contains(off))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_runtime::site;

    fn shared(off: u64, load: Site, store: Site, total: u32) -> SharedAccessEntry {
        SharedAccessEntry {
            off,
            load_sites: vec![(load, total / 2)],
            store_sites: vec![(store, total / 2)],
            cas_sites: Vec::new(),
            total,
            threads: 2,
        }
    }

    #[test]
    fn pops_hottest_first_and_marks_explored() {
        let mut q = AccessQueue::new();
        q.merge(&[
            shared(64, site!("l1"), site!("s1"), 10),
            shared(128, site!("l2"), site!("s2"), 50),
        ]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.unexplored(), 2);
        assert_eq!(q.pop_unexplored().unwrap().off, 128);
        assert_eq!(q.pop_unexplored().unwrap().off, 64);
        assert!(q.pop_unexplored().is_none());
        assert_eq!(q.unexplored(), 0);
    }

    #[test]
    fn merge_accumulates_priority_and_sites() {
        let mut q = AccessQueue::new();
        let (l1, l2, s1) = (site!("la"), site!("lb"), site!("sa"));
        q.merge(&[shared(64, l1, s1, 10)]);
        q.merge(&[shared(64, l2, s1, 5)]);
        let e = q.pop_unexplored().unwrap();
        assert_eq!(e.priority, 15);
        assert_eq!(e.load_sites.len(), 2);
        assert_eq!(e.store_sites.len(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = AccessQueue::new();
        q.merge(&[shared(64, site!("lr"), site!("sr"), 1)]);
        let _ = q.pop_unexplored();
        q.reset_explored();
        assert!(q.is_empty());
        assert!(q.pop_unexplored().is_none());
    }
}

//! PM-aware interleaving exploration for PMRace (§4.2.2).
//!
//! Two [`InterleaveStrategy`](pmrace_runtime::strategy::InterleaveStrategy)
//! implementations:
//!
//! - [`PmraceStrategy`] — the paper's conditional-wait scheduler (Fig. 6):
//!   given one entry from the shared-access priority queue, loads of that
//!   address become *sync points* gated on a condition the matching store
//!   signals; the writer then stalls before its flush so readers observe the
//!   not-yet-persisted value. The three pitfalls are handled exactly as in
//!   the paper: the condition disables waiting after the first signal
//!   (pitfall 1), a privileged thread is drafted when *all* threads block
//!   (pitfall 2), and persistently hanging sync points accumulate skip
//!   counts that later campaigns on the same seed start from (pitfall 3).
//! - [`DelayStrategy`] — the random delay-injection baseline evaluated as
//!   *Delay Inj* in §6 (uniform random delay before each PM access).
//! - [`SystematicStrategy`] — a serialization baseline modeling the
//!   interleaving-enumeration family (§7), for cost comparisons.
//!
//! [`AccessQueue`] is the priority queue of shared PM data accesses the
//! fuzzer fetches entries from; [`SkipStore`] carries learned skip counts
//! across campaigns of the same seed.
//!
//! For deterministic record/replay of detected bugs, [`RecordingStrategy`]
//! wraps any strategy and logs the released access order on the watched
//! granule into a [`ScheduleLog`], and [`ReplayStrategy`] re-enforces such
//! a log as a condition-gated total order (see the `pmrace-replay` crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod pmrace_strategy;
mod queue;
mod record;
mod replay_strategy;
mod skip;
mod systematic;

pub use delay::DelayStrategy;
pub use pmrace_strategy::{PmraceStrategy, SyncPlan, SyncTuning};
pub use queue::{AccessQueue, QueueEntry};
pub use record::{AccessEvent, RecordingStrategy, ScheduleLog, MAX_RECORDED_EVENTS};
pub use replay_strategy::{ReplayEvent, ReplayStrategy};
pub use skip::SkipStore;
pub use systematic::SystematicStrategy;

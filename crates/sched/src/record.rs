//! Schedule capture: record the access order a campaign actually executed.
//!
//! [`RecordingStrategy`] wraps any [`InterleaveStrategy`] and logs, for one
//! watched granule (the sync address of the active
//! [`SyncPlan`](crate::SyncPlan)), the order in which gated loads and
//! stores were released. The log is the *schedule constraint set* a
//! [`ReplayStrategy`](crate::ReplayStrategy) later re-enforces: replaying
//! the recorded order on the racy address reproduces the same
//! read-of-non-persisted-data window without any timing dependence.

use std::sync::Arc;

use parking_lot::Mutex;

use pmrace_pmem::ThreadId;
use pmrace_runtime::strategy::{AccessCtx, InterleaveStrategy};

/// Upper bound on recorded events per campaign. Campaigns on hot shared
/// addresses can touch the watched granule tens of thousands of times; the
/// racy window is always within the first accesses after the plan engages,
/// so a bounded log loses nothing that matters and keeps artifacts small.
pub const MAX_RECORDED_EVENTS: usize = 4096;

/// One recorded access to the watched granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// `true` for a load, `false` for a store.
    pub is_load: bool,
    /// Instruction site of the access.
    pub site: pmrace_runtime::Site,
    /// Executing driver thread.
    pub tid: u32,
}

#[derive(Debug, Default)]
struct LogInner {
    events: Vec<AccessEvent>,
    truncated: bool,
}

/// Shared, bounded log of accesses to one granule.
#[derive(Debug)]
pub struct ScheduleLog {
    /// Watched granule (byte offset / 8).
    granule: u64,
    inner: Mutex<LogInner>,
}

impl ScheduleLog {
    /// Log for the granule containing byte offset `off`.
    #[must_use]
    pub fn new(off: u64) -> Self {
        ScheduleLog {
            granule: off / 8,
            inner: Mutex::new(LogInner::default()),
        }
    }

    /// Byte offset of the watched granule.
    #[must_use]
    pub fn off(&self) -> u64 {
        self.granule * 8
    }

    fn push(&self, ev: AccessEvent) {
        let mut inner = self.inner.lock();
        if inner.events.len() >= MAX_RECORDED_EVENTS {
            inner.truncated = true;
            return;
        }
        inner.events.push(ev);
    }

    /// Snapshot of the recorded events, in execution order, plus whether
    /// the log overflowed [`MAX_RECORDED_EVENTS`].
    #[must_use]
    pub fn snapshot(&self) -> (Vec<AccessEvent>, bool) {
        let inner = self.inner.lock();
        (inner.events.clone(), inner.truncated)
    }
}

/// Wraps an inner strategy and records released accesses to one granule.
///
/// Events are logged *after* the inner strategy's gate returns — i.e. in
/// the order the accesses were actually allowed to execute, which is the
/// order a replay must re-enforce.
pub struct RecordingStrategy {
    inner: Arc<dyn InterleaveStrategy>,
    log: Arc<ScheduleLog>,
}

impl std::fmt::Debug for RecordingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingStrategy")
            .field("inner", &self.inner.name())
            .field("off", &self.log.off())
            .finish()
    }
}

impl RecordingStrategy {
    /// Record accesses to `log`'s granule around `inner`'s gating.
    #[must_use]
    pub fn new(inner: Arc<dyn InterleaveStrategy>, log: Arc<ScheduleLog>) -> Self {
        RecordingStrategy { inner, log }
    }

    fn record(&self, is_load: bool, ctx: &AccessCtx<'_>) {
        if ctx.off / 8 == self.log.granule {
            self.log.push(AccessEvent {
                is_load,
                site: ctx.site,
                tid: ctx.tid.0,
            });
        }
    }
}

impl InterleaveStrategy for RecordingStrategy {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn before_load(&self, ctx: &AccessCtx<'_>) {
        self.inner.before_load(ctx);
        self.record(true, ctx);
    }

    fn before_store(&self, ctx: &AccessCtx<'_>) {
        self.inner.before_store(ctx);
        self.record(false, ctx);
    }

    fn after_store(&self, ctx: &AccessCtx<'_>) {
        self.inner.after_store(ctx);
    }

    fn on_cas_fail(&self, ctx: &AccessCtx<'_>, attempt: u32) {
        // Forward only: the failed attempt was already logged as a store
        // event by `before_store`, and replay re-enforces that release
        // order. Recording a second event here would desynchronize the
        // replay turnstile.
        self.inner.on_cas_fail(ctx, attempt);
    }

    fn thread_done(&self, tid: ThreadId) {
        self.inner.thread_done(tid);
    }

    fn campaign_end(&self) {
        self.inner.campaign_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PmraceStrategy, SkipStore, SyncPlan, SyncTuning};
    use pmrace_runtime::site;
    use std::collections::HashSet;
    use std::time::Duration;

    fn ctx<'a>(
        off: u64,
        site: pmrace_runtime::Site,
        tid: u32,
        cancelled: &'a dyn Fn() -> bool,
    ) -> AccessCtx<'a> {
        AccessCtx {
            off,
            len: 8,
            site,
            tid: ThreadId(tid),
            cancelled,
        }
    }

    #[test]
    fn records_watched_granule_in_release_order() {
        let (l, s) = (site!("rec-load"), site!("rec-store"));
        let plan = SyncPlan {
            off: 64,
            load_sites: HashSet::from([l.id()]),
            store_sites: HashSet::from([s.id()]),
            cas_sites: HashSet::new(),
        };
        let tuning = SyncTuning {
            reader_poll: Duration::from_micros(100),
            writer_wait: Duration::from_millis(1),
            all_block_iters: 5,
            disable_iters: 100,
            skip_jitter: 0,
        };
        let inner = Arc::new(PmraceStrategy::new(
            plan,
            2,
            Arc::new(SkipStore::new()),
            tuning,
            1,
        ));
        let log = Arc::new(ScheduleLog::new(64));
        let rec = Arc::new(RecordingStrategy::new(inner, Arc::clone(&log)));

        let rec2 = Arc::clone(&rec);
        let reader = std::thread::spawn(move || {
            let cancelled = || false;
            rec2.before_load(&ctx(64, l, 1, &cancelled));
        });
        std::thread::sleep(Duration::from_millis(5));
        let cancelled = || false;
        rec.before_store(&ctx(64, s, 0, &cancelled));
        rec.after_store(&ctx(64, s, 0, &cancelled));
        reader.join().unwrap();
        // Off-granule accesses are not recorded.
        rec.before_load(&ctx(256, l, 0, &cancelled));

        let (events, truncated) = log.snapshot();
        assert!(!truncated);
        assert_eq!(events.len(), 2);
        // The reader was gated on the store's signal: store released first.
        assert!(
            !events[0].is_load,
            "store must be released first: {events:?}"
        );
        assert!(events[1].is_load);
        assert_eq!(events[1].tid, 1);
    }

    #[test]
    fn log_is_bounded() {
        let log = ScheduleLog::new(0);
        let site = site!("bound-load");
        for _ in 0..(MAX_RECORDED_EVENTS + 10) {
            log.push(AccessEvent {
                is_load: true,
                site,
                tid: 0,
            });
        }
        let (events, truncated) = log.snapshot();
        assert_eq!(events.len(), MAX_RECORDED_EVENTS);
        assert!(truncated);
    }
}

//! Systematic serialization baseline.
//!
//! The paper's related work (§7) cites interleaving *enumeration* (SKI,
//! Razzer) as the third exploration family, noting it is cost-inefficient
//! for PM programs (Yat's exhaustive enumeration would take years). This
//! strategy models that family's per-access serialization cost: every PM
//! access waits for its thread's turn in a round-robin token rotation, so
//! one run explores exactly one deterministic-ish schedule — at the price
//! of serializing all PM parallelism.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use parking_lot::Mutex;
use pmrace_pmem::ThreadId;
use pmrace_runtime::strategy::{AccessCtx, InterleaveStrategy};

/// Round-robin serialization of PM accesses across driver threads.
#[derive(Debug)]
pub struct SystematicStrategy {
    num_threads: u32,
    /// Thread currently holding the token.
    token: AtomicU32,
    /// Accesses the holder may perform before the token rotates.
    quantum: u32,
    used: AtomicU32,
    /// Threads that already finished (their turns are skipped).
    done: Mutex<Vec<bool>>,
    accesses: AtomicUsize,
}

impl SystematicStrategy {
    /// Serialize across `num_threads` threads, rotating the token every
    /// `quantum` PM accesses. `start` picks the schedule (which thread
    /// leads), giving one distinct schedule per campaign.
    #[must_use]
    pub fn new(num_threads: usize, quantum: u32, start: u32) -> Self {
        let n = num_threads.max(1) as u32;
        SystematicStrategy {
            num_threads: n,
            token: AtomicU32::new(start % n),
            quantum: quantum.max(1),
            used: AtomicU32::new(0),
            done: Mutex::new(vec![false; n as usize]),
            accesses: AtomicUsize::new(0),
        }
    }

    /// Total PM accesses serialized (telemetry).
    #[must_use]
    pub fn accesses(&self) -> usize {
        self.accesses.load(Ordering::Relaxed)
    }

    fn rotate_from(&self, cur: u32) {
        let done = self.done.lock();
        let mut next = (cur + 1) % self.num_threads;
        for _ in 0..self.num_threads {
            if !done[next as usize] {
                break;
            }
            next = (next + 1) % self.num_threads;
        }
        self.used.store(0, Ordering::Relaxed);
        self.token.store(next, Ordering::Release);
    }

    fn wait_turn(&self, ctx: &AccessCtx<'_>) {
        if ctx.tid.0 >= self.num_threads {
            return; // non-driver thread (e.g. recovery): unscheduled
        }
        self.accesses.fetch_add(1, Ordering::Relaxed);
        loop {
            let holder = self.token.load(Ordering::Acquire);
            if holder == ctx.tid.0 {
                if self.used.fetch_add(1, Ordering::AcqRel) + 1 >= self.quantum {
                    self.rotate_from(holder);
                }
                return;
            }
            if (ctx.cancelled)() {
                return;
            }
            // Holder may be blocked outside PM accesses (e.g. on a mutex
            // held by us): bounded spin keeps the serialization best-effort
            // rather than deadlock-prone.
            if self.done.lock()[holder as usize] {
                self.rotate_from(holder);
                continue;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(20));
        }
    }
}

impl InterleaveStrategy for SystematicStrategy {
    fn name(&self) -> &'static str {
        "systematic"
    }

    fn before_load(&self, ctx: &AccessCtx<'_>) {
        self.wait_turn(ctx);
    }

    fn before_store(&self, ctx: &AccessCtx<'_>) {
        self.wait_turn(ctx);
    }

    fn thread_done(&self, tid: ThreadId) {
        if (tid.0 as usize) < self.num_threads as usize {
            self.done.lock()[tid.0 as usize] = true;
            // Free the token if the finishing thread held it.
            if self.token.load(Ordering::Acquire) == tid.0 {
                self.rotate_from(tid.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_runtime::site;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn ctx<'a>(tid: u32, cancelled: &'a dyn Fn() -> bool) -> AccessCtx<'a> {
        AccessCtx {
            off: 64,
            len: 8,
            site: site!("sys.test"),
            tid: ThreadId(tid),
            cancelled,
        }
    }

    #[test]
    fn token_holder_passes_after_quantum() {
        let s = SystematicStrategy::new(2, 2, 0);
        let cancelled = || false;
        // Thread 0 holds the token for 2 accesses, then thread 1 runs.
        s.before_load(&ctx(0, &cancelled));
        s.before_store(&ctx(0, &cancelled));
        let start = Instant::now();
        s.before_load(&ctx(1, &cancelled)); // token rotated to 1: immediate
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(s.accesses(), 3);
    }

    #[test]
    fn waiting_thread_proceeds_once_holder_finishes() {
        let s = Arc::new(SystematicStrategy::new(2, 8, 0));
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let cancelled = || false;
            let start = Instant::now();
            s2.before_load(&ctx(1, &cancelled)); // thread 0 holds the token
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        s.thread_done(ThreadId(0));
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(10), "waited {waited:?}");
        assert!(waited < Duration::from_secs(2));
    }

    #[test]
    fn cancellation_breaks_the_wait() {
        let s = SystematicStrategy::new(4, 1, 0);
        let cancelled = || true;
        let start = Instant::now();
        s.before_load(&ctx(3, &cancelled)); // not the holder, but cancelled
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn non_driver_threads_are_not_scheduled() {
        let s = SystematicStrategy::new(2, 1, 0);
        let cancelled = || false;
        let start = Instant::now();
        s.before_load(&ctx(7, &cancelled)); // tid beyond num_threads
        assert!(start.elapsed() < Duration::from_millis(10));
        assert_eq!(s.accesses(), 0);
    }
}

//! Cross-campaign sync-point skip counts (pitfall 3 of §4.2.2).
//!
//! When a sync point hangs a campaign, PMRace saves an increased initial
//! skip for it; later campaigns on the same seed start with that skip, so
//! the same unnecessary blocking (e.g. in initialization or cleanup code)
//! is not repeated.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Shared store of learned skip counts, keyed by `(target address, load
/// site id)`. One store per seed.
#[derive(Debug, Default)]
pub struct SkipStore {
    map: Mutex<HashMap<(u64, u32), u32>>,
}

impl SkipStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        SkipStore::default()
    }

    /// Initial skip for a sync point.
    #[must_use]
    pub fn get(&self, off: u64, site_id: u32) -> u32 {
        self.map.lock().get(&(off, site_id)).copied().unwrap_or(0)
    }

    /// Increase the initial skip after a hang on this sync point.
    pub fn bump(&self, off: u64, site_id: u32) {
        *self.map.lock().entry((off, site_id)).or_insert(0) += 1;
    }

    /// Total number of learned sync points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// `true` when nothing has been learned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let s = SkipStore::new();
        assert!(s.is_empty());
        assert_eq!(s.get(64, 1), 0);
        s.bump(64, 1);
        s.bump(64, 1);
        s.bump(64, 2);
        assert_eq!(s.get(64, 1), 2);
        assert_eq!(s.get(64, 2), 1);
        assert_eq!(s.get(128, 1), 0);
        assert_eq!(s.len(), 2);
    }
}

//! The PMRace conditional-wait scheduler (paper Fig. 6).
//!
//! Given one entry from the shared-access priority queue, loads of that
//! address (*sync points*) wait on a condition; the matching store signals
//! it and then stalls the writer before its flush, steering the execution
//! into reading non-persisted data.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pmrace_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmrace_pmem::ThreadId;
use pmrace_runtime::strategy::{AccessCtx, InterleaveStrategy};

use crate::{QueueEntry, SkipStore};

/// Timing and hang-detection knobs of the Fig. 6 algorithm.
///
/// Waiting is event-driven (a condition variable wakes parked threads on
/// signal/draft/disable), so `reader_poll` no longer burns CPU as a sleep
/// interval; it survives as the *budget unit*: the draft budget is
/// `reader_poll × all_block_iters` and the disable budget is
/// `reader_poll × disable_iters` of wall time, keeping the knob values (and
/// every serialized repro artifact carrying them) meaning the same thing
/// they always did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncTuning {
    /// Budget unit of `cond_wait` (the paper's `usleep(100)` interval).
    pub reader_poll: Duration,
    /// How long the writer stalls after `cond_signal` (the paper's
    /// `writerWaiting`, set to the typical total execution time of the
    /// original program).
    pub writer_wait: Duration,
    /// `reader_poll` units after which, if *all* live worker threads are
    /// blocked, a privileged thread is drafted (pitfall 2).
    pub all_block_iters: u32,
    /// `reader_poll` units after which a still-blocked thread disables the
    /// sync point and learns a skip for future campaigns (pitfall 3).
    pub disable_iters: u32,
    /// Random extra initial skips (0..=jitter) added per sync point each
    /// campaign, so repeated executions of the same plan block threads at
    /// *different* dynamic occurrences of the sync point — the
    /// execution-tier nondeterminism the paper relies on (§4.2.3).
    pub skip_jitter: u32,
}

impl Default for SyncTuning {
    fn default() -> Self {
        SyncTuning {
            reader_poll: Duration::from_micros(50),
            writer_wait: Duration::from_millis(2),
            all_block_iters: 20,
            // Generous: when all threads block, the drafted privileged
            // thread may need to run a whole op sequence (e.g. enough
            // inserts to trigger a resize) before the signalling store is
            // reached. Sync points that never signal cost this wait once;
            // the learned skip avoids it in later campaigns (pitfall 3).
            disable_iters: 1200,
            skip_jitter: 8,
        }
    }
}

/// The interleaving to force: one shared address plus its load (sync-point)
/// and store (signaller) instructions, and the CAS instructions whose failed
/// attempts double as retry decision points.
#[derive(Debug, Clone)]
pub struct SyncPlan {
    /// Target granule byte offset.
    pub off: u64,
    /// Site ids of loads to gate.
    pub load_sites: HashSet<u32>,
    /// Site ids of stores that signal.
    pub store_sites: HashSet<u32>,
    /// Site ids of CAS instructions: a *failed* attempt at one of these is
    /// stalled like a sync-point load, interposing the signalling store
    /// between the CAS read and its retry.
    pub cas_sites: HashSet<u32>,
}

impl From<&QueueEntry> for SyncPlan {
    fn from(e: &QueueEntry) -> Self {
        SyncPlan {
            off: e.off,
            load_sites: e.load_sites.iter().map(|s| s.id()).collect(),
            store_sites: e.store_sites.iter().map(|s| s.id()).collect(),
            cas_sites: e.cas_sites.iter().map(|s| s.id()).collect(),
        }
    }
}

/// Failed-CAS attempts past this streak are a retry storm: the scheduler
/// stops interposing and lets the loop resolve naturally, so forced
/// interleavings cannot livelock a heavily contended CAS word. Hardcoded
/// (not a [`SyncTuning`] knob) because tuning is serialized into every
/// repro artifact and this bound is part of the engagement *semantics*,
/// not campaign timing.
const CAS_STORM_BOUND: u32 = 8;

/// Upper bound of `cond_wait` engagements per CAS site per campaign; after
/// this many interpositions further failures pass through untouched.
const CAS_ENGAGE_CAP: u32 = 4;

/// Upper bound on one condvar park inside `cond_wait`: parked threads wake
/// at least this often to re-check campaign cancellation.
const CANCEL_POLL: Duration = Duration::from_millis(1);

/// Shared Fig. 6 wait state, guarded by one mutex + condvar so signal,
/// draft, and disable wake parked readers *immediately* instead of being
/// discovered by a sleep-poll loop.
#[derive(Debug)]
struct HubState {
    /// The condition `m`: set by the first matching store's `cond_signal`.
    signalled: bool,
    /// `sync.is_enabled` — cleared by the pitfall-3 disable path.
    enabled: bool,
    /// Thread granted bypass when all live threads block (pitfall 2).
    privileged: Option<ThreadId>,
    /// Threads currently parked in `cond_wait`.
    blocked: Vec<ThreadId>,
    /// Driver threads still executing (the all-block detection is over
    /// live threads; finished threads cannot signal anyone).
    active: usize,
}

#[derive(Debug)]
struct WaitHub {
    state: Mutex<HubState>,
    cv: Condvar,
}

/// The PM-aware conditional-wait strategy.
#[derive(Debug)]
pub struct PmraceStrategy {
    plan: SyncPlan,
    tuning: SyncTuning,
    skip_store: Arc<SkipStore>,
    /// Condition, enable flag, privilege, and blocked-set, event-driven.
    hub: WaitHub,
    /// Remaining skips per load site this campaign (pitfall 3).
    skips: Mutex<HashMap<u32, u32>>,
    /// The skips the campaign *started* with (learned + realized jitter),
    /// frozen at construction so record/replay can pin them later.
    initial_skips: Vec<(u32, u32)>,
    /// `cond_wait` engagements per CAS site this campaign (bounded by
    /// [`CAS_ENGAGE_CAP`]).
    cas_engaged: Mutex<HashMap<u32, u32>>,
    rng: Mutex<StdRng>,
    waits: AtomicUsize,
    signals: AtomicUsize,
}

impl PmraceStrategy {
    /// Build a strategy for one campaign.
    ///
    /// `num_threads` is the number of target worker threads (used for the
    /// all-blocked detection); initial skips per sync point are loaded from
    /// `skip_store` — the persisted pitfall-3 state for this seed.
    #[must_use]
    pub fn new(
        plan: SyncPlan,
        num_threads: usize,
        skip_store: Arc<SkipStore>,
        tuning: SyncTuning,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let skips: HashMap<u32, u32> = plan
            .load_sites
            .iter()
            .map(|&s| {
                let jitter = if tuning.skip_jitter > 0 {
                    rng.random_range(0..=tuning.skip_jitter)
                } else {
                    0
                };
                (s, skip_store.get(plan.off, s) + jitter)
            })
            .collect();
        Self::build(plan, num_threads, skip_store, tuning, skips, rng)
    }

    /// Build a strategy with exact, pre-realized skip counts and no jitter.
    ///
    /// Used by schedule replay: a recorded campaign's realized skips (learned
    /// base + drawn jitter, as returned by [`initial_skips`](Self::initial_skips))
    /// are pinned verbatim so the sync points engage at the *same* dynamic
    /// occurrences as in the recorded run.
    #[must_use]
    pub fn with_skips(
        plan: SyncPlan,
        num_threads: usize,
        skips: HashMap<u32, u32>,
        tuning: SyncTuning,
        seed: u64,
    ) -> Self {
        // Jitter would re-randomize what the caller just pinned.
        let tuning = SyncTuning {
            skip_jitter: 0,
            ..tuning
        };
        let full: HashMap<u32, u32> = plan
            .load_sites
            .iter()
            .map(|&s| (s, skips.get(&s).copied().unwrap_or(0)))
            .collect();
        let rng = StdRng::seed_from_u64(seed);
        Self::build(
            plan,
            num_threads,
            Arc::new(SkipStore::new()),
            tuning,
            full,
            rng,
        )
    }

    fn build(
        plan: SyncPlan,
        num_threads: usize,
        skip_store: Arc<SkipStore>,
        tuning: SyncTuning,
        skips: HashMap<u32, u32>,
        rng: StdRng,
    ) -> Self {
        let mut initial_skips: Vec<(u32, u32)> = skips.iter().map(|(&s, &n)| (s, n)).collect();
        initial_skips.sort_unstable();
        PmraceStrategy {
            plan,
            tuning,
            skip_store,
            hub: WaitHub {
                state: Mutex::new(HubState {
                    signalled: false,
                    enabled: true,
                    privileged: None,
                    blocked: Vec::new(),
                    active: num_threads,
                }),
                cv: Condvar::new(),
            },
            skips: Mutex::new(skips),
            initial_skips,
            cas_engaged: Mutex::new(HashMap::new()),
            rng: Mutex::new(rng),
            waits: AtomicUsize::new(0),
            signals: AtomicUsize::new(0),
        }
    }

    /// The skip counts this campaign started with, per load site — the sum
    /// of learned pitfall-3 skips and the jitter realized at construction.
    /// Sorted by site id; feed to [`with_skips`](Self::with_skips) to replay.
    #[must_use]
    pub fn initial_skips(&self) -> &[(u32, u32)] {
        &self.initial_skips
    }

    /// The plan being forced.
    #[must_use]
    pub fn plan(&self) -> &SyncPlan {
        &self.plan
    }

    /// Number of `cond_wait`s entered (telemetry for the experiments).
    #[must_use]
    pub fn waits_entered(&self) -> usize {
        self.waits.load(Ordering::Relaxed)
    }

    /// Number of `cond_signal`s fired.
    #[must_use]
    pub fn signals_sent(&self) -> usize {
        self.signals.load(Ordering::Relaxed)
    }

    /// `false` once the pitfall-3 path disabled this campaign's sync point.
    #[must_use]
    pub fn sync_point_enabled(&self) -> bool {
        self.hub.state.lock().enabled
    }

    /// Draft a privileged thread among the currently *blocked* ones —
    /// drafting among all `num_threads` could pick a finished thread, and a
    /// privilege granted to a thread that never runs again is silently lost
    /// (its `thread_done` already ran), leaving every parked reader to burn
    /// the full disable budget.
    fn draft_privileged(&self, st: &mut HubState) {
        let mut candidates = st.blocked.clone();
        candidates.sort_unstable_by_key(|t| t.0);
        let i = self.rng.lock().random_range(0..candidates.len());
        st.privileged = Some(candidates[i]);
        telemetry::add(telemetry::Counter::PlanPrivilegedDrafts, 1);
    }

    fn matches_addr(&self, off: u64) -> bool {
        off / 8 == self.plan.off / 8
    }

    /// `cond_wait` (Fig. 6 lines 3–24).
    fn cond_wait(&self, ctx: &AccessCtx<'_>) {
        {
            let st = self.hub.state.lock();
            if !st.enabled {
                return;
            }
            if st.privileged == Some(ctx.tid) {
                return; // t->bypass_sync
            }
        }
        {
            let mut skips = self.skips.lock();
            if let Some(s) = skips.get_mut(&ctx.site.id()) {
                if *s > 0 {
                    *s -= 1; // sync.skip--
                    telemetry::add(telemetry::Counter::PlanSkipsConsumed, 1);
                    return;
                }
            }
        }
        self.waits.fetch_add(1, Ordering::Relaxed);
        telemetry::add(telemetry::Counter::PlanWaits, 1);
        let start = Instant::now();
        let draft_after = self.tuning.reader_poll * self.tuning.all_block_iters;
        let disable_after = self.tuning.reader_poll * self.tuning.disable_iters;
        let mut st = self.hub.state.lock();
        st.blocked.push(ctx.tid);
        loop {
            if st.signalled || !st.enabled || st.privileged == Some(ctx.tid) {
                break;
            }
            if (ctx.cancelled)() {
                break;
            }
            let waited = start.elapsed();
            if waited >= disable_after {
                // Some threads block with no signaller in sight: disable the
                // sync point and remember to skip it next campaign (line 10,
                // lines 6/21).
                st.enabled = false;
                self.skip_store.bump(self.plan.off, ctx.site.id());
                telemetry::add(telemetry::Counter::PlanSyncDisabled, 1);
                self.hub.cv.notify_all();
                break;
            }
            if waited >= draft_after
                && st.privileged.is_none()
                && st.blocked.len() >= st.active.max(1)
            {
                // All live threads block: draft a privileged thread
                // (lines 13–16); the loop condition releases it on the next
                // turn, and `notify_all` wakes it if it is parked.
                self.draft_privileged(&mut st);
                self.hub.cv.notify_all();
                continue;
            }
            // Park until a signal/draft/disable wakes us, re-checking
            // cancellation and the budget boundaries at least every
            // `CANCEL_POLL`.
            let next_deadline = if waited < draft_after {
                draft_after
            } else {
                disable_after
            };
            let slice = (next_deadline - waited).min(CANCEL_POLL);
            self.hub.cv.wait_for(&mut st, slice);
        }
        let me = ctx.tid;
        st.blocked.retain(|&t| t != me);
    }

    /// `cond_signal` (Fig. 6 lines 26–30).
    fn cond_signal(&self, _ctx: &AccessCtx<'_>) {
        let first = {
            let mut st = self.hub.state.lock();
            if !st.enabled {
                return;
            }
            let first = !st.signalled;
            st.signalled = true;
            first
        };
        if first {
            self.hub.cv.notify_all();
            self.signals.fetch_add(1, Ordering::Relaxed);
            telemetry::add(telemetry::Counter::PlanAlternationsFired, 1);
            // Stall the writer so readers run their sync-point loads before
            // this store is flushed (the stall happens outside the hub lock:
            // the woken readers need it to leave `cond_wait`).
            std::thread::sleep(self.tuning.writer_wait);
        }
    }
}

impl InterleaveStrategy for PmraceStrategy {
    fn name(&self) -> &'static str {
        "pmrace"
    }

    fn before_load(&self, ctx: &AccessCtx<'_>) {
        if self.matches_addr(ctx.off) && self.plan.load_sites.contains(&ctx.site.id()) {
            self.cond_wait(ctx);
        }
    }

    fn after_store(&self, ctx: &AccessCtx<'_>) {
        if self.matches_addr(ctx.off) && self.plan.store_sites.contains(&ctx.site.id()) {
            self.cond_signal(ctx);
        }
    }

    fn on_cas_fail(&self, ctx: &AccessCtx<'_>, attempt: u32) {
        if attempt > CAS_STORM_BOUND || !self.matches_addr(ctx.off) {
            return;
        }
        let site = ctx.site.id();
        if !self.plan.cas_sites.contains(&site) && !self.plan.load_sites.contains(&site) {
            return;
        }
        {
            let mut engaged = self.cas_engaged.lock();
            let n = engaged.entry(site).or_insert(0);
            if *n >= CAS_ENGAGE_CAP {
                return;
            }
            *n += 1;
        }
        // The thread has just observed the word and is about to retry: park
        // it on the condition so the planned store lands *between* the CAS
        // read and the retry — the interleaving a lock-free publish race
        // needs. cond_wait's skip accounting, privileged drafting and
        // disable path all apply as for plain sync-point loads.
        self.cond_wait(ctx);
    }

    fn thread_done(&self, tid: ThreadId) {
        let mut st = self.hub.state.lock();
        st.active = st.active.saturating_sub(1);
        // A finished privileged thread frees the slot.
        if st.privileged == Some(tid) {
            st.privileged = None;
        }
        // If every remaining live thread is already parked, nobody is left
        // to signal: draft a replacement *now*, chaining execution until
        // some thread reaches the signalling store, instead of letting the
        // parked readers burn their whole disable budget.
        if st.privileged.is_none() && !st.blocked.is_empty() && st.blocked.len() >= st.active.max(1)
        {
            self.draft_privileged(&mut st);
        }
        self.hub.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_runtime::{site, Site};
    use std::time::Instant;

    fn plan_for(off: u64, load: Site, store: Site) -> SyncPlan {
        SyncPlan {
            off,
            load_sites: [load.id()].into(),
            store_sites: [store.id()].into(),
            cas_sites: HashSet::new(),
        }
    }

    fn fast_tuning() -> SyncTuning {
        SyncTuning {
            reader_poll: Duration::from_micros(100),
            writer_wait: Duration::from_millis(1),
            all_block_iters: 5,
            disable_iters: 400,
            skip_jitter: 0,
        }
    }

    fn ctx<'a>(off: u64, site: Site, tid: u32, cancelled: &'a dyn Fn() -> bool) -> AccessCtx<'a> {
        AccessCtx {
            off,
            len: 8,
            site,
            tid: ThreadId(tid),
            cancelled,
        }
    }

    #[test]
    fn reader_blocks_until_writer_signals() {
        let (l, s) = (site!("load-a"), site!("store-a"));
        let strat = Arc::new(PmraceStrategy::new(
            plan_for(64, l, s),
            2,
            Arc::new(SkipStore::new()),
            fast_tuning(),
            7,
        ));
        let strat2 = Arc::clone(&strat);
        let reader = std::thread::spawn(move || {
            let cancelled = || false;
            let start = Instant::now();
            strat2.before_load(&ctx(64, l, 1, &cancelled));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(10));
        let cancelled = || false;
        strat.after_store(&ctx(64, s, 0, &cancelled));
        let waited = reader.join().unwrap();
        assert!(
            waited >= Duration::from_millis(5),
            "reader returned early: {waited:?}"
        );
        assert_eq!(strat.signals_sent(), 1);
        assert_eq!(strat.waits_entered(), 1);
    }

    #[test]
    fn non_matching_accesses_pass_through() {
        let (l, s) = (site!("load-b"), site!("store-b"));
        let strat = PmraceStrategy::new(
            plan_for(64, l, s),
            2,
            Arc::new(SkipStore::new()),
            fast_tuning(),
            7,
        );
        let cancelled = || false;
        let start = Instant::now();
        strat.before_load(&ctx(128, l, 0, &cancelled)); // wrong address
        strat.before_load(&ctx(64, s, 0, &cancelled)); // wrong site kind
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(strat.waits_entered(), 0);
    }

    #[test]
    fn learned_skips_bypass_the_wait() {
        let (l, s) = (site!("load-c"), site!("store-c"));
        let skips = Arc::new(SkipStore::new());
        skips.bump(64, l.id());
        let strat = PmraceStrategy::new(plan_for(64, l, s), 2, skips, fast_tuning(), 7);
        let cancelled = || false;
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 0, &cancelled)); // consumed the skip
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(strat.waits_entered(), 0);
    }

    #[test]
    fn all_blocked_threads_draft_a_privileged_one_and_disable() {
        let (l, s) = (site!("load-d"), site!("store-d"));
        let skips = Arc::new(SkipStore::new());
        let strat = Arc::new(PmraceStrategy::new(
            plan_for(64, l, s),
            2,
            Arc::clone(&skips),
            fast_tuning(),
            7,
        ));
        let mut handles = Vec::new();
        for t in 0..2u32 {
            let st = Arc::clone(&strat);
            handles.push(std::thread::spawn(move || {
                let cancelled = || false;
                let start = Instant::now();
                st.before_load(&ctx(64, l, t, &cancelled));
                start.elapsed()
            }));
        }
        for h in handles {
            let waited = h.join().unwrap();
            // Both must escape: one privileged, the other via disable.
            assert!(waited < Duration::from_secs(2), "thread stuck: {waited:?}");
        }
        // The non-privileged thread disabled the sync point and learned a skip.
        assert!(!strat.sync_point_enabled() || !skips.is_empty());
    }

    #[test]
    fn cancellation_breaks_the_wait() {
        let (l, s) = (site!("load-e"), site!("store-e"));
        let strat = PmraceStrategy::new(
            plan_for(64, l, s),
            4,
            Arc::new(SkipStore::new()),
            fast_tuning(),
            7,
        );
        let cancelled = || true;
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 0, &cancelled));
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn signal_disables_future_waits() {
        let (l, s) = (site!("load-f"), site!("store-f"));
        let strat = PmraceStrategy::new(
            plan_for(64, l, s),
            2,
            Arc::new(SkipStore::new()),
            fast_tuning(),
            7,
        );
        let cancelled = || false;
        strat.after_store(&ctx(64, s, 0, &cancelled));
        // m is set: cond_wait's while loop never spins.
        let start = Instant::now();
        strat.before_load(&ctx(64, l, 1, &cancelled));
        assert!(start.elapsed() < Duration::from_millis(50));
        // A second signal does not stall the writer again (pitfall 1).
        let start = Instant::now();
        strat.after_store(&ctx(64, s, 0, &cancelled));
        assert!(start.elapsed() < Duration::from_millis(1));
        assert_eq!(strat.signals_sent(), 1);
    }

    #[test]
    fn with_skips_pins_realized_counts_without_jitter() {
        let (l, s) = (site!("load-g"), site!("store-g"));
        let jittery = SyncTuning {
            skip_jitter: 8,
            ..fast_tuning()
        };
        let recorded = PmraceStrategy::new(
            plan_for(64, l, s),
            2,
            Arc::new(SkipStore::new()),
            jittery,
            42,
        );
        let skips: HashMap<u32, u32> = recorded.initial_skips().iter().copied().collect();
        let replayed =
            PmraceStrategy::with_skips(plan_for(64, l, s), 2, skips.clone(), jittery, 42);
        assert_eq!(replayed.initial_skips(), recorded.initial_skips());
        // The pinned skips bypass the wait exactly that many times.
        let n = skips[&l.id()];
        let cancelled = || false;
        for _ in 0..n {
            let start = Instant::now();
            replayed.before_load(&ctx(64, l, 0, &cancelled));
            assert!(start.elapsed() < Duration::from_millis(50));
        }
        assert_eq!(replayed.waits_entered(), 0);
    }

    #[test]
    fn plan_from_queue_entry() {
        let e = QueueEntry {
            off: 640,
            load_sites: vec![site!("ql")],
            store_sites: vec![site!("qs")],
            cas_sites: vec![site!("qc")],
            priority: 3,
        };
        let p = SyncPlan::from(&e);
        assert_eq!(p.off, 640);
        assert_eq!(p.load_sites.len(), 1);
        assert_eq!(p.store_sites.len(), 1);
        assert_eq!(p.cas_sites.len(), 1);
    }

    fn cas_plan(off: u64, cas: Site, store: Site) -> SyncPlan {
        SyncPlan {
            off,
            load_sites: HashSet::new(),
            store_sites: [store.id()].into(),
            cas_sites: [cas.id()].into(),
        }
    }

    #[test]
    fn failed_cas_blocks_until_writer_signals() {
        let (c, s) = (site!("cas-a"), site!("store-cas-a"));
        let strat = Arc::new(PmraceStrategy::new(
            cas_plan(64, c, s),
            2,
            Arc::new(SkipStore::new()),
            fast_tuning(),
            7,
        ));
        let strat2 = Arc::clone(&strat);
        let retrier = std::thread::spawn(move || {
            let cancelled = || false;
            let start = Instant::now();
            strat2.on_cas_fail(&ctx(64, c, 1, &cancelled), 1);
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(10));
        let cancelled = || false;
        strat.after_store(&ctx(64, s, 0, &cancelled));
        let waited = retrier.join().unwrap();
        assert!(
            waited >= Duration::from_millis(5),
            "failed CAS returned early: {waited:?}"
        );
        assert_eq!(strat.waits_entered(), 1);
    }

    #[test]
    fn cas_retry_storms_and_engagement_caps_bound_the_stall() {
        let (c, s) = (site!("cas-b"), site!("store-cas-b"));
        let strat = PmraceStrategy::new(
            cas_plan(64, c, s),
            2,
            Arc::new(SkipStore::new()),
            fast_tuning(),
            7,
        );
        let cancelled = || false;
        // Signal first so every engaged wait falls straight through; the
        // engagement *count* is what this test measures.
        strat.after_store(&ctx(64, s, 0, &cancelled));
        // Deep-retry storm: attempts past the bound never engage.
        strat.on_cas_fail(&ctx(64, c, 1, &cancelled), CAS_STORM_BOUND + 1);
        assert_eq!(strat.waits_entered(), 0);
        // Bounded engagement: at most CAS_ENGAGE_CAP waits per site.
        for _ in 0..(CAS_ENGAGE_CAP + 3) {
            strat.on_cas_fail(&ctx(64, c, 1, &cancelled), 1);
        }
        assert_eq!(strat.waits_entered(), CAS_ENGAGE_CAP as usize);
        // Unplanned site or address: never engages.
        strat.on_cas_fail(&ctx(128, c, 1, &cancelled), 1);
        strat.on_cas_fail(&ctx(64, s, 1, &cancelled), 1);
        assert_eq!(strat.waits_entered(), CAS_ENGAGE_CAP as usize);
    }
}

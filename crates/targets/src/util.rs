//! Shared helpers for target implementations: PM spin locks and hashing.

use pmrace_runtime::{PmView, RtError, Site};

/// Fibonacci-style 64-bit hash used by all hash-based targets.
#[must_use]
pub fn hash64(key: u64) -> u64 {
    let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 32;
    h
}

/// Acquire a word-sized spin lock stored *in PM* at `off` by CAS-ing 0 -> 1.
///
/// The lock word is persisted after acquisition when `persist_after` is set
/// — the pattern that creates *PM Synchronization Inconsistency* (the lock
/// survives a crash in locked state while the owning thread does not).
///
/// # Errors
///
/// [`RtError::Timeout`] when the campaign deadline fires while spinning —
/// how seeded deadlock bugs surface as hangs.
pub fn pm_lock_acquire(
    view: &PmView,
    off: u64,
    site: Site,
    persist_after: bool,
) -> Result<(), RtError> {
    loop {
        let (ok, _) = view.cas_u64(off, 0, 1, site)?;
        if ok {
            if persist_after {
                view.persist(off, 8, site)?;
            }
            return Ok(());
        }
        view.spin_yield()?;
    }
}

/// Release a PM spin lock; persists the release when `persist_after`.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn pm_lock_release(
    view: &PmView,
    off: u64,
    site: Site,
    persist_after: bool,
) -> Result<(), RtError> {
    view.store_u64(off, 0u64, site)?;
    if persist_after {
        view.persist(off, 8, site)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::{site, Session, SessionConfig};
    use std::sync::Arc;

    #[test]
    fn hash_spreads_small_keys() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..64u64 {
            seen.insert(hash64(k) % 16);
        }
        assert!(seen.len() >= 12, "hash clusters small keys: {}", seen.len());
    }

    #[test]
    fn lock_roundtrip_and_mutual_exclusion() {
        let s = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let a = s.view(ThreadId(0));
        pm_lock_acquire(&a, 64, site!("lk"), true).unwrap();
        // Second acquisition must fail until release; use a short-deadline
        // session to observe the spin timing out.
        let s2 = Session::new(
            Arc::clone(s.pool()),
            SessionConfig {
                deadline: std::time::Duration::from_millis(50),
                ..SessionConfig::default()
            },
        );
        let b = s2.view(ThreadId(1));
        assert_eq!(
            pm_lock_acquire(&b, 64, site!("lk2"), false).unwrap_err(),
            RtError::Timeout
        );
        pm_lock_release(&a, 64, site!("unlk"), true).unwrap();
        let s3 = Session::new(Arc::clone(s.pool()), SessionConfig::default());
        let c = s3.view(ThreadId(2));
        pm_lock_acquire(&c, 64, site!("lk3"), false).unwrap();
    }
}

//! CCEH: cache-line-conscious extendible hashing (Table 1, row 3).
//!
//! Directory of segment pointers indexed by the top `global_depth` bits of
//! the key hash; segment-grained locks; segment splits and directory
//! doubling. Carries the two bugs PMRace found:
//!
//! 6. **Sync** — segment locks are persistent and never released by the
//!    restart path (`CCEH.h:86`): post-crash accesses to a segment whose
//!    lock persisted as held hang forever.
//! 7. **Intra** — directory doubling stores the new `capacity`, reads it
//!    back *before flushing it* (`CCEH.h:165` / `CCEH.cpp:171`) and durably
//!    writes directory metadata derived from it; a crash leaves an undefined
//!    capacity and leaks the allocated segment array.

use std::sync::Arc;

use pmrace_pmem::PmAllocator;
use pmrace_runtime::{site, PmView, RtError, Session, SyncVarAnnotation, TU64};

use crate::util::{hash64, pm_lock_acquire, pm_lock_release};
use crate::{Op, OpResult, Target, TargetSpec};

// Root layout.
const R_GDEPTH: u64 = 0;
const R_DIR_OFF: u64 = 8;
const R_CAPACITY: u64 = 16;
const R_DIR_LOCK: u64 = 24;
const R_DIR_META: u64 = 32;
const ROOT_SIZE: usize = 64;

// Segment layout: local depth, lock, then 16 (key, value) slots.
const S_LDEPTH: u64 = 0;
const S_LOCK: u64 = 8;
const S_SLOTS: u64 = 16;
const SLOTS: u64 = 16;
const SEG_SIZE: usize = 16 + 16 * 16;

const INITIAL_GDEPTH: u64 = 1;

/// The CCEH instance bound to a session's pool.
#[derive(Debug)]
pub struct Cceh {
    alloc: PmAllocator,
    root: u64,
}

/// Registration entry for the fuzzer.
pub static SPEC: TargetSpec = TargetSpec::new(
    "CCEH",
    |session| Ok(Arc::new(Cceh::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(Cceh::recover(session)?) as Arc<dyn Target>),
    || pmrace_pmem::PoolOpts::small().heavy(), // libpmemobj-style init
);

impl Cceh {
    /// Format the pool and build a fresh 2-segment table.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        let capacity = 1u64 << INITIAL_GDEPTH;
        let dir = alloc.alloc((capacity * 8) as usize, view.tid())?;
        let mut first_seg = 0;
        for i in 0..capacity {
            let seg = Self::alloc_segment(&alloc, &view, INITIAL_GDEPTH)?;
            if i == 0 {
                first_seg = seg;
            }
            view.ntstore_u64(dir + i * 8, seg, site!("cceh.init.dir_entry"))?;
        }
        view.ntstore_u64(root + R_GDEPTH, INITIAL_GDEPTH, site!("cceh.init.gdepth"))?;
        view.ntstore_u64(root + R_DIR_OFF, dir, site!("cceh.init.dir_off"))?;
        view.ntstore_u64(root + R_CAPACITY, capacity, site!("cceh.init.capacity"))?;
        view.ntstore_u64(root + R_DIR_LOCK, 0u64, site!("cceh.init.dir_lock"))?;
        view.ntstore_u64(root + R_DIR_META, 0u64, site!("cceh.init.dir_meta"))?;
        let this = Cceh { alloc, root };
        this.register_annotations(session, first_seg);
        Ok(this)
    }

    /// Reopen an existing pool. The restart path fixes the directory lock
    /// but — Bug 6 — **never releases segment locks**.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        view.ntstore_u64(root + R_DIR_LOCK, 0u64, site!("cceh.recover.dir_lock"))?;
        // NOTE (Bug 6): segment locks (CCEH.h:86) are not reinitialized.
        let dir = view
            .load_u64(root + R_DIR_OFF, site!("cceh.recover.read_dir"))?
            .value();
        let first_seg = view.load_u64(dir, site!("cceh.recover.read_seg0"))?.value();
        let this = Cceh { alloc, root };
        this.register_annotations(session, first_seg);
        Ok(this)
    }

    fn register_annotations(&self, session: &Arc<Session>, first_seg: u64) {
        session.annotate_sync_var(SyncVarAnnotation {
            name: "cceh.segment_lock".into(),
            off: first_seg + S_LOCK,
            size: 8,
            init_val: 0,
        });
        session.annotate_sync_var(SyncVarAnnotation {
            name: "cceh.dir_lock".into(),
            off: self.root + R_DIR_LOCK,
            size: 8,
            init_val: 0,
        });
    }

    fn alloc_segment(alloc: &PmAllocator, view: &PmView, ldepth: u64) -> Result<u64, RtError> {
        let seg = alloc.alloc(SEG_SIZE, view.tid())?;
        view.ntstore_u64(seg + S_LDEPTH, ldepth, site!("cceh.seg.ldepth"))?;
        view.ntstore_u64(seg + S_LOCK, 0u64, site!("cceh.seg.lock_init"))?;
        for s in 0..SLOTS {
            view.ntstore_u64(seg + S_SLOTS + s * 16, 0u64, site!("cceh.seg.zero_key"))?;
            view.ntstore_u64(seg + S_SLOTS + s * 16 + 8, 0u64, site!("cceh.seg.zero_val"))?;
        }
        Ok(seg)
    }

    fn dir_index(hash: u64, gdepth: u64) -> u64 {
        if gdepth == 0 {
            0
        } else {
            hash >> (64 - gdepth)
        }
    }

    fn seg_for(&self, view: &PmView, key: u64) -> Result<(TU64, u64, u64), RtError> {
        let gd = view
            .load_u64(self.root + R_GDEPTH, site!("cceh.read_gdepth"))?
            .value();
        let dir = view.load_u64(self.root + R_DIR_OFF, site!("cceh.read_dir_off"))?;
        let idx = Self::dir_index(hash64(key), gd);
        let seg = view.load_u64(dir + idx * 8, site!("cceh.read_dir_entry"))?;
        Ok((seg, gd, idx))
    }

    /// Insert or overwrite `key -> value`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RtError::Timeout`] on hangs).
    pub fn put(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("cceh.put"));
        loop {
            let (seg, gd, idx) = self.seg_for(view, key)?;
            // Bug 6 shape: segment locks are persisted after acquisition.
            pm_lock_acquire(
                view,
                seg.value() + S_LOCK,
                site!("CCEH.h:86.seg_lock"),
                true,
            )?;
            // Revalidate against splits that raced the lock.
            let (seg2, gd2, _) = self.seg_for(view, key)?;
            if seg2.value() != seg.value() || gd2 != gd {
                pm_lock_release(
                    view,
                    seg.value() + S_LOCK,
                    site!("cceh.put.unlock_raced"),
                    true,
                )?;
                continue;
            }
            let h = hash64(key);
            let start = h % SLOTS;
            let mut free: Option<u64> = None;
            for p in 0..SLOTS {
                let s = (start + p) % SLOTS;
                let koff = seg.clone() + S_SLOTS + s * 16;
                let k = view.load_u64(koff.clone(), site!("cceh.put.read_key"))?;
                if k == key {
                    view.store_u64(koff.clone() + 8u64, value, site!("cceh.put.store_val"))?;
                    view.persist(koff + 8u64, 8, site!("cceh.put.flush_val"))?;
                    pm_lock_release(view, seg.value() + S_LOCK, site!("cceh.put.unlock"), true)?;
                    return Ok(OpResult::Done);
                }
                if k == 0u64 && free.is_none() {
                    free = Some(s);
                }
            }
            if let Some(s) = free {
                let koff = seg.clone() + S_SLOTS + s * 16;
                view.store_u64(koff.clone() + 8u64, value, site!("cceh.put.store_new_val"))?;
                view.store_u64(koff.clone(), key, site!("cceh.put.store_new_key"))?;
                view.persist(koff, 16, site!("cceh.put.flush_pair"))?;
                pm_lock_release(view, seg.value() + S_LOCK, site!("cceh.put.unlock"), true)?;
                return Ok(OpResult::Done);
            }
            // Segment full: split (keeping the segment lock) then retry.
            self.split(view, seg.value(), gd, idx)?;
            pm_lock_release(
                view,
                seg.value() + S_LOCK,
                site!("cceh.put.unlock_split"),
                true,
            )?;
        }
    }

    /// Split a full segment; doubles the directory when the segment's local
    /// depth equals the global depth (the Bug 7 path).
    fn split(&self, view: &PmView, seg: u64, gd: u64, _idx: u64) -> Result<(), RtError> {
        view.branch(site!("cceh.split"));
        let ld = view
            .load_u64(seg + S_LDEPTH, site!("cceh.split.read_ldepth"))?
            .value();
        if ld >= gd {
            self.double_directory(view)?;
        }
        // Re-read globals after a potential doubling.
        let gd = view
            .load_u64(self.root + R_GDEPTH, site!("cceh.split.read_gdepth"))?
            .value();
        let dir = view
            .load_u64(self.root + R_DIR_OFF, site!("cceh.split.read_dir"))?
            .value();
        let new_seg = Self::alloc_segment(&self.alloc, view, ld + 1)?;
        // Redistribute: pairs whose (ld+1)-th hash bit is 1 move over.
        let bit = 1u64 << (63 - ld);
        for s in 0..SLOTS {
            let koff = seg + S_SLOTS + s * 16;
            let k = view.load_u64(koff, site!("cceh.split.read_pair"))?;
            if k == 0u64 || hash64(k.value()) & bit == 0 {
                continue;
            }
            let v = view.load_u64(koff + 8, site!("cceh.split.read_pair_val"))?;
            let h = hash64(k.value());
            let start = h % SLOTS;
            for p in 0..SLOTS {
                let ns = (start + p) % SLOTS;
                let nkoff = new_seg + S_SLOTS + ns * 16;
                let nk = view.load_u64(nkoff, site!("cceh.split.scan_new"))?;
                if nk == 0u64 {
                    view.ntstore_u64(nkoff, k.clone(), site!("cceh.split.move_key"))?;
                    view.ntstore_u64(nkoff + 8, v.clone(), site!("cceh.split.move_val"))?;
                    break;
                }
            }
            view.ntstore_u64(koff, 0u64, site!("cceh.split.clear_key"))?;
        }
        // Repoint directory entries whose (ld+1)-th bit is set and that
        // currently reference the old segment.
        let capacity = 1u64 << gd;
        for i in 0..capacity {
            let e = view.load_u64(dir + i * 8, site!("cceh.split.read_entry"))?;
            if e.value() != seg {
                continue;
            }
            let prefix_bit = if gd == 0 { 0 } else { (i << (64 - gd)) & bit };
            if prefix_bit != 0 {
                view.ntstore_u64(dir + i * 8, new_seg, site!("cceh.split.repoint"))?;
            }
        }
        view.ntstore_u64(seg + S_LDEPTH, ld + 1, site!("cceh.split.bump_ldepth"))?;
        Ok(())
    }

    /// Directory doubling — Bug 7: `capacity` is stored (`CCEH.h:165`),
    /// read back *unflushed* (`CCEH.cpp:171`), and directory metadata
    /// derived from the unflushed value is durably written.
    fn double_directory(&self, view: &PmView) -> Result<(), RtError> {
        view.branch(site!("cceh.double"));
        pm_lock_acquire(
            view,
            self.root + R_DIR_LOCK,
            site!("cceh.double.dir_lock"),
            true,
        )?;
        let gd = view
            .load_u64(self.root + R_GDEPTH, site!("cceh.double.read_gdepth"))?
            .value();
        let old_dir = view
            .load_u64(self.root + R_DIR_OFF, site!("cceh.double.read_dir"))?
            .value();
        let old_cap = 1u64 << gd;
        // Store the doubled capacity with a plain store (no flush yet)...
        view.store_u64(
            self.root + R_CAPACITY,
            old_cap * 2,
            site!("CCEH.h:165.store_capacity"),
        )?;
        // ...and immediately read it back: an intra-thread candidate.
        let cap = view.load_u64(self.root + R_CAPACITY, site!("CCEH.cpp:171.read_capacity"))?;
        let new_dir = self
            .alloc
            .alloc((cap.value() * 8) as usize, view.tid())
            .map_err(RtError::from)?;
        for i in 0..old_cap {
            let e = view.load_u64(old_dir + i * 8, site!("cceh.double.copy_read"))?;
            view.ntstore_u64(new_dir + i * 16, e.clone(), site!("cceh.double.copy_a"))?;
            view.ntstore_u64(new_dir + i * 16 + 8, e, site!("cceh.double.copy_b"))?;
        }
        // Durable side effect of the unflushed capacity: directory metadata
        // derived from it is written with a non-temporal store.
        view.ntstore_u64(
            self.root + R_DIR_META,
            cap,
            site!("CCEH.cpp:173.store_dir_meta"),
        )?;
        view.ntstore_u64(
            self.root + R_DIR_OFF,
            new_dir,
            site!("cceh.double.swap_dir"),
        )?;
        view.ntstore_u64(
            self.root + R_GDEPTH,
            gd + 1,
            site!("cceh.double.bump_gdepth"),
        )?;
        view.persist(
            self.root + R_CAPACITY,
            8,
            site!("cceh.double.flush_capacity"),
        )?;
        pm_lock_release(
            view,
            self.root + R_DIR_LOCK,
            site!("cceh.double.unlock"),
            true,
        )?;
        Ok(())
    }

    /// Lookup.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("cceh.get"));
        let (seg, _, _) = self.seg_for(view, key)?;
        let h = hash64(key);
        let start = h % SLOTS;
        for p in 0..SLOTS {
            let s = (start + p) % SLOTS;
            let koff = seg.clone() + S_SLOTS + s * 16;
            let k = view.load_u64(koff.clone(), site!("cceh.get.read_key"))?;
            if k == key {
                let v = view.load_u64(koff + 8u64, site!("cceh.get.read_val"))?;
                return Ok(OpResult::Found(v.value()));
            }
        }
        Ok(OpResult::Missing)
    }

    /// Delete.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn del(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("cceh.del"));
        loop {
            let (seg, gd, _) = self.seg_for(view, key)?;
            pm_lock_acquire(view, seg.value() + S_LOCK, site!("cceh.del.lock"), true)?;
            let (seg2, gd2, _) = self.seg_for(view, key)?;
            if seg2.value() != seg.value() || gd2 != gd {
                pm_lock_release(
                    view,
                    seg.value() + S_LOCK,
                    site!("cceh.del.unlock_raced"),
                    true,
                )?;
                continue;
            }
            let h = hash64(key);
            let start = h % SLOTS;
            let mut found = false;
            for p in 0..SLOTS {
                let s = (start + p) % SLOTS;
                let koff = seg.clone() + S_SLOTS + s * 16;
                let k = view.load_u64(koff.clone(), site!("cceh.del.read_key"))?;
                if k == key {
                    view.store_u64(koff.clone(), 0u64, site!("cceh.del.clear"))?;
                    view.persist(koff, 8, site!("cceh.del.flush"))?;
                    found = true;
                    break;
                }
            }
            pm_lock_release(view, seg.value() + S_LOCK, site!("cceh.del.unlock"), true)?;
            return Ok(if found {
                OpResult::Done
            } else {
                OpResult::Missing
            });
        }
    }
}

impl Target for Cceh {
    fn name(&self) -> &'static str {
        "CCEH"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        match *op {
            Op::Insert { key, value } | Op::Update { key, value } => {
                self.put(view, key.max(1), value)
            }
            Op::Delete { key } => self.del(view, key.max(1)),
            Op::Get { key } => self.get(view, key.max(1)),
            Op::Incr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.wrapping_add(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
            Op::Decr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.saturating_sub(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::SessionConfig;

    fn fresh() -> (Arc<Session>, Cceh) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t = Cceh::init(&session).unwrap();
        (session, t)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.put(&v, 10, 1).unwrap();
        assert_eq!(t.get(&v, 10).unwrap(), OpResult::Found(1));
        t.put(&v, 10, 2).unwrap();
        assert_eq!(t.get(&v, 10).unwrap(), OpResult::Found(2));
        assert_eq!(t.del(&v, 10).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 10).unwrap(), OpResult::Missing);
    }

    #[test]
    fn splits_and_doubling_preserve_items() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=200u64 {
            t.put(&v, k, k * 3).unwrap();
        }
        for k in 1..=200u64 {
            assert_eq!(t.get(&v, k).unwrap(), OpResult::Found(k * 3), "key {k}");
        }
    }

    #[test]
    fn doubling_raises_bug7_intra_inconsistency() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=200u64 {
            t.put(&v, k, k).unwrap();
        }
        let f = s.finish();
        let hit = f.inconsistencies.iter().any(|i| {
            i.candidate.kind == pmrace_runtime::report::CandidateKind::Intra
                && pmrace_runtime::site_label(i.candidate.write_site).contains("CCEH.h:165")
        });
        assert!(hit, "bug 7 intra inconsistency not detected");
    }

    #[test]
    fn recovery_keeps_segment_locks_bug6() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.put(&v, 1, 1).unwrap();
        // Manually leave the first segment's lock held and persisted.
        let ann = s
            .annotations()
            .into_iter()
            .find(|a| a.name == "cceh.segment_lock")
            .unwrap();
        v.store_u64(ann.off, 1u64, pmrace_runtime::site!("test.poison_lock"))
            .unwrap();
        v.persist(ann.off, 8, pmrace_runtime::site!("test.poison_flush"))
            .unwrap();
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(
            pool2,
            SessionConfig {
                deadline: std::time::Duration::from_millis(100),
                ..SessionConfig::default()
            },
        );
        let t2 = Cceh::recover(&s2).unwrap();
        // The lock survived recovery in the locked state.
        let ann2 = s2
            .annotations()
            .into_iter()
            .find(|a| a.name == "cceh.segment_lock")
            .unwrap();
        assert_eq!(s2.pool().load_u64(ann2.off).unwrap().0, 1);
        // And any write into that segment hangs.
        let v2 = s2.view(ThreadId(1));
        let stuck = (1..64u64).find(|&k| matches!(t2.put(&v2, k, 0), Err(RtError::Timeout)));
        assert!(stuck.is_some(), "no key mapped to the poisoned segment");
    }

    #[test]
    fn data_survives_crash_after_flush() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=50u64 {
            t.put(&v, k, k + 7).unwrap();
        }
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = Cceh::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        for k in 1..=50u64 {
            assert_eq!(t2.get(&v2, k).unwrap(), OpResult::Found(k + 7), "key {k}");
        }
    }
}

//! FAST-FAIR: failure-atomic shift/in-place rebalance B+-tree (Table 1,
//! row 4), modeled as its leaf layer — a sorted, sibling-linked list of
//! persistent nodes with FAST-style entry shifting (per-entry 8-byte stores,
//! each persisted) and lock-free search.
//!
//! Layout follows the original closely where it matters for the bug: the
//! node *header* (lock, sibling pointer) occupies its own cache line, and
//! there is no explicit entry count — entries are packed, sorted, and
//! null-terminated, counted by scanning (FAST-FAIR's records). This keeps
//! entry flushes from incidentally writing back the header line, which is
//! what leaves Bug 8's window open.
//!
//! Bug 8 (Table 2): a node split publishes the sibling pointer with a plain
//! store (`btree.h:560`) and flushes it later; a concurrent insert traverses
//! through the unflushed pointer (`btree.h:876`) and inserts into the new
//! sibling — items lost if the crash beats the flush.
//!
//! FAST-FAIR tolerates many transient inconsistencies via *lazy recovery*
//! (fixed on future accesses), which post-failure validation cannot see —
//! the reason the paper's FP counts for this system stay high without
//! whitelist rules. Node allocation goes through PMDK transactional
//! allocation (`pmdk_tx_alloc`-labeled sites), which the default whitelist
//! recognizes.

use std::sync::Arc;

use pmrace_pmem::PmAllocator;
use pmrace_runtime::{site, PmView, RtError, Session, TU64};

use crate::util::{pm_lock_acquire, pm_lock_release};
use crate::{Op, OpResult, Target, TargetSpec};

// Root layout.
const R_FIRST_LEAF: u64 = 0;
const ROOT_SIZE: usize = 64;

// Node layout: header cache line (lock, sibling), then 14 null-terminated
// sorted (key, value) entries.
const N_LOCK: u64 = 0;
const N_SIBLING: u64 = 8;
const N_ENTRIES: u64 = 64;
const FANOUT: u64 = 14;
const NODE_SIZE: usize = 64 + 14 * 16;

/// The FAST-FAIR instance bound to a session's pool.
#[derive(Debug)]
pub struct FastFair {
    alloc: PmAllocator,
    root: u64,
}

/// Registration entry for the fuzzer.
pub static SPEC: TargetSpec = TargetSpec::new(
    "FAST-FAIR",
    |session| Ok(Arc::new(FastFair::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(FastFair::recover(session)?) as Arc<dyn Target>),
    || pmrace_pmem::PoolOpts::small().heavy(), // libpmemobj-style init
);

impl FastFair {
    /// Format the pool and build a tree with one empty leaf.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        let leaf = Self::alloc_node(&alloc, &view)?;
        view.ntstore_u64(root + R_FIRST_LEAF, leaf, site!("fastfair.init.first_leaf"))?;
        Ok(FastFair { alloc, root })
    }

    /// Reopen an existing pool. FAST-FAIR recovery is *lazy*: only node
    /// locks are cleared eagerly; inconsistent entries are repaired on
    /// future accesses (which post-failure validation does not observe).
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        // Clear node locks along the leaf chain (locks are volatile in the
        // original; ours live in PM and must be re-zeroed).
        let mut node = view
            .load_u64(root + R_FIRST_LEAF, site!("fastfair.recover.first"))?
            .value();
        let mut hops = 0;
        while node != 0 && hops < 1024 {
            view.ntstore_u64(node + N_LOCK, 0u64, site!("fastfair.recover.clear_lock"))?;
            node = view
                .load_u64(node + N_SIBLING, site!("fastfair.recover.next"))?
                .value();
            hops += 1;
        }
        Ok(FastFair { alloc, root })
    }

    /// Allocate and zero a node through the PMDK transactional-allocation
    /// path (whitelisted site labels).
    fn alloc_node(alloc: &PmAllocator, view: &PmView) -> Result<u64, RtError> {
        let tx = alloc.begin_tx(view.tid())?;
        let node = tx.alloc(NODE_SIZE)?;
        tx.commit()?;
        // Field initialization with plain stores then a flush: the brief
        // dirty window is what the whitelist declares benign.
        view.store_u64(
            node + N_SIBLING,
            0u64,
            site!("fastfair.pmdk_tx_alloc.init_sibling"),
        )?;
        view.store_u64(
            node + N_LOCK,
            0u64,
            site!("fastfair.pmdk_tx_alloc.init_lock"),
        )?;
        for e in 0..FANOUT {
            view.store_u64(
                node + N_ENTRIES + e * 16,
                0u64,
                site!("fastfair.pmdk_tx_alloc.zero_key"),
            )?;
            view.store_u64(
                node + N_ENTRIES + e * 16 + 8,
                0u64,
                site!("fastfair.pmdk_tx_alloc.zero_val"),
            )?;
        }
        view.persist(node, NODE_SIZE, site!("fastfair.pmdk_tx_alloc.flush_node"))?;
        Ok(node)
    }

    /// Number of packed entries (scan to the null terminator — FAST-FAIR
    /// keeps no explicit count).
    fn count_entries(view: &PmView, node: &TU64) -> Result<u64, RtError> {
        for e in 0..FANOUT {
            let k = view.load_u64(
                node.clone() + N_ENTRIES + e * 16,
                site!("fastfair.count.scan"),
            )?;
            if k == 0u64 {
                return Ok(e);
            }
        }
        Ok(FANOUT)
    }

    /// Walk the leaf chain to the node that should hold `key`. Reading the
    /// sibling pointer at `btree.h:876` is the racy read of Bug 8.
    fn find_leaf(&self, view: &PmView, key: u64) -> Result<TU64, RtError> {
        let mut node = view.load_u64(self.root + R_FIRST_LEAF, site!("fastfair.read_first"))?;
        let mut hops = 0;
        loop {
            view.check()?;
            let sibling =
                view.load_u64(node.clone() + N_SIBLING, site!("btree.h:876.read_sibling"))?;
            if sibling == 0u64 || hops > 1024 {
                return Ok(node);
            }
            // The sibling's first key bounds its range from below.
            let sib_min =
                view.load_u64(sibling.clone() + N_ENTRIES, site!("fastfair.read_sib_min"))?;
            if sib_min != 0u64 && key >= sib_min.value() {
                node = sibling;
                hops += 1;
                continue;
            }
            return Ok(node);
        }
    }

    /// Insert or update.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn put(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("fastfair.put"));
        loop {
            let node = self.find_leaf(view, key)?;
            pm_lock_acquire(
                view,
                node.value() + N_LOCK,
                site!("fastfair.put.lock"),
                false,
            )?;
            // Revalidate: a split may have moved our range while locking.
            let sibling =
                view.load_u64(node.clone() + N_SIBLING, site!("btree.h:876.read_sibling"))?;
            if sibling != 0u64 {
                let sib_min =
                    view.load_u64(sibling.clone() + N_ENTRIES, site!("fastfair.read_sib_min"))?;
                if sib_min != 0u64 && key >= sib_min.value() {
                    pm_lock_release(
                        view,
                        node.value() + N_LOCK,
                        site!("fastfair.put.unlock_raced"),
                        false,
                    )?;
                    continue;
                }
            }
            // One scan pass: find the key (in-place update) or the null
            // terminator (entry count).
            let mut nkeys = FANOUT;
            let mut updated = false;
            for e in 0..FANOUT {
                let koff = node.clone() + N_ENTRIES + e * 16;
                let k = view.load_u64(koff.clone(), site!("fastfair.put.scan_key"))?;
                if k == key {
                    view.store_u64(koff.clone() + 8u64, value, site!("fastfair.put.update_val"))?;
                    view.persist(koff + 8u64, 8, site!("fastfair.put.flush_val"))?;
                    updated = true;
                    break;
                }
                if k == 0u64 {
                    nkeys = e;
                    break;
                }
            }
            if updated {
                pm_lock_release(
                    view,
                    node.value() + N_LOCK,
                    site!("fastfair.put.unlock"),
                    false,
                )?;
                return Ok(OpResult::Done);
            }
            if nkeys == FANOUT {
                self.split(view, &node)?;
                pm_lock_release(
                    view,
                    node.value() + N_LOCK,
                    site!("fastfair.put.unlock_split"),
                    false,
                )?;
                continue;
            }
            // FAST insertion: shift entries right with persisted 8-byte
            // stores until the slot for `key` opens.
            let mut pos = nkeys;
            while pos > 0 {
                let koff = node.clone() + N_ENTRIES + (pos - 1) * 16;
                let k = view.load_u64(koff.clone(), site!("fastfair.put.shift_read"))?;
                if k.value() < key {
                    break;
                }
                let dst = node.clone() + N_ENTRIES + pos * 16;
                let v = view.load_u64(koff.clone() + 8u64, site!("fastfair.put.shift_read_val"))?;
                view.store_u64(dst.clone() + 8u64, v, site!("fastfair.put.shift_val"))?;
                view.store_u64(dst.clone(), k, site!("fastfair.put.shift_key"))?;
                view.persist(dst, 16, site!("fastfair.put.flush_shift"))?;
                pos -= 1;
            }
            let koff = node.clone() + N_ENTRIES + pos * 16;
            view.store_u64(koff.clone() + 8u64, value, site!("fastfair.put.store_val"))?;
            view.store_u64(koff.clone(), key, site!("fastfair.put.store_key"))?;
            view.persist(koff, 16, site!("fastfair.put.flush_entry"))?;
            pm_lock_release(
                view,
                node.value() + N_LOCK,
                site!("fastfair.put.unlock"),
                false,
            )?;
            return Ok(OpResult::Done);
        }
    }

    /// Split `node` (held locked by the caller): upper half moves to a new
    /// sibling. The sibling-pointer publication is Bug 8.
    fn split(&self, view: &PmView, node: &TU64) -> Result<(), RtError> {
        view.branch(site!("fastfair.split"));
        let new_node = Self::alloc_node(&self.alloc, view)?;
        let half = FANOUT / 2;
        // Copy the upper half into the sibling (persisted), then clear the
        // moved entries from the tail inward so the packed/sorted invariant
        // holds for concurrent lock-free scans.
        for e in half..FANOUT {
            let src = node.clone() + N_ENTRIES + e * 16;
            let k = view.load_u64(src.clone(), site!("fastfair.split.read_key"))?;
            let v = view.load_u64(src.clone() + 8u64, site!("fastfair.split.read_val"))?;
            let dst = new_node + N_ENTRIES + (e - half) * 16;
            view.store_u64(dst + 8, v, site!("fastfair.split.copy_val"))?;
            view.store_u64(dst, k, site!("fastfair.split.copy_key"))?;
            view.persist(dst, 16, site!("fastfair.split.flush_copy"))?;
        }
        let old_sibling = view.load_u64(
            node.clone() + N_SIBLING,
            site!("fastfair.split.read_old_sib"),
        )?;
        view.store_u64(
            new_node + N_SIBLING,
            old_sibling,
            site!("fastfair.split.chain_sib"),
        )?;
        view.persist(new_node, NODE_SIZE, site!("fastfair.split.flush_new"))?;
        for e in (half..FANOUT).rev() {
            let src = node.clone() + N_ENTRIES + e * 16;
            view.store_u64(src.clone(), 0u64, site!("fastfair.split.clear_key"))?;
            view.persist(src, 8, site!("fastfair.split.flush_clear"))?;
        }
        // Bug 8: publish the sibling pointer with a plain store; the flush
        // comes after the scheduler's writer stall.
        view.store_u64(
            node.clone() + N_SIBLING,
            new_node,
            site!("btree.h:560.store_sibling"),
        )?;
        view.persist(
            node.clone() + N_SIBLING,
            8,
            site!("btree.h:561.flush_sibling"),
        )?;
        Ok(())
    }

    /// Lock-free lookup.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("fastfair.get"));
        let node = self.find_leaf(view, key)?;
        for e in 0..FANOUT {
            let koff = node.clone() + N_ENTRIES + e * 16;
            let k = view.load_u64(koff.clone(), site!("fastfair.get.scan_key"))?;
            if k == 0u64 {
                break;
            }
            if k == key {
                let v = view.load_u64(koff + 8u64, site!("fastfair.get.read_val"))?;
                return Ok(OpResult::Found(v.value()));
            }
        }
        Ok(OpResult::Missing)
    }

    /// Delete by shifting entries left (FAIR deletion).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn del(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("fastfair.del"));
        let node = self.find_leaf(view, key)?;
        pm_lock_acquire(
            view,
            node.value() + N_LOCK,
            site!("fastfair.del.lock"),
            false,
        )?;
        let nkeys = Self::count_entries(view, &node)?;
        let mut found = false;
        for e in 0..nkeys {
            let koff = node.clone() + N_ENTRIES + e * 16;
            let k = view.load_u64(koff.clone(), site!("fastfair.del.scan_key"))?;
            if !found && k == key {
                found = true;
            }
            if found {
                // Shift the next entry into this slot (zero at the tail).
                let nxt = node.clone() + N_ENTRIES + (e + 1) * 16;
                let (nk, nv) = if e + 1 < nkeys {
                    (
                        view.load_u64(nxt.clone(), site!("fastfair.del.shift_read"))?,
                        view.load_u64(nxt + 8u64, site!("fastfair.del.shift_read_val"))?,
                    )
                } else {
                    (TU64::from(0), TU64::from(0))
                };
                view.store_u64(koff.clone() + 8u64, nv, site!("fastfair.del.shift_val"))?;
                view.store_u64(koff.clone(), nk, site!("fastfair.del.shift_key"))?;
                view.persist(koff, 16, site!("fastfair.del.flush_shift"))?;
            }
        }
        pm_lock_release(
            view,
            node.value() + N_LOCK,
            site!("fastfair.del.unlock"),
            false,
        )?;
        Ok(if found {
            OpResult::Done
        } else {
            OpResult::Missing
        })
    }
}

impl Target for FastFair {
    fn name(&self) -> &'static str {
        "FAST-FAIR"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        match *op {
            Op::Insert { key, value } | Op::Update { key, value } => {
                self.put(view, key.max(1), value)
            }
            Op::Delete { key } => self.del(view, key.max(1)),
            Op::Get { key } => self.get(view, key.max(1)),
            Op::Incr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.wrapping_add(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
            Op::Decr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.saturating_sub(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::SessionConfig;
    use std::collections::BTreeMap;

    fn fresh() -> (Arc<Session>, FastFair) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t = FastFair::init(&session).unwrap();
        (session, t)
    }

    #[test]
    fn put_get_del_roundtrip() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.put(&v, 5, 50).unwrap();
        t.put(&v, 3, 30).unwrap();
        t.put(&v, 8, 80).unwrap();
        assert_eq!(t.get(&v, 3).unwrap(), OpResult::Found(30));
        assert_eq!(t.get(&v, 5).unwrap(), OpResult::Found(50));
        assert_eq!(t.get(&v, 8).unwrap(), OpResult::Found(80));
        assert_eq!(t.del(&v, 5).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 5).unwrap(), OpResult::Missing);
        assert_eq!(t.get(&v, 8).unwrap(), OpResult::Found(80));
    }

    #[test]
    fn splits_keep_tree_consistent_with_model() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        let mut model = BTreeMap::new();
        // Interleave ascending/descending/middle insertions to hit shifting.
        let keys: Vec<u64> = (1..=40)
            .chain((41..=80).rev())
            .chain([100, 90, 85])
            .collect();
        for (i, k) in keys.iter().enumerate() {
            t.put(&v, *k, i as u64 + 1).unwrap();
            model.insert(*k, i as u64 + 1);
        }
        for (k, want) in &model {
            assert_eq!(t.get(&v, *k).unwrap(), OpResult::Found(*want), "key {k}");
        }
        assert_eq!(t.get(&v, 999).unwrap(), OpResult::Missing);
    }

    #[test]
    fn entries_stay_packed_and_counted() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in [9u64, 3, 7, 1] {
            t.put(&v, k, k).unwrap();
        }
        let node = t.find_leaf(&v, 5).unwrap();
        assert_eq!(FastFair::count_entries(&v, &node).unwrap(), 4);
        t.del(&v, 3).unwrap();
        assert_eq!(FastFair::count_entries(&v, &node).unwrap(), 3);
    }

    #[test]
    fn split_survives_crash_recovery() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=60u64 {
            t.put(&v, k, k).unwrap();
        }
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = FastFair::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        for k in 1..=60u64 {
            assert_eq!(t2.get(&v2, k).unwrap(), OpResult::Found(k), "key {k}");
        }
    }

    #[test]
    fn delete_then_reinsert_across_split_boundary() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=30u64 {
            t.put(&v, k, k).unwrap();
        }
        for k in (1..=30u64).step_by(2) {
            assert_eq!(t.del(&v, k).unwrap(), OpResult::Done, "del {k}");
        }
        for k in 1..=30u64 {
            let want = if k % 2 == 1 {
                OpResult::Missing
            } else {
                OpResult::Found(k)
            };
            assert_eq!(t.get(&v, k).unwrap(), want, "key {k}");
        }
        t.put(&v, 7, 700).unwrap();
        assert_eq!(t.get(&v, 7).unwrap(), OpResult::Found(700));
    }

    #[test]
    fn bug8_shape_detectable_with_dirty_sibling() {
        let (s, t) = fresh();
        let w = s.view(ThreadId(0));
        for k in 1..=15u64 {
            t.put(&w, k * 2, k).unwrap(); // forces one split
        }
        let node0 = t.find_leaf(&w, 1).unwrap().value();
        let sib = s.pool().load_u64(node0 + N_SIBLING).unwrap().0;
        assert_ne!(sib, 0, "split must have happened");
        // Re-dirty the sibling pointer (the unflushed 560 store state).
        w.store_u64(node0 + N_SIBLING, sib, site!("btree.h:560.store_sibling"))
            .unwrap();
        let r = s.view(ThreadId(1));
        let sib_min = s.pool().load_u64(sib + N_ENTRIES).unwrap().0;
        t.put(&r, sib_min + 1, 9).unwrap();
        let f = s.finish();
        let bug8 = f.inconsistencies.iter().any(|i| {
            pmrace_runtime::site_label(i.candidate.write_site).contains("560")
                && pmrace_runtime::site_label(i.candidate.read_site).contains("876")
                && !i.whitelisted
        });
        assert!(bug8, "bug 8 inter inconsistency not detected");
    }
}

//! The paper's Figure 1: the minimal program exhibiting both PM concurrency
//! bug patterns, kept as an executable specification of Definitions 1–3.
//!
//! ```text
//! thread-1: lock(g); x = A;            clwb x; sfence; unlock(g)
//! thread-2: lock(g); y = read(x); clwb y; sfence;     unlock(g)
//! ```
//!
//! - If thread-2 reads `x` *before* thread-1's flush, it makes a durable
//!   side effect (`y`, flushed) based on non-persisted data — a **PM
//!   Inter-thread Inconsistency**: after a crash, `y != x`.
//! - The lock `g` lives in PM and is persisted when taken; a crash right
//!   after leaves it locked forever — a **PM Synchronization
//!   Inconsistency**.
//!
//! [`Figure1`] is not registered as a fuzzing target (its two "operations"
//! are fixed); it exists for documentation, tests, and the quickstart of
//! the checker pipeline.

use std::sync::Arc;

use pmrace_runtime::{site, PmView, RtError, Session, SyncVarAnnotation};

use crate::util::{pm_lock_acquire, pm_lock_release};

/// Pool offset of `x`.
pub const X: u64 = 4096;
/// Pool offset of `y`.
pub const Y: u64 = 4096 + 64;
/// Pool offset of the persistent lock `g`.
pub const G: u64 = 4096 + 128;

/// The Figure 1 program over a session's pool.
#[derive(Debug)]
pub struct Figure1;

impl Figure1 {
    /// Register the lock annotation (`pm_sync_var_hint(8, 0)` on `g`).
    pub fn annotate(session: &Arc<Session>) {
        session.annotate_sync_var(SyncVarAnnotation {
            name: "figure1.g".into(),
            off: G,
            size: 8,
            init_val: 0,
        });
    }

    /// Thread-1's body: write `x = value` under `g`, flush, unlock.
    /// `delay_flush` widens the race window the way the paper's timeline
    /// (Fig. 3) draws it — the flush happens after `hold` runs.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn thread1(
        view: &PmView,
        value: u64,
        hold: impl FnOnce() -> Result<(), RtError>,
    ) -> Result<(), RtError> {
        pm_lock_acquire(view, G, site!("figure1.lock_g_t1"), true)?;
        view.store_u64(X, value, site!("figure1.store_x"))?;
        pm_lock_release(view, G, site!("figure1.unlock_g_t1"), true)?;
        // The window: x is visible but not persistent.
        hold()?;
        view.persist(X, 8, site!("figure1.flush_x"))?;
        Ok(())
    }

    /// Thread-2's body: read `x`, write it to `y`, flush `y`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn thread2(view: &PmView) -> Result<(), RtError> {
        pm_lock_acquire(view, G, site!("figure1.lock_g_t2"), true)?;
        let x = view.load_u64(X, site!("figure1.read_x"))?;
        view.store_u64(Y, x, site!("figure1.store_y"))?;
        view.persist(Y, 8, site!("figure1.flush_y"))?;
        pm_lock_release(view, G, site!("figure1.unlock_g_t2"), true)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::report::CandidateKind;
    use pmrace_runtime::SessionConfig;

    #[test]
    fn buggy_interleaving_raises_inter_inconsistency_and_loses_y() {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        Figure1::annotate(&session);
        let t1 = session.view(ThreadId(0));
        let t2 = session.view(ThreadId(1));
        // Interleave exactly as Fig. 1: thread-2 runs inside thread-1's
        // visibility/persistency window.
        Figure1::thread1(&t1, 0xA, || Figure1::thread2(&t2)).unwrap();

        let f = session.finish();
        let inter = f
            .inconsistencies
            .iter()
            .find(|i| i.candidate.kind == CandidateKind::Inter)
            .expect("Definition 2 must fire");
        assert_eq!(inter.effect_off, Y);
        // Crash at the detection point: y persisted, x lost => y != x.
        let img = inter.crash_image.as_ref().unwrap();
        assert_eq!(img.load_u64(Y).unwrap(), 0xA);
        assert_eq!(img.load_u64(X).unwrap(), 0, "x lost: crash inconsistency");
        // And the lock produced a sync inconsistency record.
        assert!(f.sync_updates.iter().any(|u| u.var_name == "figure1.g"));
    }

    #[test]
    fn correct_interleaving_is_clean() {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t1 = session.view(ThreadId(0));
        let t2 = session.view(ThreadId(1));
        // Thread-2 runs after thread-1's flush: candidate-free.
        Figure1::thread1(&t1, 0xA, || Ok(())).unwrap();
        Figure1::thread2(&t2).unwrap();
        let f = session.finish();
        assert!(f.inconsistencies.is_empty());
        assert!(f.candidates.iter().all(|c| c.kind != CandidateKind::Inter));
        // After both flushes a crash keeps x == y.
        let img = session.pool().crash_image().unwrap();
        assert_eq!(img.load_u64(X).unwrap(), img.load_u64(Y).unwrap());
    }

    #[test]
    fn crash_after_lock_persists_the_locked_state() {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        Figure1::annotate(&session);
        let t2 = session.view(ThreadId(1));
        pm_lock_acquire(&t2, G, site!("figure1.lock_g_test"), true).unwrap();
        // Crash now: g survives locked; with threads rebuilt, every future
        // lock_g spins forever (Definition 3's consequence).
        let img = session.pool().crash_image().unwrap();
        assert_eq!(img.load_u64(G).unwrap(), 1);
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(
            pool2,
            SessionConfig {
                deadline: std::time::Duration::from_millis(100),
                ..SessionConfig::default()
            },
        );
        let v2 = s2.view(ThreadId(0));
        assert_eq!(
            pm_lock_acquire(&v2, G, site!("figure1.lock_g_after"), false).unwrap_err(),
            RtError::Timeout
        );
    }
}

//! P-CLHT: persistent cache-line hash table from RECIPE (Table 1, row 1).
//!
//! Bucket-grained locking with lock-free search; resizing allocates a bigger
//! table and migrates all items. Faithfully carries the five bugs PMRace
//! found (Table 2):
//!
//! 1. **Inter** — resize publishes the new table pointer (`ht_off`) with a
//!    plain store and flushes it later; a concurrent `put` reads the
//!    unflushed pointer and inserts into the new table. A crash before the
//!    flush recovers the *old* table: the insert is lost.
//! 2. **Sync** — bucket locks live in PM and are not reinitialized by
//!    recovery: a lock persisted in locked state hangs post-restart writers.
//! 3. **Intra** — resize stores `table_new` unflushed, then GC reads it back
//!    and durably logs it: after a crash the allocation leaks.
//! 4. **Other** — `put` rewrites the key slot even when unchanged; searchers
//!    read the transiently unflushed key (redundant PM write, reported as a
//!    candidate).
//! 5. **Other** — `update` forgets to release the bucket lock on the
//!    found-key path: a classic DRAM concurrency bug causing hangs.
//!
//! Site labels mirror the paper's `file:line` bug coordinates so generated
//! reports read like Table 2.

use std::sync::Arc;

use pmrace_pmem::PmAllocator;
use pmrace_runtime::{site, PmView, RtError, Session, SyncVarAnnotation, TU64};

use crate::util::{hash64, pm_lock_acquire, pm_lock_release};
use crate::{Op, OpResult, Target, TargetSpec};

// Root object layout.
const R_HT_OFF: u64 = 0;
const R_RESIZE_LOCK: u64 = 8;
const R_GC_LOCK: u64 = 16;
const R_STATUS: u64 = 24;
const R_GC_LOG: u64 = 32;
const ROOT_SIZE: usize = 64;

// Table header layout.
const T_NBUCKETS: u64 = 0;
const T_TABLE_NEW: u64 = 8;
const T_SEALED: u64 = 16;
const T_BUCKETS: u64 = 24;

// Bucket layout: lock, 3 (key, value) slots, chain pointer — the chained
// hash structure of the original (§2.3.2: "concurrent chained hash index").
const B_LOCK: u64 = 0;
const B_SLOTS: u64 = 8;
const B_NEXT: u64 = 56;
const SLOTS: u64 = 3;
const BUCKET_SIZE: u64 = 64;
/// Chain-length threshold: one overflow bucket per root bucket; a longer
/// chain triggers the resize ("if the number of allocated buckets for
/// chained linked lists exceeds a threshold, P-CLHT is resized").
const MAX_CHAIN: u64 = 1;

// Small initial table (like the evaluation drivers, which size the table to
// make resizing reachable within a fuzz campaign).
const INITIAL_BUCKETS: u64 = 4;

/// The P-CLHT instance bound to a session's pool.
#[derive(Debug)]
pub struct Pclht {
    alloc: PmAllocator,
    root: u64,
}

/// Registration entry for the fuzzer.
pub static SPEC: TargetSpec = TargetSpec::new(
    "P-CLHT",
    |session| Ok(Arc::new(Pclht::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(Pclht::recover(session)?) as Arc<dyn Target>),
    || pmrace_pmem::PoolOpts::small().heavy(), // libpmemobj-style init
);

impl Pclht {
    /// Format the session's pool and build an empty table.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        let table = Self::alloc_table(&alloc, &view, INITIAL_BUCKETS)?;
        view.ntstore_u64(root + R_HT_OFF, table, site!("clht.init.ht_off"))?;
        view.ntstore_u64(root + R_RESIZE_LOCK, 0u64, site!("clht.init.resize_lock"))?;
        view.ntstore_u64(root + R_GC_LOCK, 0u64, site!("clht.init.gc_lock"))?;
        view.ntstore_u64(root + R_STATUS, 0u64, site!("clht.init.status"))?;
        view.ntstore_u64(root + R_GC_LOG, 0u64, site!("clht.init.gc_log"))?;
        let this = Pclht { alloc, root };
        this.register_annotations(session, table);
        Ok(this)
    }

    /// Reopen an existing pool, running P-CLHT's recovery: global locks and
    /// status are reinitialized — but **bucket locks are not** (Bug 2).
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        view.ntstore_u64(
            root + R_RESIZE_LOCK,
            0u64,
            site!("clht.recover.resize_lock"),
        )?;
        view.ntstore_u64(root + R_GC_LOCK, 0u64, site!("clht.recover.gc_lock"))?;
        view.ntstore_u64(root + R_STATUS, 0u64, site!("clht.recover.status"))?;
        // NOTE (Bug 2): bucket locks are persistent but never reinitialized
        // here; a lock that crashed in the locked state stays locked.
        let table = view
            .load_u64(root + R_HT_OFF, site!("clht.recover.read_ht_off"))?
            .value();
        let this = Pclht { alloc, root };
        this.register_annotations(session, table);
        Ok(this)
    }

    fn register_annotations(&self, session: &Arc<Session>, table: u64) {
        session.annotate_sync_var(SyncVarAnnotation {
            name: "clht.resize_lock".into(),
            off: self.root + R_RESIZE_LOCK,
            size: 8,
            init_val: 0,
        });
        session.annotate_sync_var(SyncVarAnnotation {
            name: "clht.gc_lock".into(),
            off: self.root + R_GC_LOCK,
            size: 8,
            init_val: 0,
        });
        session.annotate_sync_var(SyncVarAnnotation {
            name: "clht.table_status".into(),
            off: self.root + R_STATUS,
            size: 8,
            init_val: 0,
        });
        // Representative bucket lock (the C code annotates the lock field of
        // the bucket struct; we pin the first bucket of the live table).
        session.annotate_sync_var(SyncVarAnnotation {
            name: "clht.bucket_lock".into(),
            off: table + T_BUCKETS + B_LOCK,
            size: 8,
            init_val: 0,
        });
    }

    fn alloc_table(alloc: &PmAllocator, view: &PmView, nbuckets: u64) -> Result<u64, RtError> {
        let size = (T_BUCKETS + nbuckets * BUCKET_SIZE) as usize;
        let table = alloc.alloc(size, view.tid())?;
        view.ntstore_u64(table + T_NBUCKETS, nbuckets, site!("clht.table.nbuckets"))?;
        view.ntstore_u64(table + T_TABLE_NEW, 0u64, site!("clht.table.table_new"))?;
        view.ntstore_u64(table + T_SEALED, 0u64, site!("clht.table.sealed"))?;
        for b in 0..nbuckets {
            let base = table + T_BUCKETS + b * BUCKET_SIZE;
            for w in 0..(BUCKET_SIZE / 8) {
                view.ntstore_u64(base + w * 8, 0u64, site!("clht.table.zero_bucket"))?;
            }
        }
        Ok(table)
    }

    fn bucket_off(table: &TU64, nbuckets: &TU64, key: u64) -> TU64 {
        let idx = hash64(key) % nbuckets.value().max(1);
        table.clone() + T_BUCKETS + idx * BUCKET_SIZE
    }

    /// Allocate a zeroed overflow bucket for a chain.
    fn alloc_chain_bucket(&self, view: &PmView) -> Result<u64, RtError> {
        let b = self.alloc.alloc(BUCKET_SIZE as usize, view.tid())?;
        for w in 0..(BUCKET_SIZE / 8) {
            view.ntstore_u64(b + w * 8, 0u64, site!("clht.chain.zero"))?;
        }
        Ok(b)
    }

    /// Walk a bucket chain looking for `key` and the first free slot.
    /// Returns `(found_koff, free_koff, last_bucket, depth)`. Lock-free;
    /// the chain pointer loads propagate taint like any PM pointer.
    fn scan_chain(
        &self,
        view: &PmView,
        root: &TU64,
        key: u64,
    ) -> Result<(Option<TU64>, Option<TU64>, TU64, u64), RtError> {
        let mut bucket = root.clone();
        let mut free: Option<TU64> = None;
        let mut depth = 0u64;
        loop {
            view.check()?;
            for s in 0..SLOTS {
                let koff = bucket.clone() + B_SLOTS + s * 16;
                let k = view.load_u64(koff.clone(), site!("clht_lb_res.c:616.read_key"))?;
                if k == key {
                    return Ok((Some(koff), free, bucket, depth));
                }
                if k == 0u64 && free.is_none() {
                    free = Some(koff);
                }
            }
            let next = view.load_u64(bucket.clone() + B_NEXT, site!("clht.read_chain_next"))?;
            if next == 0u64 || depth >= 8 {
                return Ok((None, free, bucket, depth));
            }
            bucket = next;
            depth += 1;
        }
    }

    /// Load the current table pointer — the read side of Bug 1
    /// (`clht_lb_res.c:417`): the pointer may be another thread's unflushed
    /// store.
    fn read_table(&self, view: &PmView) -> Result<(TU64, TU64), RtError> {
        let table = view.load_u64(self.root + R_HT_OFF, site!("clht_lb_res.c:417.read_ht_off"))?;
        let nbuckets = view.load_u64(table.clone() + T_NBUCKETS, site!("clht.read_nbuckets"))?;
        Ok((table, nbuckets))
    }

    /// Insert or overwrite `key -> value`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RtError::Timeout`] on hangs).
    pub fn put(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clht.put"));
        loop {
            let (table, nbuckets) = self.read_table(view)?;
            let bucket = Self::bucket_off(&table, &nbuckets, key);
            let lock_site = site!("clht_lb_res.c:429.bucket_lock");
            pm_lock_acquire(view, bucket.value() + B_LOCK, lock_site, true)?;
            let sealed = view.load_u64(table.clone() + T_SEALED, site!("clht.put.read_sealed"))?;
            if sealed == 1u64 {
                // Resize in progress on this table: release and retry on the
                // (possibly new) table.
                pm_lock_release(
                    view,
                    bucket.value() + B_LOCK,
                    site!("clht.put.unlock_sealed"),
                    true,
                )?;
                view.spin_yield()?;
                continue;
            }
            // Scan the bucket chain for the key or a free slot.
            let (found, free, last, depth) = self.scan_chain(view, &bucket, key)?;
            if let Some(koff) = found {
                let voff = koff.clone() + 8u64;
                view.store_u64(voff.clone(), value, site!("clht.put.store_val"))?;
                // Bug 4: the key slot is rewritten although unchanged —
                // a redundant PM write searchers can observe unflushed.
                view.store_u64(koff.clone(), key, site!("clht_lb_res.c:321.store_key"))?;
                view.persist(koff, 24, site!("clht.put.flush_slot"))?;
                pm_lock_release(
                    view,
                    bucket.value() + B_LOCK,
                    site!("clht.put.unlock"),
                    true,
                )?;
                return Ok(OpResult::Done);
            }
            if let Some(koff) = free {
                let voff = koff.clone() + 8u64;
                // Writing through `koff` derived from an unflushed table
                // pointer is the durable side effect of Bug 1.
                view.store_u64(voff, value, site!("clht_lb_res.c:489.store_val"))?;
                view.store_u64(koff.clone(), key, site!("clht_lb_res.c:321.store_key"))?;
                view.persist(koff, 24, site!("clht.put.flush_slot"))?;
                pm_lock_release(
                    view,
                    bucket.value() + B_LOCK,
                    site!("clht.put.unlock"),
                    true,
                )?;
                return Ok(OpResult::Done);
            }
            if depth < MAX_CHAIN {
                // Chain a fresh overflow bucket and insert into it.
                let nb = self.alloc_chain_bucket(view)?;
                view.ntstore_u64(
                    nb + B_SLOTS + 8,
                    value,
                    site!("clht_lb_res.c:489.store_val"),
                )?;
                view.ntstore_u64(nb + B_SLOTS, key, site!("clht_lb_res.c:321.store_key"))?;
                view.store_u64(last.clone() + B_NEXT, nb, site!("clht.put.link_chain"))?;
                view.persist(last + B_NEXT, 8, site!("clht.put.flush_chain"))?;
                pm_lock_release(
                    view,
                    bucket.value() + B_LOCK,
                    site!("clht.put.unlock"),
                    true,
                )?;
                return Ok(OpResult::Done);
            }
            // Chain threshold exceeded: resize and retry.
            pm_lock_release(
                view,
                bucket.value() + B_LOCK,
                site!("clht.put.unlock_full"),
                true,
            )?;
            self.resize(view, table.value())?;
        }
    }

    /// Lock-free search.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clht.get"));
        let (table, nbuckets) = self.read_table(view)?;
        let bucket = Self::bucket_off(&table, &nbuckets, key);
        let (found, _, _, _) = self.scan_chain(view, &bucket, key)?;
        if let Some(koff) = found {
            let v = view.load_u64(koff + 8u64, site!("clht.get.read_val"))?;
            return Ok(OpResult::Found(v.value()));
        }
        Ok(OpResult::Missing)
    }

    /// Delete a key.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn del(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clht.del"));
        loop {
            let (table, nbuckets) = self.read_table(view)?;
            let bucket = Self::bucket_off(&table, &nbuckets, key);
            pm_lock_acquire(view, bucket.value() + B_LOCK, site!("clht.del.lock"), true)?;
            let sealed = view.load_u64(table.clone() + T_SEALED, site!("clht.del.read_sealed"))?;
            if sealed == 1u64 {
                pm_lock_release(
                    view,
                    bucket.value() + B_LOCK,
                    site!("clht.del.unlock_sealed"),
                    true,
                )?;
                view.spin_yield()?;
                continue;
            }
            let (found, _, _, _) = self.scan_chain(view, &bucket, key)?;
            let hit = found.is_some();
            if let Some(koff) = found {
                view.store_u64(koff.clone(), 0u64, site!("clht.del.clear_key"))?;
                view.persist(koff, 8, site!("clht.del.flush"))?;
            }
            pm_lock_release(
                view,
                bucket.value() + B_LOCK,
                site!("clht.del.unlock"),
                true,
            )?;
            return Ok(if hit {
                OpResult::Done
            } else {
                OpResult::Missing
            });
        }
    }

    /// Update an existing key. Carries Bug 5: the found-key path returns
    /// **without releasing the bucket lock**, hanging later accesses to the
    /// bucket (`clht_lb_res.c:526`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn update(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clht.update"));
        let (table, nbuckets) = self.read_table(view)?;
        let bucket = Self::bucket_off(&table, &nbuckets, key);
        pm_lock_acquire(
            view,
            bucket.value() + B_LOCK,
            site!("clht.update.lock"),
            true,
        )?;
        let (found, _, _, _) = self.scan_chain(view, &bucket, key)?;
        if let Some(koff) = found {
            let voff = koff + 8u64;
            let old = view.load_u64(voff.clone(), site!("clht.update.read_val"))?;
            if old == value {
                // Bug 5: the idempotent-update early return forgets
                // pm_lock_release (`clht_lb_res.c:526`) — later
                // accesses to this bucket hang.
                return Ok(OpResult::Done);
            }
            view.store_u64(voff.clone(), value, site!("clht_lb_res.c:526.update_val"))?;
            view.persist(voff, 8, site!("clht.update.flush"))?;
            pm_lock_release(
                view,
                bucket.value() + B_LOCK,
                site!("clht.update.unlock_found"),
                true,
            )?;
            return Ok(OpResult::Done);
        }
        pm_lock_release(
            view,
            bucket.value() + B_LOCK,
            site!("clht.update.unlock"),
            true,
        )?;
        Ok(OpResult::Missing)
    }

    /// Insert one migrated item into the (not yet published) new table,
    /// chaining overflow buckets as needed. Non-temporal stores keep the
    /// new table crash-consistent during migration.
    fn migrate_insert(
        &self,
        view: &PmView,
        new_table: u64,
        new_nb: u64,
        k: &TU64,
        v: &TU64,
    ) -> Result<(), RtError> {
        let nt = TU64::from(new_table);
        let nnb = TU64::from(new_nb);
        let root = Self::bucket_off(&nt, &nnb, k.value());
        // Sentinel key that can never match: we only want the free slot.
        let (_, free, last, _) = self.scan_chain(view, &root, u64::MAX)?;
        if let Some(nkoff) = free {
            view.ntstore_u64(nkoff.clone(), k.clone(), site!("clht.resize.migrate_key"))?;
            view.ntstore_u64(nkoff + 8u64, v.clone(), site!("clht.resize.migrate_val"))?;
            return Ok(());
        }
        let nb = self.alloc_chain_bucket(view)?;
        view.ntstore_u64(nb + B_SLOTS, k.clone(), site!("clht.resize.migrate_key"))?;
        view.ntstore_u64(
            nb + B_SLOTS + 8,
            v.clone(),
            site!("clht.resize.migrate_val"),
        )?;
        view.ntstore_u64(
            last.value() + B_NEXT,
            nb,
            site!("clht.resize.migrate_chain"),
        )?;
        Ok(())
    }

    /// Resize: allocate a doubled table, migrate, publish, GC the old table.
    fn resize(&self, view: &PmView, old_table: u64) -> Result<(), RtError> {
        view.branch(site!("clht.resize"));
        pm_lock_acquire(
            view,
            self.root + R_RESIZE_LOCK,
            site!("clht.resize.lock"),
            true,
        )?;
        // Another thread may have resized while we waited.
        let current = view
            .load_u64(self.root + R_HT_OFF, site!("clht.resize.recheck"))?
            .value();
        if current != old_table {
            pm_lock_release(
                view,
                self.root + R_RESIZE_LOCK,
                site!("clht.resize.unlock_raced"),
                true,
            )?;
            return Ok(());
        }
        view.store_u64(self.root + R_STATUS, 1u64, site!("clht.resize.status_on"))?;
        view.persist(self.root + R_STATUS, 8, site!("clht.resize.flush_status"))?;

        // Seal the old table: writers locked out from here on.
        view.ntstore_u64(old_table + T_SEALED, 1u64, site!("clht.resize.seal"))?;

        let old_nb = view
            .load_u64(old_table + T_NBUCKETS, site!("clht.resize.read_nb"))?
            .value();
        let new_nb = old_nb * 2;
        let new_table = Self::alloc_table(&self.alloc, view, new_nb)?;

        // Migrate under bucket locks so in-flight writers drain first; walk
        // each root bucket's whole chain.
        for b in 0..old_nb {
            let root = old_table + T_BUCKETS + b * BUCKET_SIZE;
            pm_lock_acquire(
                view,
                root + B_LOCK,
                site!("clht.resize.migrate_lock"),
                false,
            )?;
            let mut bucket = TU64::from(root);
            let mut depth = 0;
            loop {
                for s in 0..SLOTS {
                    let koff = bucket.clone() + B_SLOTS + s * 16;
                    let k = view.load_u64(koff.clone(), site!("clht.resize.read_item"))?;
                    if k == 0u64 {
                        continue;
                    }
                    let v = view.load_u64(koff + 8u64, site!("clht.resize.read_item_val"))?;
                    self.migrate_insert(view, new_table, new_nb, &k, &v)?;
                }
                let next =
                    view.load_u64(bucket.clone() + B_NEXT, site!("clht.resize.read_chain"))?;
                if next == 0u64 || depth >= 8 {
                    break;
                }
                bucket = next;
                depth += 1;
            }
            pm_lock_release(
                view,
                root + B_LOCK,
                site!("clht.resize.migrate_unlock"),
                false,
            )?;
        }

        // Bug 3 setup: `table_new` stored but not flushed before GC reads it.
        view.store_u64(
            old_table + T_TABLE_NEW,
            new_table,
            site!("clht_lb_res.c:789.store_table_new"),
        )?;

        // Bug 1: publish the new table with a plain store; the flush comes
        // after — and the scheduler's writer stall sits exactly in between.
        view.store_u64(
            self.root + R_HT_OFF,
            new_table,
            site!("clht_lb_res.c:785.swap_ht_off"),
        )?;
        view.persist(
            self.root + R_HT_OFF,
            8,
            site!("clht_lb_res.c:786.flush_ht_off"),
        )?;

        self.gc(view, old_table)?;

        view.store_u64(self.root + R_STATUS, 0u64, site!("clht.resize.status_off"))?;
        view.persist(
            self.root + R_STATUS,
            8,
            site!("clht.resize.flush_status_off"),
        )?;
        pm_lock_release(
            view,
            self.root + R_RESIZE_LOCK,
            site!("clht.resize.unlock"),
            true,
        )?;
        Ok(())
    }

    /// Garbage-collect the old table. Bug 3: reads its own unflushed
    /// `table_new` pointer and durably logs it — a PM Intra-thread
    /// Inconsistency that leaks the new table after a crash.
    fn gc(&self, view: &PmView, old_table: u64) -> Result<(), RtError> {
        pm_lock_acquire(view, self.root + R_GC_LOCK, site!("clht.gc.lock"), true)?;
        let table_new = view.load_u64(
            old_table + T_TABLE_NEW,
            site!("clht_gc.c:190.read_table_new"),
        )?;
        // Durable side effect based on the unflushed pointer.
        view.ntstore_u64(
            self.root + R_GC_LOG,
            table_new,
            site!("clht_gc.c:195.store_gc_log"),
        )?;
        // Recycle the old table and its chain buckets (volatile free list).
        let old_nb = view
            .load_u64(old_table + T_NBUCKETS, site!("clht.gc.read_nb"))?
            .value();
        for b in 0..old_nb {
            let mut next = view
                .load_u64(
                    old_table + T_BUCKETS + b * BUCKET_SIZE + B_NEXT,
                    site!("clht.gc.read_chain"),
                )?
                .value();
            let mut depth = 0;
            while next != 0 && depth < 8 {
                let follow = view
                    .load_u64(next + B_NEXT, site!("clht.gc.read_chain"))?
                    .value();
                let _ = self.alloc.free(next, view.tid());
                next = follow;
                depth += 1;
            }
        }
        let _ = self.alloc.free(old_table, view.tid());
        pm_lock_release(view, self.root + R_GC_LOCK, site!("clht.gc.unlock"), true)?;
        Ok(())
    }
}

impl Target for Pclht {
    fn name(&self) -> &'static str {
        "P-CLHT"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        match *op {
            Op::Insert { key, value } => self.put(view, key.max(1), value),
            Op::Update { key, value } => self.update(view, key.max(1), value),
            Op::Delete { key } => self.del(view, key.max(1)),
            Op::Get { key } => self.get(view, key.max(1)),
            Op::Incr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.wrapping_add(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
            Op::Decr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.saturating_sub(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::SessionConfig;

    fn fresh() -> (Arc<Session>, Pclht) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t = Pclht::init(&session).unwrap();
        (session, t)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(t.put(&v, 1, 100).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 1).unwrap(), OpResult::Found(100));
        assert_eq!(t.put(&v, 1, 101).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 1).unwrap(), OpResult::Found(101));
        assert_eq!(t.del(&v, 1).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 1).unwrap(), OpResult::Missing);
        assert_eq!(t.del(&v, 1).unwrap(), OpResult::Missing);
    }

    #[test]
    fn resize_preserves_items() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=120u64 {
            t.put(&v, k, k * 10).unwrap();
        }
        for k in 1..=120u64 {
            assert_eq!(t.get(&v, k).unwrap(), OpResult::Found(k * 10), "key {k}");
        }
    }

    #[test]
    fn update_hits_and_misses() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(t.update(&v, 5, 1).unwrap(), OpResult::Missing);
        t.put(&v, 5, 1).unwrap();
        assert_eq!(t.update(&v, 5, 2).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 5).unwrap(), OpResult::Found(2));
    }

    #[test]
    fn bug5_update_leaks_bucket_lock() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.put(&v, 7, 1).unwrap();
        t.update(&v, 7, 2).unwrap(); // value changes: lock released
        t.put(&v, 7, 9).unwrap(); // bucket still usable
        t.update(&v, 7, 9).unwrap(); // idempotent update: leaks the lock
                                     // A put to the same bucket now spins until the deadline.
        let s2 = Session::new(
            Arc::clone(s.pool()),
            SessionConfig {
                deadline: std::time::Duration::from_millis(100),
                ..SessionConfig::default()
            },
        );
        let t2 = Pclht::recover(&s2).unwrap(); // recovery keeps bucket locks!
        let v2 = s2.view(ThreadId(1));
        assert_eq!(t2.put(&v2, 7, 3).unwrap_err(), RtError::Timeout);
    }

    #[test]
    fn data_survives_crash_when_flushed() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=10u64 {
            t.put(&v, k, k + 50).unwrap();
        }
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = Pclht::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        for k in 1..=10u64 {
            assert_eq!(t2.get(&v2, k).unwrap(), OpResult::Found(k + 50), "key {k}");
        }
    }

    #[test]
    fn four_sync_annotations_are_registered() {
        let (s, _t) = fresh();
        let names: Vec<String> = s.annotations().iter().map(|a| a.name.clone()).collect();
        assert_eq!(names.len(), 4);
        assert!(names.contains(&"clht.bucket_lock".to_owned()));
        assert!(names.contains(&"clht.resize_lock".to_owned()));
    }

    #[test]
    fn resize_produces_intra_inconsistency_bug3() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=120u64 {
            t.put(&v, k, k).unwrap();
        }
        let f = s.finish();
        // GC read its own unflushed table_new and logged it durably.
        let intra: Vec<_> = f
            .inconsistencies
            .iter()
            .filter(|i| {
                i.candidate.kind == pmrace_runtime::report::CandidateKind::Intra
                    && pmrace_runtime::site_label(i.candidate.write_site).contains("789")
            })
            .collect();
        assert!(!intra.is_empty(), "bug 3 intra inconsistency not detected");
    }

    #[test]
    fn chains_hold_colliding_keys_before_resize() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        // Find 4+ keys that land in the same root bucket of the initial
        // 4-bucket table: they must chain (3 slots + overflow) without
        // losing anything.
        let mut colliding = Vec::new();
        let target_bucket = crate::util::hash64(1) % INITIAL_BUCKETS;
        for k in 1..200u64 {
            if crate::util::hash64(k) % INITIAL_BUCKETS == target_bucket {
                colliding.push(k);
            }
            if colliding.len() == 4 {
                break;
            }
        }
        assert_eq!(colliding.len(), 4);
        for (i, &k) in colliding.iter().enumerate() {
            t.put(&v, k, i as u64 + 100).unwrap();
        }
        for (i, &k) in colliding.iter().enumerate() {
            assert_eq!(
                t.get(&v, k).unwrap(),
                OpResult::Found(i as u64 + 100),
                "key {k}"
            );
        }
        // The 4th key lives in an overflow bucket; delete and reinsert it.
        let last = colliding[3];
        assert_eq!(t.del(&v, last).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, last).unwrap(), OpResult::Missing);
        t.put(&v, last, 999).unwrap();
        assert_eq!(t.get(&v, last).unwrap(), OpResult::Found(999));
    }

    #[test]
    fn gc_recycles_chain_buckets() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=120u64 {
            t.put(&v, k, k).unwrap();
        }
        // After resizes + GC, live allocations are bounded: current table,
        // its chains, and the root — not every table ever allocated.
        let stats = t.alloc.stats();
        assert!(
            stats.live_allocs < 40,
            "chain buckets must be recycled: {stats:?}"
        );
    }

    #[test]
    fn exec_maps_zero_key_away_from_empty_marker() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(
            t.exec(&v, &Op::Insert { key: 0, value: 9 }).unwrap(),
            OpResult::Done
        );
        assert_eq!(t.exec(&v, &Op::Get { key: 0 }).unwrap(), OpResult::Found(9));
        assert_eq!(
            t.exec(&v, &Op::Incr { key: 0, by: 1 }).unwrap(),
            OpResult::Done
        );
        assert_eq!(
            t.exec(&v, &Op::Get { key: 1 }).unwrap(),
            OpResult::Found(10)
        );
    }
}

//! Concurrent persistent-memory systems under test.
//!
//! Rust re-implementations of the five systems PMRace evaluates (Table 1),
//! written against the instrumented [`PmView`] API
//! and seeded with the bugs the paper reports (Table 2):
//!
//! | module | system | concurrency | seeded bugs |
//! |---|---|---|---|
//! | [`pclht`] | P-CLHT static hashing (RECIPE) | bucket locks, lock-free search | 1–5 |
//! | [`clevel`] | clevel hashing | lock-free | benign (Fig. 7) |
//! | [`cceh`] | CCEH extendible hashing | segment locks | 6, 7 |
//! | [`fastfair`] | FAST-FAIR B+-tree | node locks | 8 |
//! | [`memkv`] | memcached-pmem key-value store | item/LRU locks | 9–14 |
//!
//! All targets implement [`Target`] and are exposed through [`TargetSpec`]
//! so the fuzzer can drive any of them uniformly: `init` formats a fresh
//! pool and builds the structure, `recover` reopens an existing pool the way
//! the system's restart path would (running its recovery code under the
//! session's checkers — that is what post-failure validation observes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cceh;
pub mod clevel;
pub mod fastfair;
pub mod figure1;
pub mod memkv;
pub mod pclht;
pub mod util;

use std::sync::Arc;

use pmrace_pmem::PoolOpts;
use pmrace_runtime::{PmView, RtError, Session};

/// One request a driver thread issues against a target (the operation
/// alphabet of the fuzzer's structured seeds, §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Insert `key -> value` (memcached `set`/`add`).
    Insert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Update an existing key (memcached `replace`).
    Update {
        /// Key.
        key: u64,
        /// New value.
        value: u64,
    },
    /// Remove a key.
    Delete {
        /// Key.
        key: u64,
    },
    /// Look a key up.
    Get {
        /// Key.
        key: u64,
    },
    /// Add to a numeric value (memcached `incr`; other targets treat it as
    /// read-modify-write update).
    Incr {
        /// Key.
        key: u64,
        /// Amount.
        by: u64,
    },
    /// Subtract from a numeric value (memcached `decr`).
    Decr {
        /// Key.
        key: u64,
        /// Amount.
        by: u64,
    },
}

impl Op {
    /// The key this operation addresses.
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            Op::Insert { key, .. }
            | Op::Update { key, .. }
            | Op::Delete { key }
            | Op::Get { key }
            | Op::Incr { key, .. }
            | Op::Decr { key, .. } => key,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Op::Insert { key, value } => write!(f, "insert {key}={value}"),
            Op::Update { key, value } => write!(f, "update {key}={value}"),
            Op::Delete { key } => write!(f, "delete {key}"),
            Op::Get { key } => write!(f, "get {key}"),
            Op::Incr { key, by } => write!(f, "incr {key}+{by}"),
            Op::Decr { key, by } => write!(f, "decr {key}-{by}"),
        }
    }
}

/// Outcome of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// Mutation applied.
    Done,
    /// Lookup hit with the stored value.
    Found(u64),
    /// Key absent (lookup miss, failed update/delete).
    Missing,
}

/// A concurrent PM system under test.
pub trait Target: Send + Sync {
    /// System name (matches Table 1).
    fn name(&self) -> &'static str;

    /// Execute one operation on behalf of the worker thread owning `view`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors; [`RtError::Timeout`] means the campaign
    /// deadline fired (possible hang bug).
    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError>;

    /// Read-only lookup (used by differential tests).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn get(&self, view: &PmView, key: u64) -> Result<Option<u64>, RtError> {
        match self.exec(view, &Op::Get { key })? {
            OpResult::Found(v) => Ok(Some(v)),
            _ => Ok(None),
        }
    }
}

/// Constructor building a target instance over a session.
pub type TargetCtor = fn(&Arc<Session>) -> Result<Arc<dyn Target>, RtError>;

/// Constructor table entry for a target system.
#[derive(Clone, Copy)]
pub struct TargetSpec {
    /// System name.
    pub name: &'static str,
    /// Format a fresh pool and build an empty instance (registers sync-var
    /// annotations on the session).
    pub init: TargetCtor,
    /// Reopen an existing pool running the system's recovery code.
    pub recover: TargetCtor,
    /// Pool options this target wants.
    pub pool: fn() -> PoolOpts,
}

impl std::fmt::Debug for TargetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetSpec")
            .field("name", &self.name)
            .finish()
    }
}

/// Specs of all five evaluated systems, in Table 1 order.
#[must_use]
pub fn all_targets() -> Vec<TargetSpec> {
    vec![
        pclht::SPEC,
        clevel::SPEC,
        cceh::SPEC,
        fastfair::SPEC,
        memkv::SPEC,
    ]
}

/// Look a target up by name.
#[must_use]
pub fn target_spec(name: &str) -> Option<TargetSpec> {
    all_targets().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_targets_are_registered() {
        let names: Vec<&str> = all_targets().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["P-CLHT", "clevel", "CCEH", "FAST-FAIR", "memcached-pmem"]
        );
        assert!(target_spec("CCEH").is_some());
        assert!(target_spec("nope").is_none());
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Insert { key: 3, value: 4 }.key(), 3);
        assert_eq!(Op::Decr { key: 9, by: 1 }.key(), 9);
        assert_eq!(Op::Get { key: 1 }.to_string(), "get 1");
    }
}

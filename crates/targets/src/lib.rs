//! Concurrent persistent-memory systems under test.
//!
//! Rust re-implementations of the five systems PMRace evaluates (Table 1),
//! written against the instrumented [`PmView`](pmrace_runtime::PmView) API
//! and seeded with the bugs the paper reports (Table 2):
//!
//! | module | system | concurrency | seeded bugs |
//! |---|---|---|---|
//! | [`pclht`] | P-CLHT static hashing (RECIPE) | bucket locks, lock-free search | 1–5 |
//! | [`clevel`] | clevel hashing | lock-free | benign (Fig. 7) |
//! | [`cceh`] | CCEH extendible hashing | segment locks | 6, 7 |
//! | [`fastfair`] | FAST-FAIR B+-tree | node locks | 8 |
//! | [`memkv`] | memcached-pmem key-value store | item/LRU locks | 9–14 |
//!
//! All targets implement the public [`Target`] trait from `pmrace-api`
//! and are exposed through [`TargetSpec`] so the fuzzer can drive any of
//! them uniformly: `init` formats a fresh pool and builds the structure,
//! `recover` reopens an existing pool the way the system's restart path
//! would (running its recovery code under the session's checkers — that
//! is what post-failure validation observes).
//!
//! Rust has no life-before-main, so the built-ins reach the process-global
//! registry through [`register_builtins`] (idempotent); the long-standing
//! [`all_targets`] / [`target_spec`] entry points call it implicitly, so
//! existing harness code keeps working unchanged. Out-of-tree workloads
//! skip this crate entirely and call
//! [`pmrace_api::register_target`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cceh;
pub mod clevel;
pub mod fastfair;
pub mod figure1;
pub mod memkv;
pub mod pclht;
pub mod util;

pub use pmrace_api::{Op, OpResult, Target, TargetCtor, TargetSpec};

/// Specs of all five built-in systems, in Table 1 order.
fn builtin_specs() -> [TargetSpec; 5] {
    [
        pclht::SPEC,
        clevel::SPEC,
        cceh::SPEC,
        fastfair::SPEC,
        memkv::SPEC,
    ]
}

/// Register the five built-in systems with the process-global target
/// registry (in Table 1 order). Idempotent and thread-safe: call it from
/// any entry point that resolves targets by name; repeat calls are free.
pub fn register_builtins() {
    for spec in builtin_specs() {
        // `ensure_registered` is atomic per spec under the registry lock,
        // so concurrent first calls from racing fleet workers are safe
        // without a caller-side `Once`.
        pmrace_api::ensure_registered(spec)
            .expect("built-in target names are unique across suites");
    }
}

/// Specs of all five evaluated systems, in Table 1 order.
///
/// Exactly the built-ins, regardless of what else has been registered —
/// Table 2 iteration and the evaluation sweeps depend on this stable
/// five-element list. For *every* registered target (built-in plus
/// plugins, registration order) use
/// [`pmrace_api::all_targets`]. Implicitly
/// ensures the built-ins are registered.
#[must_use]
pub fn all_targets() -> Vec<TargetSpec> {
    register_builtins();
    builtin_specs().to_vec()
}

/// Look a target up by name in the process-global registry, after making
/// sure the built-ins are registered. Resolves plugin targets too.
#[must_use]
pub fn target_spec(name: &str) -> Option<TargetSpec> {
    register_builtins();
    pmrace_api::resolve_target(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_targets_are_registered() {
        let names: Vec<&str> = all_targets().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["P-CLHT", "clevel", "CCEH", "FAST-FAIR", "memcached-pmem"]
        );
        assert!(target_spec("CCEH").is_some());
        assert!(target_spec("nope").is_none());
    }

    #[test]
    fn builtins_land_in_the_global_registry_in_table_order() {
        register_builtins();
        register_builtins(); // idempotent
        let registered: Vec<&str> = pmrace_api::all_targets()
            .iter()
            .map(|s| s.name)
            .filter(|n| all_targets().iter().any(|s| s.name == *n))
            .collect();
        assert_eq!(
            registered,
            vec!["P-CLHT", "clevel", "CCEH", "FAST-FAIR", "memcached-pmem"]
        );
        assert_eq!(
            pmrace_api::resolve_target_or_err("P-CLHT").unwrap().name,
            "P-CLHT"
        );
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Insert { key: 3, value: 4 }.key(), 3);
        assert_eq!(Op::Decr { key: 9, by: 1 }.key(), 9);
        assert_eq!(Op::Get { key: 1 }.to_string(), "get 1");
    }
}

//! memcached text-protocol front end (the `process_command` path measured
//! in Table 4).
//!
//! Supports the command families the paper's coverage experiment reports:
//! `get`/`bget`, `set`/`add`/`replace`/`append`/`prepend`, `incr`, `decr`,
//! `delete`, and the error path for invalid input. Values are numeric (this
//! port stores word-sized values); the `bytes` field of storage commands is
//! parsed and validated like the original, so random byte-mutated inputs
//! from the AFL-style baseline mostly die in parsing — exactly the effect
//! Table 4 demonstrates.

use pmrace_runtime::{site, PmView, RtError};

use super::MemKv;
use crate::OpResult;

/// Command family, for per-family coverage accounting (Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdFamily {
    /// `get` / `bget`.
    Get,
    /// `set` / `add` / `replace` / `append` / `prepend`.
    Update,
    /// `incr`.
    Incr,
    /// `decr`.
    Decr,
    /// `delete`.
    Delete,
    /// Anything unparsable.
    Error,
}

impl std::fmt::Display for CmdFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmdFamily::Get => "Get*",
            CmdFamily::Update => "Update*",
            CmdFamily::Incr => "incr",
            CmdFamily::Decr => "decr",
            CmdFamily::Delete => "delete",
            CmdFamily::Error => "Error",
        };
        f.write_str(s)
    }
}

/// Classify a raw command line without executing it.
#[must_use]
pub fn classify(line: &str) -> CmdFamily {
    match line.split_whitespace().next() {
        Some("get" | "bget" | "gets") => CmdFamily::Get,
        Some("set" | "add" | "replace" | "append" | "prepend" | "cas") => CmdFamily::Update,
        Some("incr") => CmdFamily::Incr,
        Some("decr") => CmdFamily::Decr,
        Some("delete") => CmdFamily::Delete,
        _ => CmdFamily::Error,
    }
}

fn parse_key(tok: &str) -> Option<u64> {
    // memcached keys are opaque strings; this port hashes the printable key
    // to its word-sized key space, accepting `key123`-style tokens.
    if tok.is_empty() || tok.len() > 250 || !tok.bytes().all(|b| b.is_ascii_graphic()) {
        return None;
    }
    let digits: String = tok.chars().filter(char::is_ascii_digit).collect();
    if let Ok(n) = digits.parse::<u64>() {
        return Some(n.max(1));
    }
    Some(
        crate::util::hash64(
            tok.bytes()
                .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(u64::from(b))),
        ) | 1,
    )
}

impl MemKv {
    /// Parse and execute one text-protocol command, returning the reply
    /// line. This is the instrumented `process_command` of the Table 4
    /// experiment: every family and outcome is a distinct branch.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the executed operation.
    pub fn process_command(&self, view: &PmView, line: &str) -> Result<String, RtError> {
        view.branch(site!("memkv.proto.process_command"));
        let mut toks = line.split_whitespace();
        let Some(cmd) = toks.next() else {
            view.branch(site!("memkv.proto.error.empty"));
            return Ok("ERROR".to_owned());
        };
        match cmd {
            "get" | "bget" | "gets" => {
                view.branch(site!("memkv.proto.get"));
                // Multi-key retrieval: `get key1 key2 ...`.
                let keys: Vec<u64> = toks.filter_map(parse_key).collect();
                if keys.is_empty() {
                    view.branch(site!("memkv.proto.get.badkey"));
                    return Ok("CLIENT_ERROR bad command line format".to_owned());
                }
                let mut reply = String::new();
                let mut hits = 0;
                for key in keys {
                    if let OpResult::Found(v) = self.get(view, key)? {
                        view.branch(site!("memkv.proto.get.hit"));
                        reply.push_str(&format!("VALUE {key} 0 8\r\n{v}\r\n"));
                        hits += 1;
                    }
                }
                if hits == 0 {
                    view.branch(site!("memkv.proto.get.miss"));
                }
                reply.push_str("END");
                Ok(reply)
            }
            "set" | "add" | "replace" | "append" | "prepend" | "cas" => {
                view.branch(site!("memkv.proto.update"));
                let key = toks.next().and_then(parse_key);
                let _flags = toks.next().and_then(|t| t.parse::<u64>().ok());
                let _exptime = toks.next().and_then(|t| t.parse::<i64>().ok());
                let bytes = toks.next().and_then(|t| t.parse::<usize>().ok());
                // `cas` carries an extra unique-token argument before the data.
                let cas_expected = if cmd == "cas" {
                    toks.next().and_then(|t| t.parse::<u64>().ok())
                } else {
                    None
                };
                let value = toks.next().and_then(|t| t.parse::<u64>().ok());
                if cmd == "cas" && cas_expected.is_none() {
                    view.branch(site!("memkv.proto.update.badcas"));
                    return Ok("CLIENT_ERROR bad command line format".to_owned());
                }
                let (Some(key), Some(_), Some(_), Some(bytes), Some(value)) =
                    (key, _flags, _exptime, bytes, value)
                else {
                    view.branch(site!("memkv.proto.update.badargs"));
                    return Ok("CLIENT_ERROR bad data chunk".to_owned());
                };
                if bytes > 1024 {
                    view.branch(site!("memkv.proto.update.toobig"));
                    return Ok("SERVER_ERROR object too large for cache".to_owned());
                }
                let res = match cmd {
                    "set" => {
                        view.branch(site!("memkv.proto.update.set"));
                        self.set(view, key, value)?
                    }
                    "add" => {
                        view.branch(site!("memkv.proto.update.add"));
                        self.add(view, key, value)?
                    }
                    "replace" => {
                        view.branch(site!("memkv.proto.update.replace"));
                        self.replace(view, key, value)?
                    }
                    "append" => {
                        view.branch(site!("memkv.proto.update.append"));
                        self.rmw(view, key, |old| old + value)?
                    }
                    "cas" => {
                        view.branch(site!("memkv.proto.update.cas"));
                        // Compare-and-store: replace only when the current
                        // value matches the client's token.
                        let expected = cas_expected.unwrap_or(0);
                        match self.get(view, key)? {
                            OpResult::Found(cur) if cur == expected => {
                                self.set(view, key, value)?
                            }
                            OpResult::Found(_) => {
                                view.branch(site!("memkv.proto.update.cas_exists"));
                                return Ok("EXISTS".to_owned());
                            }
                            _ => {
                                view.branch(site!("memkv.proto.update.cas_miss"));
                                return Ok("NOT_FOUND".to_owned());
                            }
                        }
                    }
                    _ => {
                        view.branch(site!("memkv.proto.update.prepend"));
                        self.rmw(view, key, |old| (old << 1u64) + value)?
                    }
                };
                match res {
                    OpResult::Done | OpResult::Found(_) => {
                        view.branch(site!("memkv.proto.update.stored"));
                        Ok("STORED".to_owned())
                    }
                    OpResult::Missing => {
                        view.branch(site!("memkv.proto.update.notstored"));
                        Ok("NOT_STORED".to_owned())
                    }
                }
            }
            "incr" | "decr" => {
                if cmd == "incr" {
                    view.branch(site!("memkv.proto.incr"));
                } else {
                    view.branch(site!("memkv.proto.decr"));
                }
                let key = toks.next().and_then(parse_key);
                let by = toks.next().and_then(|t| t.parse::<u64>().ok());
                let (Some(key), Some(by)) = (key, by) else {
                    view.branch(site!("memkv.proto.arith.badargs"));
                    return Ok("CLIENT_ERROR invalid numeric delta argument".to_owned());
                };
                let res = if cmd == "incr" {
                    view.branch(site!("memkv.proto.incr.exec"));
                    self.rmw(view, key, |v| v + by)?
                } else {
                    view.branch(site!("memkv.proto.decr.exec"));
                    self.rmw(view, key, |v| {
                        let dec = by.min(v.value());
                        v - dec
                    })?
                };
                match res {
                    OpResult::Found(v) => {
                        view.branch(site!("memkv.proto.arith.ok"));
                        Ok(v.to_string())
                    }
                    _ => {
                        view.branch(site!("memkv.proto.arith.miss"));
                        Ok("NOT_FOUND".to_owned())
                    }
                }
            }
            "delete" => {
                view.branch(site!("memkv.proto.delete"));
                let Some(key) = toks.next().and_then(parse_key) else {
                    view.branch(site!("memkv.proto.delete.badkey"));
                    return Ok("CLIENT_ERROR bad command line format".to_owned());
                };
                match self.del(view, key)? {
                    OpResult::Done => {
                        view.branch(site!("memkv.proto.delete.ok"));
                        Ok("DELETED".to_owned())
                    }
                    _ => {
                        view.branch(site!("memkv.proto.delete.miss"));
                        Ok("NOT_FOUND".to_owned())
                    }
                }
            }
            _ => {
                view.branch(site!("memkv.proto.error.unknown"));
                Ok("ERROR".to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::{Session, SessionConfig};
    use std::sync::Arc;

    fn fresh() -> (Arc<Session>, MemKv) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t = MemKv::init(&session).unwrap();
        (session, t)
    }

    #[test]
    fn classify_families() {
        assert_eq!(classify("get key1"), CmdFamily::Get);
        assert_eq!(classify("bget key1"), CmdFamily::Get);
        assert_eq!(classify("prepend k 0 0 8 5"), CmdFamily::Update);
        assert_eq!(classify("incr k 1"), CmdFamily::Incr);
        assert_eq!(classify("decr k 1"), CmdFamily::Decr);
        assert_eq!(classify("delete k"), CmdFamily::Delete);
        assert_eq!(classify("quux"), CmdFamily::Error);
        assert_eq!(classify(""), CmdFamily::Error);
    }

    #[test]
    fn set_then_get_via_protocol() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(
            t.process_command(&v, "set key7 0 0 8 42").unwrap(),
            "STORED"
        );
        let reply = t.process_command(&v, "get key7").unwrap();
        assert!(reply.contains("VALUE 7"), "{reply}");
        assert!(reply.contains("42"));
        assert_eq!(t.process_command(&v, "get key9").unwrap(), "END");
    }

    #[test]
    fn incr_decr_delete_via_protocol() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.process_command(&v, "set key3 0 0 8 10").unwrap();
        assert_eq!(t.process_command(&v, "incr key3 5").unwrap(), "15");
        assert_eq!(t.process_command(&v, "decr key3 100").unwrap(), "0");
        assert_eq!(
            t.process_command(&v, "incr missing 1").unwrap(),
            "NOT_FOUND"
        );
        assert_eq!(t.process_command(&v, "delete key3").unwrap(), "DELETED");
        assert_eq!(t.process_command(&v, "delete key3").unwrap(), "NOT_FOUND");
    }

    #[test]
    fn add_replace_append_via_protocol() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(
            t.process_command(&v, "replace k1 0 0 8 5").unwrap(),
            "NOT_STORED"
        );
        assert_eq!(t.process_command(&v, "add k1 0 0 8 5").unwrap(), "STORED");
        assert_eq!(
            t.process_command(&v, "add k1 0 0 8 6").unwrap(),
            "NOT_STORED"
        );
        assert_eq!(
            t.process_command(&v, "append k1 0 0 8 3").unwrap(),
            "STORED"
        );
        let reply = t.process_command(&v, "get k1").unwrap();
        assert!(reply.contains('8'), "5+3: {reply}");
    }

    #[test]
    fn multiget_and_cas_via_protocol() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.process_command(&v, "set key1 0 0 8 10").unwrap();
        t.process_command(&v, "set key2 0 0 8 20").unwrap();
        let reply = t.process_command(&v, "get key1 key2 key9").unwrap();
        assert!(reply.contains("VALUE 1"), "{reply}");
        assert!(reply.contains("VALUE 2"), "{reply}");
        assert!(!reply.contains("VALUE 9"), "{reply}");
        assert!(reply.ends_with("END"));
        // cas: wrong token -> EXISTS, right token -> STORED, missing -> NOT_FOUND.
        assert_eq!(
            t.process_command(&v, "cas key1 0 0 8 99 11").unwrap(),
            "EXISTS"
        );
        assert_eq!(
            t.process_command(&v, "cas key1 0 0 8 10 11").unwrap(),
            "STORED"
        );
        let reply = t.process_command(&v, "get key1").unwrap();
        assert!(reply.contains("11"), "{reply}");
        assert_eq!(
            t.process_command(&v, "cas key7 0 0 8 1 2").unwrap(),
            "NOT_FOUND"
        );
        assert!(t
            .process_command(&v, "cas key1 0 0 8 nope")
            .unwrap()
            .starts_with("CLIENT_ERROR"));
    }

    #[test]
    fn malformed_inputs_hit_error_branches() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(t.process_command(&v, "").unwrap(), "ERROR");
        assert_eq!(t.process_command(&v, "\x01\x02 junk").unwrap(), "ERROR");
        assert!(t
            .process_command(&v, "set onlykey")
            .unwrap()
            .starts_with("CLIENT_ERROR"));
        assert!(t
            .process_command(&v, "set k 0 0 99999 1")
            .unwrap()
            .starts_with("SERVER_ERROR"));
        assert!(t
            .process_command(&v, "incr k notanumber")
            .unwrap()
            .starts_with("CLIENT_ERROR"));
        assert!(t
            .process_command(&v, "get")
            .unwrap()
            .starts_with("CLIENT_ERROR"));
    }

    #[test]
    fn valid_commands_cover_more_branches_than_garbage() {
        let (s1, t1) = fresh();
        let v1 = s1.view(ThreadId(0));
        for line in [
            "set key1 0 0 8 5",
            "get key1",
            "incr key1 2",
            "decr key1 1",
            "delete key1",
            "add key2 0 0 8 9",
        ] {
            t1.process_command(&v1, line).unwrap();
        }
        let (_, valid_branches) = s1.coverage_counts();

        let (s2, t2) = fresh();
        let v2 = s2.view(ThreadId(0));
        for line in ["\x07\x08", "zzz", "!!!", "qqq 1 2", "", "\x7f"] {
            t2.process_command(&v2, line).unwrap();
        }
        let (_, garbage_branches) = s2.coverage_counts();
        assert!(
            valid_branches > garbage_branches,
            "valid {valid_branches} <= garbage {garbage_branches}"
        );
    }
}

//! memcached-pmem analog: a slab-backed persistent key-value store
//! (Table 1, row 5).
//!
//! Architecture mirrors Lenovo's memcached-pmem port:
//!
//! - **persistent slabs** — items (key, value, LRU links, slab class, flags,
//!   checksum) live in PM;
//! - **volatile index** — the hash table and LRU head/tail bookkeeping are
//!   DRAM structures *rebuilt from the slabs at restart*; recovery rewrites
//!   every item's `next`/`prev`/`hnext` links, which is why inconsistencies
//!   confined to those fields are benign (the 62 validated false positives
//!   of Table 3);
//! - **checksum-guarded values** — value updates refresh a checksum through
//!   `checksum_guard` sites the default whitelist recognizes.
//!
//! Seeded bugs (Table 2, bugs 9–14): `incr`/`decr`/`append` write item
//! values computed from another thread's unflushed value
//! (`memcached.c:2805` → `4292`/`4293`); LRU maintenance reads unflushed
//! `prev`/`next`/`it_flags`/`slabs_clsid` links and durably writes
//! `slabs_clsid`/`it_flags`/value-header fields that recovery does **not**
//! rebuild (`items.c:423/464/627/623`, `slabs.c:549/412`,
//! `items.c:1096` → `memcached.c:2824`).
//!
//! [`proto`] implements the memcached text protocol subset used by the
//! Table 4 input-generator experiment.

pub mod proto;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pmrace_pmem::PmAllocator;
use pmrace_runtime::{site, PmView, RtError, Session, TBytes, TU64};

use crate::{Op, OpResult, Target, TargetSpec};

// Root layout.
const K_LRU_HEAD: u64 = 0;
const K_LRU_TAIL: u64 = 8;
const K_NITEMS: u64 = 16;
const K_LAST_CLSID: u64 = 24;
const K_DIR: u64 = 64;
const DIR_CAP: u64 = 256;
const ROOT_SIZE: usize = 64 + (DIR_CAP as usize) * 8;

// Item layout (slab class 256), three cache lines:
//
// - line 0 (flushed by the store path): validity, key, checksum, hash link;
// - line 1 (NEVER flushed — the four missing-flush fields PMDebugger also
//   reports, behind bugs 11-14): `next`, `prev`, `slabs_clsid`, `it_flags`;
// - line 2 (flushed only on in-place replacement): value and value header —
//   the new-item path misses this flush (bugs 9/10).
const I_VALID: u64 = 0;
const I_KEY: u64 = 8;
const I_CHECKSUM: u64 = 16;
const I_HNEXT: u64 = 24;
const I_NEXT: u64 = 64;
const I_PREV: u64 = 72;
const I_CLSID: u64 = 80;
const I_FLAGS: u64 = 88;
const I_VALUE: u64 = 128;
const I_VHDR: u64 = 136;
/// Inline byte-value region (rest of the value cache line).
const I_VBYTES: u64 = 144;
/// Capacity of the inline byte-value region.
pub const VBYTES_CAP: usize = 48;
const ITEM_SIZE: usize = 192;

const FLAG_LINKED: u64 = 1;
const MAX_ITEMS: usize = 48;

/// The memcached-pmem instance bound to a session's pool.
#[derive(Debug)]
pub struct MemKv {
    alloc: PmAllocator,
    root: u64,
    /// Volatile hash index `key -> item offset` (rebuilt at restart).
    index: Mutex<HashMap<u64, u64>>,
    /// Global cache lock (memcached's coarse `cache_lock`); persistency
    /// races cross it because flushes are deferred past unlock.
    cache_lock: Mutex<()>,
}

/// Registration entry for the fuzzer.
pub static SPEC: TargetSpec = TargetSpec::new(
    "memcached-pmem",
    |session| Ok(Arc::new(MemKv::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(MemKv::recover(session)?) as Arc<dyn Target>),
    pmrace_pmem::PoolOpts::small,
);

impl MemKv {
    /// Format the pool (memcached-pmem maps it with the lightweight
    /// `pmem_map_file`, so no heavy initialization).
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        view.ntstore_u64(root + K_LRU_HEAD, 0u64, site!("memkv.init.head"))?;
        view.ntstore_u64(root + K_LRU_TAIL, 0u64, site!("memkv.init.tail"))?;
        view.ntstore_u64(root + K_NITEMS, 0u64, site!("memkv.init.nitems"))?;
        view.ntstore_u64(root + K_LAST_CLSID, 0u64, site!("memkv.init.last_clsid"))?;
        Ok(MemKv {
            alloc,
            root,
            index: Mutex::new(HashMap::new()),
            cache_lock: Mutex::new(()),
        })
    }

    /// Restart path: rebuild the LRU cache and the hash table from the
    /// persistent slabs (§4.4). Every live item's `next`/`prev`/`hnext`
    /// links are rewritten — overwriting (and thereby validating as benign)
    /// inconsistencies confined to them. Values, flags, and slab classes
    /// are *not* rewritten.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        let nitems = view
            .load_u64(root + K_NITEMS, site!("memkv.recover.read_nitems"))?
            .value()
            .min(DIR_CAP);
        let mut index = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut head: u64 = 0;
        let mut tail: u64 = 0;
        let mut prev: u64 = 0;
        for i in 0..nitems {
            let off = view
                .load_u64(root + K_DIR + i * 8, site!("memkv.recover.read_dir"))?
                .value();
            if off == 0 || !seen.insert(off) {
                continue;
            }
            // The rebuild pass rewrites the link fields of *every* slab
            // item, dead or alive — inconsistencies confined to
            // next/prev/hnext never survive a restart.
            view.ntstore_u64(off + I_HNEXT, 0u64, site!("memkv.recover.clear_hnext"))?;
            view.ntstore_u64(off + I_NEXT, 0u64, site!("memkv.recover.clear_next"))?;
            view.ntstore_u64(off + I_PREV, 0u64, site!("memkv.recover.clear_prev"))?;
            let valid = view
                .load_u64(off + I_VALID, site!("memkv.recover.read_valid"))?
                .value();
            if valid != 1 {
                continue;
            }
            let key = view
                .load_u64(off + I_KEY, site!("memkv.recover.read_key"))?
                .value();
            view.ntstore_u64(off + I_PREV, prev, site!("memkv.recover.set_prev"))?;
            if prev != 0 {
                view.ntstore_u64(prev + I_NEXT, off, site!("memkv.recover.set_next"))?;
            } else {
                head = off;
            }
            tail = off;
            prev = off;
            index.insert(key, off);
        }
        view.ntstore_u64(root + K_LRU_HEAD, head, site!("memkv.recover.set_head"))?;
        view.ntstore_u64(root + K_LRU_TAIL, tail, site!("memkv.recover.set_tail"))?;
        Ok(MemKv {
            alloc,
            root,
            index: Mutex::new(index),
            cache_lock: Mutex::new(()),
        })
    }

    /// Number of live items in the volatile index.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// `true` when the store holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.lock().is_empty()
    }

    fn checksum(key: u64, value: u64) -> u64 {
        key ^ value.rotate_left(17) ^ 0xc0ffee
    }

    /// Splice `it` in at the LRU head. The `next`/`prev` stores are the
    /// deferred-flush windows behind bugs 11/12 and the recovery-validated
    /// false positives.
    fn link_lru(&self, view: &PmView, it: u64) -> Result<(), RtError> {
        let head = view.load_u64(self.root + K_LRU_HEAD, site!("memkv.lru.read_head"))?;
        view.store_u64(it + I_NEXT, head.clone(), site!("slabs.c:549.store_next"))?;
        view.store_u64(it + I_PREV, 0u64, site!("items.c:423.store_prev"))?;
        if head != 0u64 {
            // Store through the (possibly unflushed) head pointer.
            view.store_u64(
                head.clone() + I_PREV,
                it,
                site!("memkv.lru.store_head_prev"),
            )?;
        } else {
            view.store_u64(self.root + K_LRU_TAIL, it, site!("memkv.lru.store_tail"))?;
            view.persist(self.root + K_LRU_TAIL, 8, site!("memkv.lru.flush_tail"))?;
        }
        view.store_u64(self.root + K_LRU_HEAD, it, site!("memkv.lru.store_head"))?;
        view.persist(self.root + K_LRU_HEAD, 8, site!("memkv.lru.flush_head"))?;
        Ok(())
    }

    /// Remove `it` from the LRU list. Reads the (possibly unflushed)
    /// neighbor links — bug 12's racy read (`slabs.c:412`) and bug 11's
    /// (`items.c:464`) — and durably touches the neighbor's `it_flags`.
    fn unlink_lru(&self, view: &PmView, it: u64) -> Result<(), RtError> {
        let n = view.load_u64(it + I_NEXT, site!("slabs.c:412.read_next"))?;
        let p = view.load_u64(it + I_PREV, site!("items.c:464.read_prev"))?;
        if p != 0u64 {
            view.store_u64(
                p.clone() + I_NEXT,
                n.clone(),
                site!("memkv.lru.store_p_next"),
            )?;
        } else {
            view.store_u64(
                self.root + K_LRU_HEAD,
                n.clone(),
                site!("memkv.lru.relink_head"),
            )?;
            view.persist(
                self.root + K_LRU_HEAD,
                8,
                site!("memkv.lru.flush_relink_head"),
            )?;
        }
        if n != 0u64 {
            view.store_u64(
                n.clone() + I_PREV,
                p.clone(),
                site!("memkv.lru.store_n_prev"),
            )?;
            // Bug 12: durably mark the neighbor reached through the
            // unflushed `next` pointer (its flags survive recovery).
            // Missing flush: the neighbor's it_flags stay unpersisted.
            view.store_u64(
                n + I_FLAGS,
                FLAG_LINKED | 2,
                site!("slabs.c:412.store_it_flags"),
            )?;
        } else {
            view.store_u64(self.root + K_LRU_TAIL, p, site!("memkv.lru.relink_tail"))?;
            view.persist(
                self.root + K_LRU_TAIL,
                8,
                site!("memkv.lru.flush_relink_tail"),
            )?;
        }
        Ok(())
    }

    /// Evict the LRU tail when the store is full. Carries bugs 11 and 14:
    /// durable slab-class writes derived from unflushed `prev`/`slabs_clsid`.
    fn evict(&self, view: &PmView) -> Result<(), RtError> {
        view.branch(site!("memkv.evict"));
        let tail = view.load_u64(self.root + K_LRU_TAIL, site!("memkv.lru.read_tail"))?;
        if tail == 0u64 {
            return Ok(());
        }
        let victim = tail.value();
        let p = view.load_u64(victim + I_PREV, site!("items.c:464.read_prev"))?;
        if p != 0u64 {
            // Bug 11: promote the new tail's slab class through the
            // unflushed `prev` pointer; `slabs_clsid` survives recovery.
            // Missing flush: the promoted slab class stays unpersisted.
            view.store_u64(p.clone() + I_CLSID, 1u64, site!("items.c:464.store_clsid"))?;
        }
        // Bug 14: propagate the victim's (possibly unflushed) slab class
        // into the durable free-slot accounting.
        let clsid = view.load_u64(victim + I_CLSID, site!("items.c:623.read_clsid"))?;
        view.ntstore_u64(
            self.root + K_LAST_CLSID,
            clsid,
            site!("items.c:627.store_clsid"),
        )?;
        self.unlink_lru(view, victim)?;
        view.ntstore_u64(victim + I_VALID, 0u64, site!("memkv.evict.invalidate"))?;
        let key = view
            .load_u64(victim + I_KEY, site!("memkv.evict.read_key"))?
            .value();
        self.index.lock().remove(&key);
        let _ = self.alloc.free(victim, view.tid());
        Ok(())
    }

    fn dir_append(&self, view: &PmView, off: u64) -> Result<(), RtError> {
        let n = view
            .load_u64(self.root + K_NITEMS, site!("memkv.dir.read_nitems"))?
            .value();
        if n < DIR_CAP {
            view.ntstore_u64(self.root + K_DIR + n * 8, off, site!("memkv.dir.append"))?;
            view.ntstore_u64(self.root + K_NITEMS, n + 1, site!("memkv.dir.bump"))?;
        }
        Ok(())
    }

    /// `set`: insert or replace.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn set(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.set"));
        let _guard = self.cache_lock.lock();
        let existing = self.index.lock().get(&key).copied();
        if let Some(it) = existing {
            // Bug 13 shape: the value header is derived from the (possibly
            // unflushed) `it_flags` word.
            let flags = view.load_u64(it + I_FLAGS, site!("memcached.c:2824.read_flags"))?;
            view.store_u64(
                it + I_VHDR,
                (flags << 32u64) | 8u64,
                site!("memcached.c:2824.store_value_header"),
            )?;
            view.store_u64(it + I_VALUE, value, site!("memcached.c:4292.store_value"))?;
            view.ntstore_u64(
                it + I_CHECKSUM,
                Self::checksum(key, value),
                site!("memkv.checksum_guard.update"),
            )?;
            self.unlink_lru(view, it)?;
            self.link_lru(view, it)?;
            // Only the value cache line is flushed; the LRU link fields
            // keep their missing-flush windows.
            view.persist(it + I_VALUE, 16, site!("memkv.set.flush_value"))?;
            return Ok(OpResult::Done);
        }
        if self.index.lock().len() >= MAX_ITEMS {
            self.evict(view)?;
        }
        let it = self.alloc.alloc(ITEM_SIZE, view.tid())?;
        view.ntstore_u64(it + I_KEY, key, site!("memkv.set.store_key"))?;
        view.store_u64(it + I_VALUE, value, site!("memcached.c:4292.store_value"))?;
        view.store_u64(it + I_VHDR, 8u64, site!("memcached.c:4293.store_vallen"))?;
        view.store_u64(it + I_CLSID, 2u64, site!("items.c:627.store_clsid"))?;
        view.store_u64(it + I_FLAGS, FLAG_LINKED, site!("items.c:1096.store_flags"))?;
        view.ntstore_u64(
            it + I_CHECKSUM,
            Self::checksum(key, value),
            site!("memkv.checksum_guard.update"),
        )?;
        view.ntstore_u64(it + I_HNEXT, 0u64, site!("memkv.set.store_hnext"))?;
        self.link_lru(view, it)?;
        view.ntstore_u64(it + I_VALID, 1u64, site!("memkv.set.validate"))?;
        self.dir_append(view, it)?;
        self.index.lock().insert(key, it);
        // Flush only the identity line; LRU links (line 1) and the value
        // (line 2) keep their missing-flush windows (bugs 9-14).
        view.persist(it, 32, site!("memkv.set.flush_item"))?;
        Ok(OpResult::Done)
    }

    /// `get`: lookup + LRU bump.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.get"));
        let _guard = self.cache_lock.lock();
        let Some(it) = self.index.lock().get(&key).copied() else {
            view.branch(site!("memkv.get.miss"));
            return Ok(OpResult::Missing);
        };
        let v = view.load_u64(it + I_VALUE, site!("memcached.c:2805.read_value"))?;
        self.unlink_lru(view, it)?;
        self.link_lru(view, it)?;
        view.branch(site!("memkv.get.hit"));
        Ok(OpResult::Found(v.value()))
    }

    /// `add`: insert only if absent.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn add(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.add"));
        if self.index.lock().contains_key(&key) {
            return Ok(OpResult::Missing);
        }
        self.set(view, key, value)
    }

    /// `replace`: update only if present.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn replace(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.replace"));
        if !self.index.lock().contains_key(&key) {
            return Ok(OpResult::Missing);
        }
        self.set(view, key, value)
    }

    /// Read-modify-write on the stored value: `incr`/`decr`/`append`
    /// (bugs 9 and 10 — the new value and length derive from a possibly
    /// unflushed read at `memcached.c:2805`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn rmw(
        &self,
        view: &PmView,
        key: u64,
        f: impl FnOnce(TU64) -> TU64,
    ) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.rmw"));
        let _guard = self.cache_lock.lock();
        let Some(it) = self.index.lock().get(&key).copied() else {
            return Ok(OpResult::Missing);
        };
        let old = view.load_u64(it + I_VALUE, site!("memcached.c:2805.read_value"))?;
        let new = f(old);
        // memcached's append/incr path allocates a fresh item for the new
        // value and swaps it in — so the value/length writes land on a
        // different item than the one the non-persisted read came from.
        let nit = self.alloc.alloc(ITEM_SIZE, view.tid())?;
        view.ntstore_u64(nit + I_KEY, key, site!("memkv.rmw.store_key"))?;
        view.store_u64(
            nit + I_VALUE,
            new.clone(),
            site!("memcached.c:4292.store_value"),
        )?;
        view.store_u64(
            nit + I_VHDR,
            (new.clone() & 0xffu64) + 8u64,
            site!("memcached.c:4293.store_vallen"),
        )?;
        view.store_u64(nit + I_CLSID, 2u64, site!("items.c:627.store_clsid"))?;
        view.store_u64(
            nit + I_FLAGS,
            FLAG_LINKED,
            site!("items.c:1096.store_flags"),
        )?;
        view.ntstore_u64(
            nit + I_CHECKSUM,
            Self::checksum(key, new.value()),
            site!("memkv.checksum_guard.update"),
        )?;
        view.ntstore_u64(nit + I_HNEXT, 0u64, site!("memkv.rmw.store_hnext"))?;
        self.unlink_lru(view, it)?;
        view.ntstore_u64(it + I_VALID, 0u64, site!("memkv.rmw.invalidate_old"))?;
        self.link_lru(view, nit)?;
        view.ntstore_u64(nit + I_VALID, 1u64, site!("memkv.rmw.validate"))?;
        self.dir_append(view, nit)?;
        self.index.lock().insert(key, nit);
        view.persist(nit, 32, site!("memkv.rmw.flush_item"))?;
        let _ = self.alloc.free(it, view.tid());
        Ok(OpResult::Found(new.value()))
    }

    /// Store an opaque byte value (the memcached data block). The bytes
    /// live on the item's value cache line and inherit its missing-flush
    /// window; `len` is kept in the numeric value slot.
    ///
    /// # Errors
    ///
    /// Returns `Missing` for values over [`VBYTES_CAP`]; propagates runtime
    /// errors otherwise.
    pub fn set_bytes(&self, view: &PmView, key: u64, data: &TBytes) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.set_bytes"));
        if data.len() > VBYTES_CAP {
            return Ok(OpResult::Missing);
        }
        self.set(view, key, data.len() as u64)?;
        let Some(it) = self.index.lock().get(&key).copied() else {
            return Ok(OpResult::Missing);
        };
        let mut padded = data.bytes().to_vec();
        padded.resize(VBYTES_CAP, 0);
        let padded = TBytes::with_taint(padded, data.taint().clone());
        view.store_bytes(
            it + I_VBYTES,
            &padded,
            site!("memcached.c:4292.store_value"),
        )?;
        Ok(OpResult::Done)
    }

    /// Read back an opaque byte value stored with [`MemKv::set_bytes`].
    /// The returned buffer carries taint if the bytes are unpersisted.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get_bytes(&self, view: &PmView, key: u64) -> Result<Option<TBytes>, RtError> {
        view.branch(site!("memkv.get_bytes"));
        let _guard = self.cache_lock.lock();
        let Some(it) = self.index.lock().get(&key).copied() else {
            return Ok(None);
        };
        let len = view
            .load_u64(it + I_VALUE, site!("memcached.c:2805.read_value"))?
            .value() as usize;
        let raw = view.load_bytes(
            it + I_VBYTES,
            len.min(VBYTES_CAP),
            site!("memcached.c:2805.read_value_bytes"),
        )?;
        Ok(Some(raw))
    }

    /// `delete`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn del(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("memkv.del"));
        let _guard = self.cache_lock.lock();
        let Some(it) = self.index.lock().remove(&key) else {
            return Ok(OpResult::Missing);
        };
        self.unlink_lru(view, it)?;
        view.ntstore_u64(it + I_VALID, 0u64, site!("memkv.del.invalidate"))?;
        let _ = self.alloc.free(it, view.tid());
        Ok(OpResult::Done)
    }
}

impl Target for MemKv {
    fn name(&self) -> &'static str {
        "memcached-pmem"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        match *op {
            Op::Insert { key, value } => self.set(view, key.max(1), value),
            Op::Update { key, value } => self.replace(view, key.max(1), value),
            Op::Delete { key } => self.del(view, key.max(1)),
            Op::Get { key } => self.get(view, key.max(1)),
            Op::Incr { key, by } => self.rmw(view, key.max(1), |v| v + by),
            Op::Decr { key, by } => self.rmw(view, key.max(1), |v| {
                let dec = by.min(v.value());
                v - dec
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::SessionConfig;

    fn fresh() -> (Arc<Session>, MemKv) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t = MemKv::init(&session).unwrap();
        (session, t)
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.set(&v, 1, 11).unwrap();
        assert_eq!(t.get(&v, 1).unwrap(), OpResult::Found(11));
        t.set(&v, 1, 12).unwrap();
        assert_eq!(t.get(&v, 1).unwrap(), OpResult::Found(12));
        assert_eq!(t.del(&v, 1).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 1).unwrap(), OpResult::Missing);
        assert!(t.is_empty());
    }

    #[test]
    fn add_and_replace_semantics() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        assert_eq!(t.replace(&v, 5, 1).unwrap(), OpResult::Missing);
        assert_eq!(t.add(&v, 5, 1).unwrap(), OpResult::Done);
        assert_eq!(t.add(&v, 5, 2).unwrap(), OpResult::Missing);
        assert_eq!(t.replace(&v, 5, 2).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 5).unwrap(), OpResult::Found(2));
    }

    #[test]
    fn rmw_incr_decr() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.set(&v, 7, 10).unwrap();
        assert_eq!(
            t.exec(&v, &Op::Incr { key: 7, by: 5 }).unwrap(),
            OpResult::Found(15)
        );
        assert_eq!(
            t.exec(&v, &Op::Decr { key: 7, by: 100 }).unwrap(),
            OpResult::Found(0)
        );
        assert_eq!(
            t.exec(&v, &Op::Incr { key: 99, by: 1 }).unwrap(),
            OpResult::Missing
        );
    }

    #[test]
    fn eviction_keeps_store_bounded() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=(MAX_ITEMS as u64 + 20) {
            t.set(&v, k, k).unwrap();
        }
        assert!(t.len() <= MAX_ITEMS + 1);
        // The most recent keys survive.
        let last = MAX_ITEMS as u64 + 20;
        assert_eq!(t.get(&v, last).unwrap(), OpResult::Found(last));
    }

    #[test]
    fn new_item_value_is_lost_on_crash_missing_flush_bug() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.set(&v, 42, 777).unwrap(); // new-item path: value flush missing
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = MemKv::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        // The item header persisted (key found) but the value did not —
        // the durable consequence of bugs 9/10's missing flush.
        assert_eq!(t2.get(&v2, 42).unwrap(), OpResult::Found(0));
    }

    #[test]
    fn byte_values_roundtrip_and_carry_taint_when_unflushed() {
        let (s, t) = fresh();
        let w = s.view(ThreadId(0));
        let data = TBytes::from(b"hello pm world".as_slice());
        assert_eq!(t.set_bytes(&w, 9, &data).unwrap(), OpResult::Done);
        // Another thread reads the bytes while the value line is unflushed
        // (the new-item path misses the flush): tainted.
        let r = s.view(ThreadId(1));
        let got = t.get_bytes(&r, 9).unwrap().unwrap();
        assert_eq!(got.bytes(), data.bytes());
        assert!(got.is_tainted(), "unflushed value bytes must carry taint");
        // Oversized values are rejected.
        let big = TBytes::from(vec![0u8; VBYTES_CAP + 1]);
        assert_eq!(t.set_bytes(&w, 10, &big).unwrap(), OpResult::Missing);
        assert!(t.get_bytes(&w, 10).unwrap().is_none());
    }

    #[test]
    fn recovery_rebuilds_index_from_slabs() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=10u64 {
            t.set(&v, k, 1).unwrap();
            // Second set takes the replace path, which does flush values.
            t.set(&v, k, k * 5).unwrap();
        }
        t.del(&v, 3).unwrap();
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = MemKv::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        for k in 1..=10u64 {
            let want = if k == 3 {
                OpResult::Missing
            } else {
                OpResult::Found(k * 5)
            };
            assert_eq!(t2.get(&v2, k).unwrap(), want, "key {k}");
        }
    }

    #[test]
    fn recovery_overwrites_link_fields() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.set(&v, 1, 1).unwrap();
        t.set(&v, 2, 2).unwrap();
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let _t2 = MemKv::recover(&s2).unwrap();
        // Recovery must have stored to next/prev granules of live items:
        // that is what post-failure validation checks for.
        assert!(
            !s2.stored_granules().is_empty(),
            "recovery must rewrite link fields"
        );
        let f = s2.finish();
        assert!(
            f.candidates.is_empty(),
            "recovery reads persisted data only"
        );
    }

    #[test]
    fn rmw_on_unflushed_value_is_bug9_shape() {
        let (s, t) = fresh();
        let w = s.view(ThreadId(0));
        let r = s.view(ThreadId(1));
        t.set(&w, 4, 100).unwrap();
        // Dirty the value from thread 0 without flushing (replace path
        // defers the flush until after LRU work; emulate mid-window state).
        w.store_u64(
            {
                let it = *t.index.lock().get(&4).unwrap();
                it + I_VALUE
            },
            123u64,
            pmrace_runtime::site!("memcached.c:4292.store_value"),
        )
        .unwrap();
        // Thread 1 increments: reads the unflushed value, writes another.
        let got = t.rmw(&r, 4, |v| v + 1u64).unwrap();
        assert_eq!(got, OpResult::Found(124));
        let f = s.finish();
        let bug9 = f.inconsistencies.iter().any(|i| {
            pmrace_runtime::site_label(i.candidate.read_site).contains("2805")
                && pmrace_runtime::site_label(i.effect_site).contains("4292")
                && !i.whitelisted
        });
        assert!(bug9, "bug 9 inter inconsistency not detected");
    }
}

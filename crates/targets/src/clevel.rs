//! Clevel hashing: lock-free concurrent level hashing for PM (Table 1,
//! row 2).
//!
//! Two slot arrays (a big bottom level and a half-size top level); inserts
//! claim key slots with CAS, lookups scan both levels bottom-to-top,
//! deletes CAS keys back to empty. No locks anywhere — the paper found **no
//! bugs** in clevel, but it is the showcase for false-positive reduction:
//! the index is constructed inside a PMDK transaction, and the constructor
//! reads its own not-yet-persisted `meta` pointer to allocate the levels
//! (Fig. 7). PMRace detects those inconsistencies, and both the default
//! whitelist (`pmdk_tx_alloc` sites) and post-failure validation (recovery
//! rebuilds the index, overwriting the side effects) classify them benign.

use std::sync::Arc;

use parking_lot::Mutex;
use pmrace_pmem::PmAllocator;
use pmrace_runtime::{site, PmView, RtError, Session, TU64};

use crate::util::hash64;
use crate::{Op, OpResult, Target, TargetSpec};

// Root layout.
const R_META: u64 = 0;
const ROOT_SIZE: usize = 64;

// Meta layout.
const M_FIRST_LEVEL: u64 = 0;
const M_LAST_LEVEL: u64 = 8;
const M_FIRST_CAP: u64 = 16;
const M_LAST_CAP: u64 = 24;
const META_SIZE: usize = 64;

const FIRST_LEVEL_SLOTS: u64 = 64;
const LAST_LEVEL_SLOTS: u64 = 32;
const PROBE: u64 = 4;

/// The clevel-hashing instance bound to a session's pool.
#[derive(Debug)]
pub struct Clevel {
    alloc: PmAllocator,
    meta: u64,
    /// Serializes level expansion (clevel's context-CAS retry loop,
    /// simplified; the volatile lock mirrors its single background
    /// rehashing thread).
    expand_lock: Mutex<()>,
}

/// Registration entry for the fuzzer.
pub static SPEC: TargetSpec = TargetSpec::new(
    "clevel",
    |session| Ok(Arc::new(Clevel::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(Clevel::recover(session)?) as Arc<dyn Target>),
    || pmrace_pmem::PoolOpts::small().heavy(), // libpmemobj-style init
);

impl Clevel {
    /// Format the pool and construct the index inside a PMDK transaction —
    /// the Fig. 7 flow, including the benign read of the unflushed `meta`.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;

        // transaction::manual tx(pop); make_persistent<clevel_hash>() ...
        let tx = alloc.begin_tx(view.tid())?;
        let meta = tx.alloc(META_SIZE)?;
        // Store the meta pointer with a plain store (inside the tx, flushed
        // at commit in PMDK; transiently dirty here).
        view.store_u64(
            root + R_META,
            meta,
            site!("clevel.pmdk_tx_alloc.store_meta"),
        )?;
        // Fig. 7: read the *non-persisted* meta pointer back...
        let m = view.load_u64(root + R_META, site!("clevel.pmdk_tx_alloc.read_meta"))?;
        // ...and allocate the levels based on it: durable side effects on a
        // tainted address — benign under the tx, whitelisted by default.
        let first = tx.alloc((FIRST_LEVEL_SLOTS * 16) as usize)?;
        let last = tx.alloc((LAST_LEVEL_SLOTS * 16) as usize)?;
        view.ntstore_u64(
            m.clone() + M_FIRST_LEVEL,
            first,
            site!("clevel.pmdk_tx_alloc.first_level"),
        )?;
        view.ntstore_u64(
            m.clone() + M_LAST_LEVEL,
            last,
            site!("clevel.pmdk_tx_alloc.last_level"),
        )?;
        view.ntstore_u64(
            m.clone() + M_FIRST_CAP,
            FIRST_LEVEL_SLOTS,
            site!("clevel.pmdk_tx_alloc.first_cap"),
        )?;
        view.ntstore_u64(
            m.clone() + M_LAST_CAP,
            LAST_LEVEL_SLOTS,
            site!("clevel.pmdk_tx_alloc.last_cap"),
        )?;
        for s in 0..FIRST_LEVEL_SLOTS {
            view.ntstore_u64(first + s * 16, 0u64, site!("clevel.init.zero_first"))?;
            view.ntstore_u64(
                first + s * 16 + 8,
                0u64,
                site!("clevel.init.zero_first_val"),
            )?;
        }
        for s in 0..LAST_LEVEL_SLOTS {
            view.ntstore_u64(last + s * 16, 0u64, site!("clevel.init.zero_last"))?;
            view.ntstore_u64(last + s * 16 + 8, 0u64, site!("clevel.init.zero_last_val"))?;
        }
        view.persist(root + R_META, 8, site!("clevel.init.flush_meta"))?;
        tx.commit()?;
        Ok(Clevel {
            alloc,
            meta,
            expand_lock: Mutex::new(()),
        })
    }

    /// Reopen an existing pool: an interrupted construction transaction is
    /// rolled back by the allocator, after which the index is rebuilt —
    /// overwriting any side effects the constructor left behind.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors; a pool whose construction never
    /// committed is rebuilt from scratch.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace_pmem::ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        let meta = view
            .load_u64(root + R_META, site!("clevel.recover.read_meta"))?
            .value();
        if meta == 0 {
            // Construction never completed: rebuild (overwrites everything).
            drop(alloc);
            return Self::init(session);
        }
        Ok(Clevel {
            alloc,
            meta,
            expand_lock: Mutex::new(()),
        })
    }

    /// Level expansion (clevel's resize): allocate a doubled top level,
    /// rehash the bottom level's items into the remaining levels, and
    /// rotate the level pointers. Inline rather than in a background
    /// thread, but with the same two-level b2t search structure.
    fn expand(&self, view: &PmView) -> Result<(), RtError> {
        view.branch(site!("clevel.expand"));
        let _guard = self.expand_lock.lock();
        let (first, last, fcap, lcap) = self.levels(view)?;
        let new_cap = fcap * 2;
        let new_level = self
            .alloc
            .alloc((new_cap * 16) as usize, view.tid())
            .map_err(RtError::from)?;
        for s in 0..new_cap {
            view.ntstore_u64(new_level + s * 16, 0u64, site!("clevel.expand.zero_key"))?;
            view.ntstore_u64(
                new_level + s * 16 + 8,
                0u64,
                site!("clevel.expand.zero_val"),
            )?;
        }
        // Rehash the (old) bottom level into the new top or old top. The
        // rehasher only moves *persisted* items: moving a concurrently
        // CAS'd, still-unflushed pair would itself be a PM inter-thread
        // inconsistency (PMRace flagged exactly that in an earlier version
        // of this code), so it waits for in-flight slots to drain.
        for slot in 0..lcap {
            let koff = last.clone() + slot * 16;
            let k = loop {
                let k = view.load_u64(koff.clone(), site!("clevel.expand.read_key"))?;
                if !k.is_tainted() {
                    break k;
                }
                view.spin_yield()?;
            };
            if k == 0u64 {
                continue;
            }
            let v = loop {
                let v = view.load_u64(koff.clone() + 8u64, site!("clevel.expand.read_val"))?;
                if !v.is_tainted() {
                    break v;
                }
                view.spin_yield()?;
            };
            let mut placed = false;
            for (base, cap) in [(TU64::from(new_level), new_cap), (first.clone(), fcap)] {
                let start = hash64(k.value()) % cap;
                for p in 0..PROBE {
                    let dst = base.clone() + ((start + p) % cap) * 16;
                    let (claimed, _) =
                        view.cas_u64(dst.clone(), 0, k.clone(), site!("clevel.expand.claim"))?;
                    if claimed {
                        view.store_u64(
                            dst.clone() + 8u64,
                            v.clone(),
                            site!("clevel.expand.store_val"),
                        )?;
                        view.persist(dst, 16, site!("clevel.expand.flush"))?;
                        placed = true;
                        break;
                    }
                }
                if placed {
                    break;
                }
            }
        }
        // Rotate: old top becomes bottom; new level becomes top.
        view.ntstore_u64(
            self.meta + M_LAST_LEVEL,
            first.clone(),
            site!("clevel.expand.set_last"),
        )?;
        view.ntstore_u64(
            self.meta + M_LAST_CAP,
            fcap,
            site!("clevel.expand.set_last_cap"),
        )?;
        view.ntstore_u64(
            self.meta + M_FIRST_LEVEL,
            new_level,
            site!("clevel.expand.set_first"),
        )?;
        view.ntstore_u64(
            self.meta + M_FIRST_CAP,
            new_cap,
            site!("clevel.expand.set_first_cap"),
        )?;
        let _ = self.alloc.free(last.value(), view.tid());
        Ok(())
    }

    fn levels(&self, view: &PmView) -> Result<(TU64, TU64, u64, u64), RtError> {
        let first = view.load_u64(self.meta + M_FIRST_LEVEL, site!("clevel.read_first_level"))?;
        let last = view.load_u64(self.meta + M_LAST_LEVEL, site!("clevel.read_last_level"))?;
        let fcap = view
            .load_u64(self.meta + M_FIRST_CAP, site!("clevel.read_first_cap"))?
            .value();
        let lcap = view
            .load_u64(self.meta + M_LAST_CAP, site!("clevel.read_last_cap"))?
            .value();
        Ok((first, last, fcap.max(1), lcap.max(1)))
    }

    /// Lock-free insert: claim a key slot with CAS, then publish the value.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors; returns `Missing` when both levels'
    /// probe windows remain full after several level expansions (pool
    /// exhaustion).
    pub fn put(&self, view: &PmView, key: u64, value: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clevel.put"));
        let (first, last, fcap, lcap) = self.levels(view)?;
        // Update in place if present (either level).
        for (base, cap) in [(first.clone(), fcap), (last.clone(), lcap)] {
            let start = hash64(key) % cap;
            for p in 0..PROBE {
                let koff = base.clone() + ((start + p) % cap) * 16;
                let k = view.load_u64(koff.clone(), site!("clevel.put.scan_key"))?;
                if k == key {
                    view.store_u64(koff.clone() + 8u64, value, site!("clevel.put.update_val"))?;
                    view.persist(koff + 8u64, 8, site!("clevel.put.flush_val"))?;
                    return Ok(OpResult::Done);
                }
            }
        }
        // Claim an empty slot bottom-to-top; expand and retry when both
        // levels' probe windows are full.
        for round in 0..4 {
            let (first, last, fcap, lcap) = self.levels(view)?;
            for (base, cap) in [(first, fcap), (last, lcap)] {
                let start = hash64(key) % cap;
                for p in 0..PROBE {
                    let koff = base.clone() + ((start + p) % cap) * 16;
                    let (claimed, _) =
                        view.cas_u64(koff.clone(), 0, key, site!("clevel.put.cas_key"))?;
                    if claimed {
                        view.store_u64(koff.clone() + 8u64, value, site!("clevel.put.store_val"))?;
                        view.persist(koff, 16, site!("clevel.put.flush_pair"))?;
                        return Ok(OpResult::Done);
                    }
                }
            }
            if round < 3 {
                self.expand(view)?;
            }
        }
        Ok(OpResult::Missing)
    }

    /// Lock-free bottom-to-top search.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clevel.get"));
        let (first, last, fcap, lcap) = self.levels(view)?;
        for (base, cap) in [(first, fcap), (last, lcap)] {
            let start = hash64(key) % cap;
            for p in 0..PROBE {
                let koff = base.clone() + ((start + p) % cap) * 16;
                let k = view.load_u64(koff.clone(), site!("clevel.get.scan_key"))?;
                if k == key {
                    let v = view.load_u64(koff + 8u64, site!("clevel.get.read_val"))?;
                    return Ok(OpResult::Found(v.value()));
                }
            }
        }
        Ok(OpResult::Missing)
    }

    /// Lock-free delete: CAS the key slot back to empty.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn del(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("clevel.del"));
        let (first, last, fcap, lcap) = self.levels(view)?;
        for (base, cap) in [(first, fcap), (last, lcap)] {
            let start = hash64(key) % cap;
            for p in 0..PROBE {
                let koff = base.clone() + ((start + p) % cap) * 16;
                let (cleared, _) =
                    view.cas_u64(koff.clone(), key, 0, site!("clevel.del.cas_key"))?;
                if cleared {
                    view.persist(koff, 8, site!("clevel.del.flush"))?;
                    return Ok(OpResult::Done);
                }
            }
        }
        Ok(OpResult::Missing)
    }
}

impl Target for Clevel {
    fn name(&self) -> &'static str {
        "clevel"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        match *op {
            Op::Insert { key, value } | Op::Update { key, value } => {
                self.put(view, key.max(1), value)
            }
            Op::Delete { key } => self.del(view, key.max(1)),
            Op::Get { key } => self.get(view, key.max(1)),
            Op::Incr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.wrapping_add(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
            Op::Decr { key, by } => {
                let key = key.max(1);
                match self.get(view, key)? {
                    OpResult::Found(v) => self.put(view, key, v.saturating_sub(by)),
                    _ => Ok(OpResult::Missing),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::{Pool, PoolOpts, ThreadId};
    use pmrace_runtime::SessionConfig;

    fn fresh() -> (Arc<Session>, Clevel) {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let t = Clevel::init(&session).unwrap();
        (session, t)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        t.put(&v, 4, 44).unwrap();
        assert_eq!(t.get(&v, 4).unwrap(), OpResult::Found(44));
        t.put(&v, 4, 45).unwrap();
        assert_eq!(t.get(&v, 4).unwrap(), OpResult::Found(45));
        assert_eq!(t.del(&v, 4).unwrap(), OpResult::Done);
        assert_eq!(t.get(&v, 4).unwrap(), OpResult::Missing);
    }

    #[test]
    fn construction_inconsistencies_are_whitelisted() {
        let (s, _t) = fresh();
        let f = s.finish();
        assert!(
            !f.inconsistencies.is_empty(),
            "Fig. 7 construction flow must raise inconsistencies"
        );
        assert!(
            f.inconsistencies.iter().all(|i| i.whitelisted),
            "all construction inconsistencies must be whitelisted: {:?}",
            f.inconsistencies
                .iter()
                .filter(|i| !i.whitelisted)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn interrupted_construction_rebuilds_on_recovery() {
        let session = Session::new(
            Arc::new(Pool::new(PoolOpts::small())),
            SessionConfig::default(),
        );
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid()).unwrap();
        let root = alloc.alloc(ROOT_SIZE, view.tid()).unwrap();
        alloc.set_root(root, view.tid()).unwrap();
        let tx = alloc.begin_tx(view.tid()).unwrap();
        let _meta = tx.alloc(META_SIZE).unwrap();
        // Crash with the tx open and root.meta never persisted.
        let img = session.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = Clevel::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        t2.put(&v2, 9, 90).unwrap();
        assert_eq!(t2.get(&v2, 9).unwrap(), OpResult::Found(90));
    }

    #[test]
    fn data_survives_crash_recovery() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=30u64 {
            t.put(&v, k, k * 2).unwrap();
        }
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = Clevel::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        for k in 1..=30u64 {
            assert_eq!(t2.get(&v2, k).unwrap(), OpResult::Found(k * 2), "key {k}");
        }
    }

    #[test]
    fn expansion_grows_past_the_initial_capacity() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        // Far beyond the initial 64+32 slots: expansion must absorb it all.
        for k in 1..=400u64 {
            assert_eq!(t.put(&v, k, k * 3).unwrap(), OpResult::Done, "put {k}");
        }
        for k in 1..=400u64 {
            assert_eq!(t.get(&v, k).unwrap(), OpResult::Found(k * 3), "get {k}");
        }
    }

    #[test]
    fn expanded_table_survives_crash_recovery() {
        let (s, t) = fresh();
        let v = s.view(ThreadId(0));
        for k in 1..=200u64 {
            t.put(&v, k, k + 9).unwrap();
        }
        let img = s.pool().crash_image().unwrap();
        let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = Session::new(pool2, SessionConfig::default());
        let t2 = Clevel::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        for k in 1..=200u64 {
            assert_eq!(t2.get(&v2, k).unwrap(), OpResult::Found(k + 9), "key {k}");
        }
    }
}

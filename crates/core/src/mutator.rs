//! The PM operation mutator (§4.5).
//!
//! Evolution strategies over structured seeds, after Krace, plus PMRace's
//! two additions: *similar keys are prioritized* (to raise shared-address
//! accesses and PM alias pairs) and a *populate* fallback that floods the
//! target with inserts when coverage stalls (to trigger resize paths).

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use pmrace_api::{Op, SeedHints};

use crate::seed::Seed;

/// Which evolution strategy produced a seed (telemetry for experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Evolution {
    /// Parameter of a random operation changed to another valid value.
    Mutation,
    /// Operation added at an arbitrary position.
    Addition,
    /// Arbitrary operation deleted.
    Deletion,
    /// Operations shuffled and redistributed to threads.
    Shuffling,
    /// Two existing seeds merged.
    Merging,
    /// Insert-flood fallback (coverage stalled).
    Populate,
}

/// Structured-seed generator and mutator.
#[derive(Debug)]
pub struct OpMutator {
    rng: StdRng,
    /// Per-target seed grammar ([`SeedHints`]); the default reproduces the
    /// small hot key range (similar keys collide on shared PM addresses)
    /// and op mix the built-in targets are tuned for.
    hints: SeedHints,
    threads: usize,
    ops_per_thread: usize,
}

impl OpMutator {
    /// Create a mutator for seeds with `threads` driver threads of
    /// `ops_per_thread` operations, deterministic under `rng_seed`, using
    /// the default seed grammar.
    #[must_use]
    pub fn new(rng_seed: u64, threads: usize, ops_per_thread: usize) -> Self {
        Self::with_hints(rng_seed, threads, ops_per_thread, SeedHints::DEFAULT)
    }

    /// Create a mutator shaping seeds per a target's [`SeedHints`]. With
    /// [`SeedHints::DEFAULT`] the RNG draw sequence is bit-for-bit the one
    /// [`OpMutator::new`] produces, so built-in targets and the replay
    /// corpus are unaffected by the hints plumbing.
    #[must_use]
    pub fn with_hints(
        rng_seed: u64,
        threads: usize,
        ops_per_thread: usize,
        hints: SeedHints,
    ) -> Self {
        OpMutator {
            rng: StdRng::seed_from_u64(rng_seed),
            hints: hints.normalized(),
            threads: threads.max(1),
            ops_per_thread: ops_per_thread.max(1),
        }
    }

    fn key(&mut self) -> u64 {
        // Zipf-ish: half the draws land on the hottest keys.
        if self.rng.random_bool(0.5) {
            self.rng.random_range(1..=self.hints.hot_keys)
        } else {
            self.rng.random_range(1..=self.hints.key_range)
        }
    }

    fn op(&mut self) -> Op {
        let key = self.key();
        let w = self.hints.weights;
        let roll = self.rng.random_range(0..w.total());
        if roll < w.insert {
            Op::Insert {
                key,
                value: self.value(),
            }
        } else if roll < w.insert + w.get {
            Op::Get { key }
        } else if roll < w.insert + w.get + w.update {
            // Updates are rare by default: in P-CLHT a successful update
            // leaks its bucket lock (seeded Bug 5) and hangs the rest of
            // the campaign, so update-heavy seeds explore very little.
            Op::Update {
                key,
                value: self.value(),
            }
        } else if roll < w.insert + w.get + w.update + w.delete {
            Op::Delete { key }
        } else if roll < w.insert + w.get + w.update + w.delete + w.incr {
            Op::Incr {
                key,
                by: self.step(),
            }
        } else {
            Op::Decr {
                key,
                by: self.step(),
            }
        }
    }

    fn value(&mut self) -> u64 {
        self.rng.random_range(1..self.hints.max_value)
    }

    fn step(&mut self) -> u64 {
        self.rng.random_range(1..self.hints.max_step)
    }

    /// Generate a fresh random seed.
    pub fn generate(&mut self) -> Seed {
        let total = self.threads * self.ops_per_thread;
        let ops: Vec<Op> = (0..total).map(|_| self.op()).collect();
        Seed::from_flat(&ops, self.threads)
    }

    /// An insert-heavy seed with spread keys: the load phase that triggers
    /// resizing mechanisms (§4.5).
    pub fn populate(&mut self) -> Seed {
        let total = self.threads * self.ops_per_thread * 2;
        let ops: Vec<Op> = (0..total)
            .map(|i| Op::Insert {
                key: (i as u64 % (self.hints.key_range * 4)) + 1,
                value: self.value(),
            })
            .collect();
        Seed::from_flat(&ops, self.threads)
    }

    /// Evolve a new seed from the corpus, returning it with the strategy
    /// used. Falls back to generation on an empty corpus.
    pub fn evolve(&mut self, corpus: &[Seed]) -> (Seed, Evolution) {
        let Some(base) = corpus.choose(&mut self.rng).cloned() else {
            return (self.generate(), Evolution::Mutation);
        };
        let strategy = match self.rng.random_range(0..5u32) {
            0 => Evolution::Mutation,
            1 => Evolution::Addition,
            2 => Evolution::Deletion,
            3 => Evolution::Shuffling,
            _ => Evolution::Merging,
        };
        let seed = match strategy {
            Evolution::Mutation => self.mutate_param(&base),
            Evolution::Addition => self.add_op(&base),
            Evolution::Deletion => self.delete_op(&base),
            Evolution::Shuffling => self.shuffle(&base),
            Evolution::Merging => {
                let other = corpus
                    .choose(&mut self.rng)
                    .cloned()
                    .unwrap_or_else(|| base.clone());
                self.merge(&base, &other)
            }
            Evolution::Populate => unreachable!(),
        };
        (seed, strategy)
    }

    fn mutate_param(&mut self, base: &Seed) -> Seed {
        let mut ops = base.flatten();
        if ops.is_empty() {
            return self.generate();
        }
        let i = self.rng.random_range(0..ops.len());
        let new_key = self.key();
        ops[i] = match ops[i] {
            Op::Insert { .. } => Op::Insert {
                key: new_key,
                value: self.value(),
            },
            Op::Update { .. } => Op::Update {
                key: new_key,
                value: self.value(),
            },
            Op::Delete { .. } => Op::Delete { key: new_key },
            Op::Get { .. } => Op::Get { key: new_key },
            Op::Incr { .. } => Op::Incr {
                key: new_key,
                by: self.step(),
            },
            Op::Decr { .. } => Op::Decr {
                key: new_key,
                by: self.step(),
            },
        };
        Seed::from_flat(&ops, base.num_threads())
    }

    fn add_op(&mut self, base: &Seed) -> Seed {
        let mut ops = base.flatten();
        let pos = self.rng.random_range(0..=ops.len());
        let op = self.op();
        ops.insert(pos, op);
        Seed::from_flat(&ops, base.num_threads())
    }

    fn delete_op(&mut self, base: &Seed) -> Seed {
        let mut ops = base.flatten();
        if ops.len() <= 1 {
            return self.generate();
        }
        let pos = self.rng.random_range(0..ops.len());
        ops.remove(pos);
        Seed::from_flat(&ops, base.num_threads())
    }

    fn shuffle(&mut self, base: &Seed) -> Seed {
        let mut ops = base.flatten();
        // Fisher–Yates with the seeded RNG.
        for i in (1..ops.len()).rev() {
            let j = self.rng.random_range(0..=i);
            ops.swap(i, j);
        }
        Seed::from_flat(&ops, base.num_threads())
    }

    fn merge(&mut self, a: &Seed, b: &Seed) -> Seed {
        let mut ops = a.flatten();
        let b_ops = b.flatten();
        let keep = self.rng.random_range(0..=b_ops.len());
        ops.extend_from_slice(&b_ops[..keep]);
        let cap = self.threads * self.ops_per_thread * 3;
        ops.truncate(cap.max(1));
        Seed::from_flat(&ops, a.num_threads().max(b.num_threads()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mutator() -> OpMutator {
        OpMutator::new(42, 4, 8)
    }

    #[test]
    fn generate_is_deterministic_under_seed() {
        let a = OpMutator::new(7, 4, 8).generate();
        let b = OpMutator::new(7, 4, 8).generate();
        assert_eq!(a, b);
        let c = OpMutator::new(8, 4, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_seeds_have_requested_shape() {
        let s = mutator().generate();
        assert_eq!(s.num_threads(), 4);
        assert_eq!(s.num_ops(), 32);
    }

    #[test]
    fn keys_are_hot_and_small() {
        let mut m = mutator();
        let s = m.generate();
        for op in s.flatten() {
            assert!(op.key() >= 1 && op.key() <= 24, "key {}", op.key());
        }
        // Similar-key prioritization: hottest 4 keys dominate.
        let hot = s.flatten().iter().filter(|o| o.key() <= 4).count();
        assert!(hot * 3 >= s.num_ops(), "hot {hot} of {}", s.num_ops());
    }

    #[test]
    fn populate_is_insert_only_and_bigger() {
        let mut m = mutator();
        let s = m.populate();
        assert!(s.num_ops() > 32);
        assert!(s.flatten().iter().all(|o| matches!(o, Op::Insert { .. })));
    }

    #[test]
    fn evolution_strategies_preserve_validity() {
        let mut m = mutator();
        let base = m.generate();
        let mut corpus = vec![base];
        for _ in 0..50 {
            let (next, _strategy) = m.evolve(&corpus);
            assert!(next.num_ops() >= 1);
            assert!(next.num_threads() >= 1);
            for op in next.flatten() {
                assert!(op.key() <= 96); // populate uses up to key_range*4
            }
            corpus.push(next);
            if corpus.len() > 8 {
                corpus.remove(0);
            }
        }
    }

    #[test]
    fn deletion_shrinks_addition_grows() {
        let mut m = mutator();
        let base = m.generate();
        let grown = m.add_op(&base);
        assert_eq!(grown.num_ops(), base.num_ops() + 1);
        let shrunk = m.delete_op(&base);
        assert_eq!(shrunk.num_ops(), base.num_ops() - 1);
    }

    #[test]
    fn hints_shape_the_grammar() {
        use pmrace_api::OpWeights;
        let hints = SeedHints {
            key_range: 6,
            hot_keys: 2,
            max_value: 5,
            max_step: 2,
            weights: OpWeights {
                insert: 3,
                get: 0,
                update: 0,
                delete: 1,
                incr: 0,
                decr: 0,
            },
        };
        let mut m = OpMutator::with_hints(11, 2, 64, hints);
        for op in m.generate().flatten() {
            assert!(
                matches!(op, Op::Insert { .. } | Op::Delete { .. }),
                "weights exclude {op}"
            );
            assert!(op.key() >= 1 && op.key() <= 6, "key {}", op.key());
            if let Op::Insert { value, .. } = op {
                assert!((1..5).contains(&value), "value {value}");
            }
        }
    }

    #[test]
    fn default_hints_are_the_legacy_grammar() {
        // `new` and `with_hints(DEFAULT)` must draw identical sequences:
        // the replay corpus and determinism suite depend on it.
        let a = OpMutator::new(7, 4, 8).generate();
        let b = OpMutator::with_hints(7, 4, 8, SeedHints::DEFAULT).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_caps_size() {
        let mut m = mutator();
        let a = m.populate();
        let b = m.populate();
        let merged = m.merge(&a, &b);
        assert!(merged.num_ops() <= 4 * 8 * 3);
    }
}

//! One fuzz campaign: one execution of the target with a seed under an
//! interleaving strategy, checkers armed.
//!
//! Driver threads are *pooled per exec thread* (`DriverPool`): at fleet
//! rates the two `thread::spawn`/join pairs per campaign cost more than a
//! checkpoint restore, so each OS thread that runs campaigns keeps its
//! drivers alive across campaigns and feeds them per-campaign jobs over
//! channels. The pool is thread-local, so concurrent exec workers never
//! share drivers and the per-campaign dispatch order (thread 0 first) is
//! as deterministic as the scoped-spawn order it replaces.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use pmrace_api::TargetSpec;
use pmrace_pmem::{Pool, ThreadId};
use pmrace_runtime::coverage::CoverageMap;
use pmrace_runtime::report::Findings;
use pmrace_runtime::session::SharedAccessEntry;
use pmrace_runtime::strategy::InterleaveStrategy;
use pmrace_runtime::{RtError, Session, SessionConfig, SyncVarAnnotation};
use pmrace_telemetry as telemetry;

use crate::checkpoint::Checkpoint;
use crate::seed::Seed;

/// Which interleaving-exploration scheme drives the campaign (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// No scheduling: plain repeated execution.
    None,
    /// Random delay injection before each PM access (the *Delay Inj*
    /// baseline), with the given maximum delay.
    Delay {
        /// Upper bound of the injected uniform delay, in microseconds.
        max_delay_us: u64,
    },
    /// PMRace's conditional-wait scheduling (Fig. 6).
    Pmrace,
    /// Round-robin serialization (systematic-enumeration baseline, §7).
    Systematic,
}

/// Per-campaign execution parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Driver threads (4 in the paper's setup, §6.1).
    pub threads: usize,
    /// Wall-clock budget; campaigns that exceed it are hangs.
    pub deadline: Duration,
    /// Capture crash images for post-failure validation.
    pub capture_images: bool,
    /// Crash-image budget per campaign.
    pub max_images: usize,
    /// Run under the eADR failure model (§6.6): persistent CPU caches.
    /// Incompatible with checkpoints (a fresh pool is built instead).
    pub eadr: bool,
    /// Model hardware cache eviction (§2.1: "the persist order depends on
    /// the eviction order of cache lines"): while the campaign runs, an
    /// agitator thread persists random dirty granules every this many
    /// microseconds. `0` disables eviction (deterministic persist order).
    pub eviction_interval_us: u64,
    /// Extra whitelist rules (site-label substrings) on top of the default
    /// PMDK/checksum rules — the §4.4 knob for application-specific
    /// crash-consistency guarantees.
    pub extra_whitelist: Vec<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 4,
            deadline: Duration::from_millis(400),
            capture_images: true,
            max_images: 32,
            eadr: false,
            eviction_interval_us: 0,
            extra_whitelist: Vec::new(),
        }
    }
}

/// Everything one campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// Checker findings (candidates, inconsistencies, sync updates, hang).
    pub findings: Findings,
    /// Session coverage (merge into the global map for feedback). Handed
    /// off by reference count — the session is finished, so the map is
    /// immutable and the explorer merges from the original allocation.
    pub coverage: Arc<CoverageMap>,
    /// Shared-access statistics feeding the priority queue.
    pub shared: Vec<SharedAccessEntry>,
    /// Sync-var annotations the target registered.
    pub annotations: Vec<SyncVarAnnotation>,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Operations that failed with a runtime error (timeouts during hangs).
    pub op_errors: usize,
    /// Instrumented PM events (loads/stores/flushes/fences) the campaign
    /// executed; feeds the fuzzer's accesses/sec throughput meter.
    pub pm_accesses: u64,
}

/// One dispatched unit of driver work.
type DriverJob = Box<dyn FnOnce() + Send + 'static>;

/// Countdown the dispatching thread blocks on until every driver job of
/// the campaign finished; a panicking job parks its payload here so
/// [`run_campaign`] can resume the unwind on the dispatcher (matching the
/// scoped-spawn semantics the pool replaced).
struct JobBarrier {
    state: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    done: Condvar,
}

/// A persistent driver thread: jobs in via channel, exits on hangup.
struct DriverSlot {
    tx: mpsc::Sender<DriverJob>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Lazily-grown pool of persistent driver threads (see the module docs).
#[derive(Default)]
struct DriverPool {
    slots: Vec<DriverSlot>,
}

impl DriverPool {
    fn ensure(&mut self, n: usize) {
        while self.slots.len() < n {
            let (tx, rx) = mpsc::channel::<DriverJob>();
            let handle = std::thread::Builder::new()
                .name(format!("pmrace-driver-{}", self.slots.len()))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pooled driver thread");
            self.slots.push(DriverSlot {
                tx,
                handle: Some(handle),
            });
        }
    }
}

impl Drop for DriverPool {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            // Hang up the channel first so the drained driver exits...
            let (dead, _) = mpsc::channel::<DriverJob>();
            drop(std::mem::replace(&mut slot.tx, dead));
        }
        for slot in &mut self.slots {
            // ...then reap it (jobs signalled their barrier already, so
            // nothing here can block behind an unfinished campaign).
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

thread_local! {
    /// One driver pool per campaign-running OS thread (exec workers,
    /// validation recovery runs, tests). Dropped — drivers hung up and
    /// reaped — when the owning thread exits.
    static DRIVERS: RefCell<DriverPool> = RefCell::new(DriverPool::default());
}

/// Execute one campaign of `seed` against a fresh instance of `spec`.
///
/// When `checkpoint` is given, the pool starts from the checkpointed image
/// and the target is reopened through its recovery path (cheap reset);
/// otherwise the pool is created and the target initialized from scratch.
///
/// # Errors
///
/// Returns an error only if target construction fails; operation-level
/// errors (e.g. hang timeouts) are counted in
/// [`CampaignResult::op_errors`].
pub fn run_campaign(
    spec: &TargetSpec,
    seed: &Seed,
    cfg: &CampaignConfig,
    strategy: Option<Arc<dyn InterleaveStrategy>>,
    checkpoint: Option<&Checkpoint>,
) -> Result<CampaignResult, RtError> {
    let start = Instant::now();
    let pool = match checkpoint {
        // `restore_cached` recycles the pool the previous campaign retired
        // (in-place reset instead of a pool-sized allocation).
        Some(cp) if !cfg.eadr => cp.restore_cached(),
        _ => {
            let mut opts = (spec.pool)();
            if cfg.eadr {
                opts = opts.eadr();
            }
            Arc::new(Pool::new(opts))
        }
    };
    let mut whitelist = pmrace_runtime::whitelist::Whitelist::default_rules();
    for rule in &cfg.extra_whitelist {
        whitelist.add(rule.clone());
    }
    let session = Session::new(
        pool,
        SessionConfig {
            deadline: cfg.deadline,
            capture_crash_images: cfg.capture_images,
            max_crash_images: cfg.max_images,
            whitelist,
            ..SessionConfig::default()
        },
    );
    // Pool acquisition (checkpoint restore) is traced separately inside
    // `Checkpoint::restore_cached`; the execution span covers target
    // init/recovery plus the driver threads.
    let _span = telemetry::span(telemetry::Phase::Execution);
    let target = if checkpoint.is_some() && !cfg.eadr {
        (spec.recover)(&session)?
    } else {
        (spec.init)(&session)?
    };
    // Checker-arming hook (§4.3): the spec gets one shot at the session
    // before driver threads start, e.g. to add target-specific checkers.
    if let Some(arm) = spec.arm {
        arm(&session);
    }
    if let Some(strategy) = strategy {
        session.set_strategy(strategy);
    }

    let driver_count = seed.threads().len().min(cfg.threads);
    let op_errors = Arc::new(AtomicUsize::new(0));
    let live_workers = Arc::new(AtomicUsize::new(driver_count));
    let barrier = Arc::new(JobBarrier {
        state: Mutex::new((driver_count, None)),
        done: Condvar::new(),
    });
    let agitator = (cfg.eviction_interval_us > 0).then(|| {
        // Cache-eviction agitator: persists random dirty granules at
        // the configured rate, modeling hardware write-back that is
        // not under the program's control. Exits when the last driver
        // thread finishes. Rare config, so it still gets a fresh thread
        // instead of a pool slot.
        let session = Arc::clone(&session);
        let live_workers = Arc::clone(&live_workers);
        let interval = Duration::from_micros(cfg.eviction_interval_us);
        std::thread::spawn(move || {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xE71C);
            while live_workers.load(Ordering::Acquire) > 0 && !session.cancelled() {
                let _ = session.pool().evict_random(&mut rng);
                std::thread::sleep(interval);
            }
        })
    });
    DRIVERS.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.ensure(driver_count);
        for (t, ops) in seed.threads().iter().enumerate().take(cfg.threads) {
            let session = Arc::clone(&session);
            let target = Arc::clone(&target);
            let ops = ops.clone();
            let op_errors = Arc::clone(&op_errors);
            let live_on_panic = Arc::clone(&live_workers);
            let live_workers = Arc::clone(&live_workers);
            let barrier = Arc::clone(&barrier);
            let body = move || {
                let tid = ThreadId(t as u32);
                let view = session.view(tid);
                for op in &ops {
                    // An op boundary is forward progress even when the op
                    // made no store (bounded retry loops giving up): keep
                    // the livelock streak scoped to a single blocked op.
                    view.spin_reset();
                    match target.exec(&view, op) {
                        Ok(_) => {}
                        Err(RtError::Timeout | RtError::Halted) => {
                            op_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(_) => {
                            op_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Drain this thread's batched shadow/coverage before the
                // scheduler learns the thread is gone — post-join accessors
                // would flush anyway, but detection-bearing state must not
                // outlive the thread that staged it.
                view.flush();
                session.thread_done(tid);
                live_workers.fetch_sub(1, Ordering::AcqRel);
            };
            let job: DriverJob = Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                let mut state = barrier.state.lock();
                state.0 -= 1;
                if let Err(payload) = outcome {
                    // The body never reached its own decrement: release the
                    // agitator's liveness count here too.
                    live_on_panic.fetch_sub(1, Ordering::AcqRel);
                    state.1 = Some(payload);
                }
                if state.0 == 0 {
                    barrier.done.notify_all();
                }
            });
            pool.slots[t]
                .tx
                .send(job)
                .expect("pooled driver thread hung up");
        }
    });
    {
        let mut state = barrier.state.lock();
        while state.0 > 0 {
            barrier.done.wait(&mut state);
        }
        if let Some(payload) = state.1.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
    if let Some(handle) = agitator {
        let _ = handle.join();
    }

    let coverage = session.coverage_handle();
    let shared = session.shared_accesses();
    let annotations = session.annotations();
    let pm_accesses = session.pm_accesses();
    let findings = session.finish();
    if telemetry::enabled() {
        telemetry::add(telemetry::Counter::ExecCampaigns, 1);
        if findings.hang {
            telemetry::add(telemetry::Counter::ExecHangs, 1);
        }
        let errs = op_errors.load(Ordering::Relaxed);
        if errs > 0 {
            telemetry::add(telemetry::Counter::ExecOpErrors, errs as u64);
        }
        telemetry::metrics::record_duration(telemetry::Histogram::CampaignNs, start.elapsed());
    }
    Ok(CampaignResult {
        findings,
        coverage,
        shared,
        annotations,
        duration: start.elapsed(),
        op_errors: op_errors.load(Ordering::Relaxed),
        pm_accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_targets::{target_spec, Op};

    fn insert_seed(threads: usize) -> Seed {
        let ops: Vec<Op> = (1..=32u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        Seed::from_flat(&ops, threads)
    }

    #[test]
    fn arm_hook_fires_once_per_campaign_before_drivers() {
        static ARMED: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let spec = target_spec("P-CLHT").unwrap().with_arm(|_session| {
            ARMED.fetch_add(1, Ordering::Relaxed);
        });
        run_campaign(
            &spec,
            &insert_seed(2),
            &CampaignConfig::default(),
            None,
            None,
        )
        .unwrap();
        assert_eq!(ARMED.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn campaign_runs_and_reports_coverage() {
        let spec = target_spec("P-CLHT").unwrap();
        let res = run_campaign(
            &spec,
            &insert_seed(4),
            &CampaignConfig::default(),
            None,
            None,
        )
        .unwrap();
        assert!(res.coverage.branches() > 0);
        assert!(!res.findings.hang);
        assert_eq!(res.annotations.len(), 4);
        assert!(res.duration < Duration::from_secs(5));
        assert!(res.pm_accesses > 0, "the access meter must count PM events");
    }

    #[test]
    fn concurrent_campaign_finds_shared_accesses() {
        let spec = target_spec("P-CLHT").unwrap();
        // Hot keys across threads: shared PM addresses guaranteed.
        let ops: Vec<Op> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    Op::Insert {
                        key: 1 + (i % 4),
                        value: i,
                    }
                } else {
                    Op::Get { key: 1 + (i % 4) }
                }
            })
            .collect();
        let seed = Seed::from_flat(&ops, 4);
        let res = run_campaign(&spec, &seed, &CampaignConfig::default(), None, None).unwrap();
        assert!(
            !res.shared.is_empty(),
            "4 threads on 4 hot keys must share PM addresses"
        );
    }

    #[test]
    fn hang_bug_is_reported_via_deadline() {
        let spec = target_spec("P-CLHT").unwrap();
        // An idempotent update leaks the bucket lock (bug 5); the next op
        // on the same bucket hangs until the deadline.
        let ops = vec![
            Op::Insert { key: 1, value: 1 },
            Op::Update { key: 1, value: 1 },
            Op::Insert { key: 1, value: 3 },
        ];
        let seed = Seed::new(vec![ops]);
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_millis(150),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        assert!(res.findings.hang, "leaked lock must surface as a hang");
        assert!(res.op_errors >= 1);
    }

    #[test]
    fn eviction_agitator_persists_dirty_data_in_flight() {
        // With aggressive eviction, some normally-Dirty windows close on
        // their own: the campaign must still run to completion and the
        // eviction must not corrupt any data (differential sanity below).
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=40u64)
            .flat_map(|k| [Op::Insert { key: k, value: k }, Op::Get { key: k }])
            .collect();
        let seed = Seed::from_flat(&ops, 2);
        let cfg = CampaignConfig {
            threads: 2,
            deadline: Duration::from_secs(5),
            eviction_interval_us: 20,
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        assert_eq!(res.op_errors, 0, "eviction must be transparent to targets");
    }

    #[test]
    fn extra_whitelist_rules_mark_matching_records_benign() {
        // Whitelist the P-CLHT GC read: its (normally bug-worthy) intra
        // inconsistency must now be flagged benign (the user knob of S4.4).
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let seed = Seed::from_flat(&ops, 1);
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            extra_whitelist: vec!["clht_gc.c:190".to_owned()],
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        let gc_records: Vec<_> = res
            .findings
            .inconsistencies
            .iter()
            .filter(|i| pmrace_runtime::site_label(i.candidate.read_site).contains("clht_gc.c:190"))
            .collect();
        assert!(
            !gc_records.is_empty(),
            "resize workload must hit the GC read"
        );
        assert!(gc_records.iter().all(|r| r.whitelisted));
    }

    #[test]
    fn eadr_campaign_has_no_inconsistency_candidates() {
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=60u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let seed = Seed::from_flat(&ops, 4);
        let cfg = CampaignConfig {
            eadr: true,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        assert!(
            res.findings.candidates.is_empty(),
            "eADR caches are persistent; reading non-persisted data is impossible: {:?}",
            res.findings
                .candidates
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
        assert!(res.findings.inconsistencies.is_empty());
        // PM Synchronization Inconsistency still occurs (§6.6): persistent
        // locks survive crashes in locked state regardless of eADR.
        assert!(
            !res.findings.sync_updates.is_empty(),
            "sync-var updates must still be recorded under eADR"
        );
    }

    #[test]
    fn checkpointed_campaign_matches_fresh_semantics() {
        let spec = target_spec("CCEH").unwrap();
        let cp = Checkpoint::create(&spec).unwrap();
        let seed = insert_seed(2);
        let fresh = run_campaign(&spec, &seed, &CampaignConfig::default(), None, None).unwrap();
        let restored =
            run_campaign(&spec, &seed, &CampaignConfig::default(), None, Some(&cp)).unwrap();
        assert_eq!(fresh.op_errors, 0);
        assert_eq!(restored.op_errors, 0);
        assert!(restored.coverage.branches() > 0);
    }
}

//! Bug-report files: PMRace "generates a detailed bug report with stack
//! traces and corresponding program inputs to facilitate bug diagnosis"
//! (§4.1 step 6). This module renders each unique bug to a standalone text
//! file with its sites, verdict, and the triggering seed for replay.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::bugs::UniqueBug;
use crate::fuzzer::FuzzReport;

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render one bug report in the on-disk format.
#[must_use]
pub fn render_report(bug: &UniqueBug) -> String {
    let mut out = String::new();
    out.push_str("== PMRace bug report ==\n");
    out.push_str(&format!("target:      {}\n", bug.target));
    out.push_str(&format!("type:        {}\n", bug.kind));
    out.push_str(&format!("verdict:     {}\n", bug.verdict));
    out.push_str(&format!(
        "found after: {} ms of fuzzing\n",
        bug.found_after.as_millis()
    ));
    out.push_str(&format!("description: {}\n", bug.description));
    out.push('\n');
    if !bug.write_label.is_empty() {
        out.push_str(&format!("write code:  {}\n", bug.write_label));
    }
    if !bug.read_label.is_empty() {
        out.push_str(&format!("read code:   {}\n", bug.read_label));
    }
    if !bug.effect_label.is_empty() {
        out.push_str(&format!("side effect: {}\n", bug.effect_label));
    }
    out.push('\n');
    if !bug.trace_text.is_empty() {
        out.push_str("recent PM accesses at detection (oldest first):\n");
        out.push_str(&bug.trace_text);
        out.push_str("\n\n");
    }
    match &bug.seed_text {
        Some(seed) => {
            out.push_str("triggering seed (one line per driver thread):\n");
            out.push_str(seed);
            out.push('\n');
        }
        None => out.push_str("triggering seed: <not recorded>\n"),
    }
    out
}

/// Write one file per unique bug into `dir` (created if missing).
/// Returns the written paths, in report order.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(dir: &Path, report: &FuzzReport) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for (i, bug) in report.bugs.iter().enumerate() {
        let name = format!(
            "{:02}-{}-{}.txt",
            i,
            sanitize(report.target),
            sanitize(&format!("{}-{}", bug.kind, bug.write_label))
        );
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(render_report(bug).as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugKind;
    use crate::validate::Verdict;
    use std::time::Duration;

    fn bug() -> UniqueBug {
        UniqueBug {
            kind: BugKind::Inter,
            target: "P-CLHT",
            write_label: "clht_lb_res.c:785.swap_ht_off".into(),
            read_label: "clht_lb_res.c:417.read_ht_off".into(),
            effect_label: "clht_lb_res.c:489.store_val".into(),
            description: "read unflushed table pointer and insert items".into(),
            verdict: Verdict::Bug,
            found_after: Duration::from_millis(58),
            seed_text: Some("t0: insert 1=2; get 1".into()),
            trace_text: String::new(),
        }
    }

    #[test]
    fn render_contains_all_diagnostic_fields() {
        let text = render_report(&bug());
        for needle in [
            "P-CLHT",
            "Inter",
            "785",
            "417",
            "489",
            "58 ms",
            "t0: insert 1=2; get 1",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        // The attached seed must be replayable.
        let seed_line = text.lines().last().unwrap();
        assert!(crate::Seed::parse(seed_line).is_ok());
    }

    #[test]
    fn sanitize_keeps_paths_safe() {
        assert_eq!(sanitize("a/b:c d"), "a_b_c_d");
        assert_eq!(sanitize("CCEH.h-86"), "CCEH.h-86");
    }
}

//! In-memory pool checkpoints (§5, Fig. 10).
//!
//! `libpmemobj` pool initialization is expensive; PMRace initializes the
//! pool once, keeps one in-memory copy, and starts every campaign from that
//! copy — the AFL++ fork-server idea without the fork. Campaigns restored
//! from a checkpoint reopen the target through its recovery path (the
//! process-side state is rebuilt, as a forked child would rebuild it).

use std::sync::Arc;

use parking_lot::Mutex;
use pmrace_api::TargetSpec;
use pmrace_pmem::{Pool, PoolOpts, PoolSnapshot, RestoreMode, GRANULE};
use pmrace_runtime::{RtError, Session, SessionConfig};
use pmrace_telemetry as telemetry;

/// A reusable snapshot of a freshly initialized target pool.
#[derive(Debug)]
pub struct Checkpoint {
    snapshot: PoolSnapshot,
    /// Pool retired by the previous campaign, kept for allocation reuse:
    /// [`Checkpoint::restore_cached`] overwrites it in place instead of
    /// allocating a fresh multi-megabyte pool per campaign.
    cache: Mutex<Option<Arc<Pool>>>,
}

impl Checkpoint {
    /// Pay the pool + target initialization cost once and capture the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates target initialization errors.
    pub fn create(spec: &TargetSpec) -> Result<Self, RtError> {
        let _span = telemetry::span(telemetry::Phase::CheckpointCreate);
        telemetry::add(telemetry::Counter::CheckpointCreates, 1);
        let pool = Arc::new(Pool::new((spec.pool)()));
        let session = Session::new(
            pool,
            SessionConfig {
                capture_crash_images: false,
                ..SessionConfig::default()
            },
        );
        let _target = (spec.init)(&session)?;
        Ok(Checkpoint {
            snapshot: session.pool().snapshot(),
            cache: Mutex::new(None),
        })
    }

    /// Materialize a fresh pool from the checkpoint (cheap: one copy, no
    /// heavy initialization).
    #[must_use]
    pub fn restore(&self) -> Arc<Pool> {
        let _span = telemetry::span(telemetry::Phase::CheckpointRestore);
        telemetry::add(telemetry::Counter::CheckpointRestores, 1);
        let pool = Pool::new(PoolOpts::with_size(self.snapshot.volatile().len()));
        pool.restore(&self.snapshot)
            .expect("checkpoint snapshot matches its own pool size");
        Arc::new(pool)
    }

    /// Reset an existing pool to the checkpointed image in place, reusing
    /// its allocations (no pool-sized allocation, unlike
    /// [`Checkpoint::restore`]).
    ///
    /// # Errors
    ///
    /// Fails if `pool` was not created with the checkpoint's pool size.
    pub fn restore_into(&self, pool: &Pool) -> Result<(), RtError> {
        pool.restore(&self.snapshot)?;
        Ok(())
    }

    /// Reset an existing pool to the checkpointed image, copying back only
    /// the granules the last campaign dirtied when `pool` was last restored
    /// from this checkpoint (O(dirty) instead of O(pool size)); otherwise
    /// equivalent to [`Checkpoint::restore_into`], to which it falls back
    /// when the dirty set exceeds a quarter of the pool.
    ///
    /// # Errors
    ///
    /// Fails if `pool` was not created with the checkpoint's pool size.
    pub fn restore_delta(&self, pool: &Pool) -> Result<RestoreMode, RtError> {
        let max_dirty = self.snapshot.volatile().len() / GRANULE / 4;
        Ok(pool.restore_delta(&self.snapshot, max_dirty)?)
    }

    /// Restore from the checkpoint, recycling the pool retired by the
    /// previous `restore_cached` call when nothing else still references it
    /// (campaigns hand their pool back simply by dropping the session).
    /// Falls back to [`Checkpoint::restore`] when the cached pool is still
    /// in use elsewhere or its size does not match.
    #[must_use]
    pub fn restore_cached(&self) -> Arc<Pool> {
        let mut cache = self.cache.lock();
        if let Some(pool) = cache.take() {
            let span = telemetry::span(telemetry::Phase::CheckpointRestore);
            if Arc::strong_count(&pool) == 1
                && pool.size() == self.snapshot.volatile().len()
                && self.restore_delta(&pool).is_ok()
            {
                telemetry::add(telemetry::Counter::CheckpointRestores, 1);
                telemetry::add(telemetry::Counter::CheckpointCacheHits, 1);
                *cache = Some(Arc::clone(&pool));
                return pool;
            }
            // The in-place path missed; the fallback `restore` opens its
            // own span, so close this one without double-counting.
            drop(span);
        }
        let pool = self.restore();
        *cache = Some(Arc::clone(&pool));
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::ThreadId;
    use pmrace_targets::{target_spec, Op, OpResult};

    #[test]
    fn checkpoint_restores_a_working_target() {
        let spec = target_spec("P-CLHT").unwrap();
        let cp = Checkpoint::create(&spec).unwrap();
        for round in 0..3 {
            let pool = cp.restore();
            let session = Session::new(pool, SessionConfig::default());
            let target = (spec.recover)(&session).unwrap();
            let v = session.view(ThreadId(0));
            let key = 10 + round;
            assert_eq!(
                target.exec(&v, &Op::Insert { key, value: round }).unwrap(),
                OpResult::Done
            );
            assert_eq!(
                target.exec(&v, &Op::Get { key }).unwrap(),
                OpResult::Found(round)
            );
            // Each restore starts empty: prior rounds' keys are absent.
            if round > 0 {
                assert_eq!(
                    target.exec(&v, &Op::Get { key: 10 }).unwrap(),
                    OpResult::Missing
                );
            }
        }
    }

    #[test]
    fn restore_into_resets_a_dirtied_pool_in_place() {
        let spec = target_spec("P-CLHT").unwrap();
        let cp = Checkpoint::create(&spec).unwrap();
        let pool = cp.restore();
        let baseline = pool.crash_image().unwrap();
        {
            let session = Session::new(Arc::clone(&pool), SessionConfig::default());
            let target = (spec.recover)(&session).unwrap();
            let v = session.view(ThreadId(0));
            target.exec(&v, &Op::Insert { key: 1, value: 2 }).unwrap();
        }
        assert_ne!(pool.crash_image().unwrap().bytes(), baseline.bytes());
        cp.restore_into(&pool).unwrap();
        assert_eq!(pool.crash_image().unwrap().bytes(), baseline.bytes());
        // Wrong-sized pool is rejected, not clobbered.
        let small = Pool::new(PoolOpts::with_size(4096));
        assert!(cp.restore_into(&small).is_err());
    }

    #[test]
    fn restore_delta_resets_a_dirtied_pool_in_place() {
        let spec = target_spec("P-CLHT").unwrap();
        let cp = Checkpoint::create(&spec).unwrap();
        let pool = cp.restore();
        let baseline = pool.crash_image().unwrap();
        for round in 0..3 {
            {
                let session = Session::new(Arc::clone(&pool), SessionConfig::default());
                let target = (spec.recover)(&session).unwrap();
                let v = session.view(ThreadId(0));
                target
                    .exec(
                        &v,
                        &Op::Insert {
                            key: round,
                            value: 2,
                        },
                    )
                    .unwrap();
            }
            assert_ne!(pool.crash_image().unwrap().bytes(), baseline.bytes());
            let mode = cp.restore_delta(&pool).unwrap();
            assert!(
                matches!(mode, RestoreMode::Delta { .. }),
                "round {round}: restored-from-checkpoint pool takes the delta path, got {mode:?}"
            );
            assert_eq!(pool.crash_image().unwrap().bytes(), baseline.bytes());
        }
        // A pool that never met this checkpoint falls back to a full copy.
        let foreign = Pool::new(PoolOpts::with_size(pool.size()));
        assert_eq!(cp.restore_delta(&foreign).unwrap(), RestoreMode::Full);
        assert_eq!(foreign.crash_image().unwrap().bytes(), baseline.bytes());
    }

    #[test]
    fn restore_cached_recycles_the_retired_pool() {
        let spec = target_spec("P-CLHT").unwrap();
        let cp = Checkpoint::create(&spec).unwrap();
        let first = cp.restore_cached();
        let first_ptr = Arc::as_ptr(&first);
        drop(first); // retire it: only the cache's reference remains
        let second = cp.restore_cached();
        assert_eq!(Arc::as_ptr(&second), first_ptr, "retired pool is recycled");
        // While `second` is live the cache must hand out a different pool.
        let third = cp.restore_cached();
        assert_ne!(Arc::as_ptr(&third), Arc::as_ptr(&second));
        // Recycled pools behave like fresh restores.
        let session = Session::new(third, SessionConfig::default());
        let target = (spec.recover)(&session).unwrap();
        let v = session.view(ThreadId(0));
        assert_eq!(
            target.exec(&v, &Op::Get { key: 10 }).unwrap(),
            OpResult::Missing
        );
    }

    #[test]
    fn checkpoints_work_for_every_target() {
        for spec in pmrace_targets::all_targets() {
            let cp = Checkpoint::create(&spec).unwrap();
            let pool = cp.restore();
            let session = Session::new(pool, SessionConfig::default());
            let target = (spec.recover)(&session).unwrap();
            let v = session.view(ThreadId(0));
            assert_eq!(
                target.exec(&v, &Op::Insert { key: 3, value: 5 }).unwrap(),
                OpResult::Done,
                "target {}",
                spec.name
            );
            assert_eq!(
                target.exec(&v, &Op::Get { key: 3 }).unwrap(),
                OpResult::Found(5),
                "target {}",
                spec.name
            );
        }
    }
}

//! In-memory pool checkpoints (§5, Fig. 10).
//!
//! `libpmemobj` pool initialization is expensive; PMRace initializes the
//! pool once, keeps one in-memory copy, and starts every campaign from that
//! copy — the AFL++ fork-server idea without the fork. Campaigns restored
//! from a checkpoint reopen the target through its recovery path (the
//! process-side state is rebuilt, as a forked child would rebuild it).

use std::sync::Arc;

use pmrace_pmem::{Pool, PoolOpts, PoolSnapshot};
use pmrace_runtime::{RtError, Session, SessionConfig};
use pmrace_targets::TargetSpec;

/// A reusable snapshot of a freshly initialized target pool.
#[derive(Debug)]
pub struct Checkpoint {
    snapshot: PoolSnapshot,
}

impl Checkpoint {
    /// Pay the pool + target initialization cost once and capture the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates target initialization errors.
    pub fn create(spec: &TargetSpec) -> Result<Self, RtError> {
        let pool = Arc::new(Pool::new((spec.pool)()));
        let session = Session::new(
            pool,
            SessionConfig {
                capture_crash_images: false,
                ..SessionConfig::default()
            },
        );
        let _target = (spec.init)(&session)?;
        Ok(Checkpoint {
            snapshot: session.pool().snapshot(),
        })
    }

    /// Materialize a fresh pool from the checkpoint (cheap: one copy, no
    /// heavy initialization).
    #[must_use]
    pub fn restore(&self) -> Arc<Pool> {
        let pool = Pool::new(PoolOpts::with_size(self.snapshot.volatile().len()));
        pool.restore(&self.snapshot)
            .expect("checkpoint snapshot matches its own pool size");
        Arc::new(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::ThreadId;
    use pmrace_targets::{target_spec, Op, OpResult};

    #[test]
    fn checkpoint_restores_a_working_target() {
        let spec = target_spec("P-CLHT").unwrap();
        let cp = Checkpoint::create(&spec).unwrap();
        for round in 0..3 {
            let pool = cp.restore();
            let session = Session::new(pool, SessionConfig::default());
            let target = (spec.recover)(&session).unwrap();
            let v = session.view(ThreadId(0));
            let key = 10 + round;
            assert_eq!(
                target.exec(&v, &Op::Insert { key, value: round }).unwrap(),
                OpResult::Done
            );
            assert_eq!(
                target.exec(&v, &Op::Get { key }).unwrap(),
                OpResult::Found(round)
            );
            // Each restore starts empty: prior rounds' keys are absent.
            if round > 0 {
                assert_eq!(
                    target.exec(&v, &Op::Get { key: 10 }).unwrap(),
                    OpResult::Missing
                );
            }
        }
    }

    #[test]
    fn checkpoints_work_for_every_target() {
        for spec in pmrace_targets::all_targets() {
            let cp = Checkpoint::create(&spec).unwrap();
            let pool = cp.restore();
            let session = Session::new(pool, SessionConfig::default());
            let target = (spec.recover)(&session).unwrap();
            let v = session.view(ThreadId(0));
            assert_eq!(
                target.exec(&v, &Op::Insert { key: 3, value: 5 }).unwrap(),
                OpResult::Done,
                "target {}",
                spec.name
            );
            assert_eq!(
                target.exec(&v, &Op::Get { key: 3 }).unwrap(),
                OpResult::Found(5),
                "target {}",
                spec.name
            );
        }
    }
}

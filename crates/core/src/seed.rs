//! Structured fuzzing seeds: operation sequences per driver thread (§4.5).

use pmrace_api::Op;

/// One seed: for each driver thread, the sequence of operations it issues.
///
/// Seeds are *structured* inputs — already-valid operations rather than raw
/// bytes — which is the core idea of PMRace's operation mutator: byte-level
/// mutation (AFL++ default) mostly produces inputs that die in parsing and
/// never reach the PM logic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Seed {
    threads: Vec<Vec<Op>>,
}

impl Seed {
    /// Build a seed from per-thread op sequences.
    #[must_use]
    pub fn new(threads: Vec<Vec<Op>>) -> Self {
        Seed { threads }
    }

    /// Per-thread op sequences.
    #[must_use]
    pub fn threads(&self) -> &[Vec<Op>] {
        &self.threads
    }

    /// Number of driver threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total operation count across threads.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// All operations flattened (thread-major), for mutation.
    #[must_use]
    pub fn flatten(&self) -> Vec<Op> {
        self.threads.iter().flatten().copied().collect()
    }

    /// Distribute a flat op list round-robin over `n` threads.
    #[must_use]
    pub fn from_flat(ops: &[Op], n: usize) -> Self {
        let n = n.max(1);
        let mut threads = vec![Vec::new(); n];
        for (i, op) in ops.iter().enumerate() {
            threads[i % n].push(*op);
        }
        Seed { threads }
    }

    /// Parse the format produced by [`Seed::to_text`] (one `tN: op; op`
    /// line per thread). Used to replay seeds attached to bug reports.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or operation.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut threads = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let (_label, body) = line
                .split_once(':')
                .ok_or_else(|| format!("missing thread label in {line:?}"))?;
            let mut ops = Vec::new();
            for raw in body.split(';') {
                let raw = raw.trim();
                if raw.is_empty() {
                    continue;
                }
                ops.push(parse_op(raw)?);
            }
            threads.push(ops);
        }
        if threads.is_empty() {
            return Err("no thread lines".to_owned());
        }
        Ok(Seed { threads })
    }

    /// Render as the text attached to bug reports (one line per thread).
    #[must_use]
    pub fn to_text(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                let body: Vec<String> = ops.iter().map(ToString::to_string).collect();
                format!("t{t}: {}", body.join("; "))
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn parse_op(raw: &str) -> Result<Op, String> {
    let (verb, rest) = raw
        .split_once(' ')
        .ok_or_else(|| format!("malformed op {raw:?}"))?;
    let num = |s: &str| -> Result<u64, String> {
        s.trim()
            .parse()
            .map_err(|_| format!("bad number in {raw:?}"))
    };
    match verb {
        "insert" | "update" => {
            let (k, v) = rest
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in {raw:?}"))?;
            let (key, value) = (num(k)?, num(v)?);
            Ok(if verb == "insert" {
                Op::Insert { key, value }
            } else {
                Op::Update { key, value }
            })
        }
        "delete" => Ok(Op::Delete { key: num(rest)? }),
        "get" => Ok(Op::Get { key: num(rest)? }),
        "incr" => {
            let (k, b) = rest
                .split_once('+')
                .ok_or_else(|| format!("missing '+' in {raw:?}"))?;
            Ok(Op::Incr {
                key: num(k)?,
                by: num(b)?,
            })
        }
        "decr" => {
            let (k, b) = rest
                .split_once('-')
                .ok_or_else(|| format!("missing '-' in {raw:?}"))?;
            Ok(Op::Decr {
                key: num(k)?,
                by: num(b)?,
            })
        }
        _ => Err(format!("unknown op {verb:?}")),
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed[{} threads, {} ops]",
            self.num_threads(),
            self.num_ops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_redistribute() {
        let ops = vec![
            Op::Insert { key: 1, value: 1 },
            Op::Get { key: 1 },
            Op::Delete { key: 1 },
            Op::Insert { key: 2, value: 2 },
            Op::Get { key: 2 },
        ];
        let seed = Seed::from_flat(&ops, 2);
        assert_eq!(seed.num_threads(), 2);
        assert_eq!(seed.num_ops(), 5);
        assert_eq!(seed.threads()[0].len(), 3);
        assert_eq!(seed.threads()[1].len(), 2);
        let flat = seed.flatten();
        assert_eq!(flat.len(), 5);
    }

    #[test]
    fn text_rendering_names_threads() {
        let seed = Seed::new(vec![
            vec![Op::Insert { key: 1, value: 9 }],
            vec![Op::Get { key: 1 }],
        ]);
        let text = seed.to_text();
        assert!(text.contains("t0: insert 1=9"));
        assert!(text.contains("t1: get 1"));
    }

    #[test]
    fn from_flat_handles_zero_threads() {
        let seed = Seed::from_flat(&[Op::Get { key: 1 }], 0);
        assert_eq!(seed.num_threads(), 1);
    }

    #[test]
    fn text_roundtrip_preserves_every_op_kind() {
        let seed = Seed::new(vec![
            vec![
                Op::Insert { key: 1, value: 2 },
                Op::Update { key: 3, value: 4 },
                Op::Delete { key: 5 },
            ],
            vec![
                Op::Get { key: 6 },
                Op::Incr { key: 7, by: 8 },
                Op::Decr { key: 9, by: 10 },
            ],
        ]);
        let parsed = Seed::parse(&seed.to_text()).unwrap();
        assert_eq!(parsed, seed);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Seed::parse("").is_err());
        assert!(Seed::parse("no colon here").is_err());
        assert!(Seed::parse("t0: frobnicate 5").is_err());
        assert!(Seed::parse("t0: insert 5").is_err());
        assert!(Seed::parse("t0: incr 5*3").is_err());
        assert!(Seed::parse("t0: get abc").is_err());
    }

    #[test]
    fn parse_tolerates_blank_lines_and_spacing() {
        let parsed = Seed::parse("\nt0:  insert 1=2 ;  get 1 \n\n t1: delete 2\n").unwrap();
        assert_eq!(parsed.num_threads(), 2);
        assert_eq!(parsed.num_ops(), 3);
    }
}

//! Text-command generators for the memcached input-generation experiment
//! (Table 4): PMRace's semantic command generator vs. an AFL++-style byte
//! mutator.
//!
//! The byte mutator applies AFL havoc-style transformations (bit flips,
//! random byte replacement, insertion, deletion, splicing) to example
//! command lines; most of its outputs fail memcached's command parsing and
//! die in the `Error` branch — the effect Table 4 quantifies. The semantic
//! generator always emits syntactically valid commands, reaching the
//! "deeper" code behind the parser.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Example seed corpus of valid command lines (what a user would hand
/// AFL++ as initial test cases).
#[must_use]
pub fn example_corpus() -> Vec<String> {
    vec![
        "set key1 0 0 8 42".to_owned(),
        "get key1".to_owned(),
        "add key2 0 0 8 7".to_owned(),
        "replace key1 0 0 8 9".to_owned(),
        "append key1 0 0 8 1".to_owned(),
        "incr key1 3".to_owned(),
        "decr key1 2".to_owned(),
        "delete key2".to_owned(),
        "bget key1".to_owned(),
    ]
}

/// PMRace's semantic command generator: valid commands with similar keys.
#[derive(Debug)]
pub struct CommandGen {
    rng: StdRng,
}

impl CommandGen {
    /// Deterministic generator under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CommandGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn key(&mut self) -> String {
        format!("key{}", self.rng.random_range(1..=16u32))
    }

    /// One valid command line. Includes boundary-but-well-formed inputs
    /// (oversized objects, misses) so semantic generation also reaches the
    /// server-side validation branches, not just the happy paths.
    pub fn command(&mut self) -> String {
        let key = self.key();
        match self.rng.random_range(0..22u32) {
            0..3 => format!("get {key}"),
            3 => {
                let key2 = self.key();
                format!("get {key} {key2}")
            }
            4 => format!("bget {key}"),
            5 => format!("get missing{}", self.rng.random_range(100..999u32)),
            6..8 => format!("set {key} 0 0 8 {}", self.rng.random_range(1..1000u32)),
            8 => format!(
                "set {key} 0 0 {} {}",
                self.rng.random_range(2000..9000u32),
                self.rng.random_range(1..1000u32)
            ),
            9..11 => format!("add {key} 0 0 8 {}", self.rng.random_range(1..1000u32)),
            11..13 => format!("replace {key} 0 0 8 {}", self.rng.random_range(1..1000u32)),
            13 => format!("append {key} 0 0 8 {}", self.rng.random_range(1..100u32)),
            14 => format!("prepend {key} 0 0 8 {}", self.rng.random_range(1..100u32)),
            15..17 => format!("incr {key} {}", self.rng.random_range(1..50u32)),
            17..19 => format!("decr {key} {}", self.rng.random_range(1..50u32)),
            19 => format!("delete {key}"),
            20 => format!(
                "cas {key} 0 0 8 {} {}",
                self.rng.random_range(1..1000u32),
                self.rng.random_range(1..1000u32)
            ),
            _ => format!("gets {key}"),
        }
    }

    /// A batch of `n` valid commands.
    pub fn batch(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.command()).collect()
    }
}

/// AFL++-style havoc byte mutator over command lines.
#[derive(Debug)]
pub struct ByteMutator {
    rng: StdRng,
    corpus: Vec<String>,
}

impl ByteMutator {
    /// Deterministic mutator over the example corpus.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ByteMutator {
            rng: StdRng::seed_from_u64(seed),
            corpus: example_corpus(),
        }
    }

    /// Produce one mutated command line (several stacked havoc steps).
    pub fn mutate(&mut self) -> String {
        let base = self
            .corpus
            .choose(&mut self.rng)
            .cloned()
            .unwrap_or_default();
        let mut bytes: Vec<u8> = base.into_bytes();
        let steps = self.rng.random_range(1..=6u32);
        for _ in 0..steps {
            if bytes.is_empty() {
                bytes.push(self.rng.random());
                continue;
            }
            match self.rng.random_range(0..5u32) {
                0 => {
                    // Bit flip.
                    let i = self.rng.random_range(0..bytes.len());
                    let bit = self.rng.random_range(0..8u32);
                    bytes[i] ^= 1 << bit;
                }
                1 => {
                    // Random byte replacement.
                    let i = self.rng.random_range(0..bytes.len());
                    bytes[i] = self.rng.random();
                }
                2 => {
                    // Insertion.
                    let i = self.rng.random_range(0..=bytes.len());
                    bytes.insert(i, self.rng.random());
                }
                3 => {
                    // Deletion.
                    let i = self.rng.random_range(0..bytes.len());
                    bytes.remove(i);
                }
                _ => {
                    // Splice with another corpus line.
                    if let Some(other) = self.corpus.choose(&mut self.rng) {
                        let cut = self.rng.random_range(0..=bytes.len());
                        let ocut = self.rng.random_range(0..=other.len());
                        bytes.truncate(cut);
                        bytes.extend_from_slice(&other.as_bytes()[..ocut]);
                    }
                }
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// A batch of `n` mutated lines.
    pub fn batch(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.mutate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_targets::memkv::proto::{classify, CmdFamily};

    #[test]
    fn semantic_generator_emits_only_valid_families() {
        let mut g = CommandGen::new(5);
        for line in g.batch(200) {
            assert_ne!(classify(&line), CmdFamily::Error, "invalid: {line}");
        }
    }

    #[test]
    fn semantic_generator_covers_all_families() {
        let mut g = CommandGen::new(5);
        let lines = g.batch(300);
        for family in [
            CmdFamily::Get,
            CmdFamily::Update,
            CmdFamily::Incr,
            CmdFamily::Decr,
            CmdFamily::Delete,
        ] {
            assert!(
                lines.iter().any(|l| classify(l) == family),
                "family {family} never generated"
            );
        }
    }

    #[test]
    fn byte_mutator_produces_many_parse_errors() {
        let mut m = ByteMutator::new(5);
        let lines = m.batch(300);
        let errors = lines
            .iter()
            .filter(|l| classify(l) == CmdFamily::Error)
            .count();
        // The paper observes about 1/3 of AFL++ inputs aborting as invalid
        // commands; havoc mutation must at least produce a sizable share.
        assert!(errors > 50, "only {errors}/300 invalid");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(CommandGen::new(9).batch(10), CommandGen::new(9).batch(10));
        assert_eq!(ByteMutator::new(9).batch(10), ByteMutator::new(9).batch(10));
    }
}

//! Fleet plumbing for multi-worker fuzzing: the shared cross-worker seed
//! pool and the signature-striped bug-ledger front.
//!
//! The paper ran 13 parallel fuzzing workers for 20 hours (§6.1). A fleet
//! only beats 13 independent fuzzers if workers *share* their discoveries
//! without serializing on them:
//!
//! - [`SharedCorpus`] is a sharded in-memory seed pool — one stripe per
//!   worker, each under its own lock. A worker that unlocks new coverage
//!   publishes the seed to its stripe; siblings import everything published
//!   since their last look (and sometimes *steal* the freshest import as
//!   their next seed outright), so a good seed from worker 0 is being
//!   mutated by workers 1..N within a few campaigns. Workers never touch
//!   each other's RNG streams: imports change *which* seeds are evolved,
//!   not how the per-worker `StdRng` draws, so seeded runs stay replayable
//!   and recorded repros stay valid.
//! - [`SharedLedger`] fronts the deduplicating [`Ledger`] with per-stripe
//!   signature filters. The common campaign carries nothing new; such
//!   campaigns are absorbed by the stripe locks (selected by signature
//!   hash) without ever taking the global ledger lock. Only campaigns with
//!   at least one globally-fresh signature fall through to the real
//!   `begin_ingest`, and post-failure validation still runs outside every
//!   lock, so cache-miss recovery executions from different workers stay
//!   fully concurrent.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use pmrace_api::TargetSpec;
use pmrace_runtime::report::CandidateKind;
use pmrace_runtime::site_label;
use pmrace_telemetry as telemetry;

use crate::bugs::{IngestDelta, IngestPlan, Ledger};
use crate::campaign::CampaignResult;
use crate::seed::Seed;

/// Seeds kept per stripe; the oldest publication is dropped beyond this
/// (mirrors the explorer's own 16-seed corpus window).
const STRIPE_CAP: usize = 32;

/// One worker's publication stripe.
#[derive(Debug, Default)]
struct Stripe {
    /// `(publication epoch, seed)`, ascending by epoch.
    seeds: Mutex<Vec<(u64, Seed)>>,
}

/// Sharded cross-worker seed pool with work-stealing imports.
///
/// Publications go to the publishing worker's own stripe, so publishing
/// never contends with another worker's publish. Imports scan sibling
/// stripes for epochs newer than the importer's cursor; each stripe is
/// locked briefly and independently.
#[derive(Debug)]
pub struct SharedCorpus {
    stripes: Box<[Stripe]>,
    /// Global publication clock; also the "anything new?" fast path —
    /// importers compare it against their cursor before touching stripes.
    epoch: AtomicU64,
}

impl SharedCorpus {
    /// Pool with one stripe per worker.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        SharedCorpus {
            stripes: (0..workers.max(1)).map(|_| Stripe::default()).collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of stripes (= fleet workers).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.stripes.len()
    }

    /// Publish a coverage-improving seed from `worker`. Identical seeds
    /// already in the stripe are skipped (dedup under the stripe lock).
    pub fn publish(&self, worker: usize, seed: &Seed) {
        let stripe = &self.stripes[worker % self.stripes.len()];
        let mut seeds = stripe.seeds.lock();
        if seeds.iter().any(|(_, s)| s == seed) {
            return;
        }
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        seeds.push((epoch, seed.clone()));
        if seeds.len() > STRIPE_CAP {
            seeds.remove(0);
        }
    }

    /// Import every seed published by *sibling* stripes since `cursor`,
    /// oldest first. Returns the imports and the new cursor to store.
    /// A worker's own stripe is skipped: its publications are already in
    /// its local corpus, and skipping keeps a single-worker fleet
    /// byte-identical to the pre-fleet explorer.
    #[must_use]
    pub fn import_since(&self, worker: usize, cursor: u64) -> (Vec<Seed>, u64) {
        let now = self.epoch.load(Ordering::Acquire);
        if now <= cursor {
            return (Vec::new(), cursor);
        }
        let own = worker % self.stripes.len();
        let mut fresh: Vec<(u64, Seed)> = Vec::new();
        for (i, stripe) in self.stripes.iter().enumerate() {
            if i == own {
                continue;
            }
            let seeds = stripe.seeds.lock();
            for (epoch, seed) in seeds.iter().rev() {
                if *epoch <= cursor {
                    break; // ascending per stripe: the rest is older
                }
                fresh.push((*epoch, seed.clone()));
            }
        }
        fresh.sort_by_key(|(epoch, _)| *epoch);
        (fresh.into_iter().map(|(_, s)| s).collect(), now)
    }
}

/// Signature of one deduplicable finding, exactly mirroring the keys the
/// [`Ledger`] indexes use. Hang is tracked separately (a single flag).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SigKey {
    /// Candidate `(write label, read label, kind)`.
    Cand(String, String, CandidateKind),
    /// Inconsistency `(write, read, effect)` labels.
    Incons(String, String, String),
    /// Sync var name.
    Sync(String),
    /// Perf issue `(checker, site label)`.
    Perf(String, String),
}

/// Signature stripes in the ledger front (power of two).
const SIG_STRIPES: usize = 16;

/// Concurrent front for the deduplicating bug [`Ledger`].
///
/// `begin_ingest` probes each finding's signature against a per-stripe
/// `HashSet` (stripe chosen by signature hash). Campaigns whose findings
/// are all already-seen are absorbed right there — their statistics land
/// in side atomics and the global ledger lock is never taken. Campaigns
/// with a fresh signature take the inner lock for the real (cheap)
/// [`Ledger::begin_ingest`]; the expensive recovery validation then runs
/// with no lock held, and `finish_ingest` re-locks briefly to apply
/// verdicts. Exactly-once minting holds because the stripe insert is the
/// linearization point: whichever worker first inserts a signature goes to
/// the inner ledger with it.
#[derive(Debug)]
pub struct SharedLedger {
    inner: Mutex<Ledger>,
    stripes: [Mutex<HashSet<SigKey>>; SIG_STRIPES],
    /// Campaigns absorbed by the fast path (inner ledger never saw them).
    fast_campaigns: AtomicUsize,
    /// Hang campaigns absorbed by the fast path.
    fast_hangs: AtomicUsize,
    /// Whether some worker already owns minting the (single) hang bug.
    hang_claimed: AtomicBool,
    /// Max annotations count seen on the fast path.
    annotations: AtomicUsize,
}

impl SharedLedger {
    /// Empty sharded ledger for a target.
    #[must_use]
    pub fn new(spec: TargetSpec) -> Self {
        SharedLedger {
            inner: Mutex::new(Ledger::new(spec)),
            stripes: std::array::from_fn(|_| Mutex::new(HashSet::new())),
            fast_campaigns: AtomicUsize::new(0),
            fast_hangs: AtomicUsize::new(0),
            hang_claimed: AtomicBool::new(false),
            annotations: AtomicUsize::new(0),
        }
    }

    fn stripe_of(key: &SigKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SIG_STRIPES - 1)
    }

    /// Probe-insert `key`; `true` when this call was the first to see it.
    fn claim(&self, key: SigKey) -> bool {
        let stripe = Self::stripe_of(&key);
        self.stripes[stripe].lock().insert(key)
    }

    /// Phase 1 under striped locks: dedup the campaign's findings by
    /// signature. Returns `None` when nothing is globally new — the caller
    /// skips validation and `finish_ingest` entirely (the global ledger
    /// lock is not taken). Returns the inner ledger's [`IngestPlan`]
    /// otherwise.
    pub fn begin_ingest(&self, result: &CampaignResult, elapsed: Duration) -> Option<IngestPlan> {
        self.annotations
            .fetch_max(result.annotations.len(), Ordering::Relaxed);
        let mut fresh = false;
        for cand in &result.findings.candidates {
            let key = SigKey::Cand(
                site_label(cand.write_site).to_owned(),
                site_label(cand.read_site).to_owned(),
                cand.kind,
            );
            fresh |= self.claim(key);
        }
        for rec in &result.findings.inconsistencies {
            let key = SigKey::Incons(
                site_label(rec.candidate.write_site).to_owned(),
                site_label(rec.candidate.read_site).to_owned(),
                site_label(rec.effect_site).to_owned(),
            );
            fresh |= self.claim(key);
        }
        for upd in &result.findings.sync_updates {
            fresh |= self.claim(SigKey::Sync(upd.var_name.clone()));
        }
        for issue in &result.findings.perf_issues {
            let key = SigKey::Perf(issue.checker.to_owned(), site_label(issue.site).to_owned());
            fresh |= self.claim(key);
        }
        if result.findings.hang && !self.hang_claimed.swap(true, Ordering::AcqRel) {
            fresh = true;
        }
        if !fresh {
            // Everything already seen: absorb the campaign's bookkeeping
            // without the global lock.
            self.fast_campaigns.fetch_add(1, Ordering::Relaxed);
            if result.findings.hang {
                self.fast_hangs.fetch_add(1, Ordering::Relaxed);
            }
            return None;
        }
        Some(self.inner.lock().begin_ingest(result, elapsed))
    }

    /// Phase 3 under the inner lock: apply verdicts and mint unique bugs.
    /// Call [`IngestPlan::validate`] between the phases, off-lock.
    pub fn finish_ingest(
        &self,
        plan: IngestPlan,
        result: &CampaignResult,
        seed: Option<&Seed>,
    ) -> IngestDelta {
        self.inner.lock().finish_ingest(plan, result, seed)
    }

    /// Tear down into the inner [`Ledger`], folding the fast-path
    /// statistics (absorbed campaigns/hangs, annotation max) back in. The
    /// result is indistinguishable from having ingested every campaign
    /// through the slow path.
    #[must_use]
    pub fn into_ledger(self) -> Ledger {
        let mut ledger = self.inner.into_inner();
        ledger.absorb_fast_path(
            self.fast_campaigns.into_inner(),
            self.fast_hangs.into_inner(),
            self.annotations.into_inner(),
        );
        ledger
    }
}

/// Count a cross-worker seed import batch in the fleet telemetry.
pub(crate) fn note_imports(n: usize) {
    if n > 0 {
        telemetry::add(telemetry::Counter::FleetSharedSeeds, n as u64);
    }
}

/// Count one work-steal (a sibling seed adopted as the current seed).
pub(crate) fn note_steal() {
    telemetry::add(telemetry::Counter::FleetSteals, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::mutator::OpMutator;
    use pmrace_targets::{target_spec, Op};

    #[test]
    fn publish_and_import_flow_across_stripes() {
        let pool = SharedCorpus::new(3);
        let mut m = OpMutator::new(1, 2, 4);
        let (a, b, c) = (m.generate(), m.generate(), m.generate());
        pool.publish(0, &a);
        pool.publish(1, &b);
        // Worker 2 sees both siblings' seeds, oldest first.
        let (got, cursor) = pool.import_since(2, 0);
        assert_eq!(got, vec![a.clone(), b.clone()]);
        // Nothing new: the cursor short-circuits.
        let (got, cursor2) = pool.import_since(2, cursor);
        assert!(got.is_empty());
        assert_eq!(cursor, cursor2);
        // A later publication arrives alone.
        pool.publish(0, &c);
        let (got, _) = pool.import_since(2, cursor);
        assert_eq!(got, vec![c]);
        // Workers never import their own stripe.
        let (got, _) = pool.import_since(0, 0);
        assert_eq!(got, vec![b]);
    }

    #[test]
    fn duplicate_publications_are_dropped() {
        let pool = SharedCorpus::new(2);
        let seed = OpMutator::new(2, 2, 4).generate();
        pool.publish(0, &seed);
        pool.publish(0, &seed);
        let (got, _) = pool.import_since(1, 0);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn stripes_are_bounded() {
        let pool = SharedCorpus::new(2);
        let mut m = OpMutator::new(3, 2, 4);
        let seeds: Vec<Seed> = (0..STRIPE_CAP + 8).map(|_| m.generate()).collect();
        for s in &seeds {
            pool.publish(0, s);
        }
        let (got, _) = pool.import_since(1, 0);
        assert_eq!(got.len(), STRIPE_CAP, "oldest publications evicted");
        assert_eq!(got.last(), seeds.last(), "newest kept");
    }

    #[test]
    fn sharded_ledger_matches_plain_ingest() {
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let seed = Seed::from_flat(&ops, 1);
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();

        let mut plain = Ledger::new(spec);
        plain.ingest(&res, Duration::ZERO);
        plain.ingest(&res, Duration::from_secs(1));

        let shared = SharedLedger::new(spec);
        let plan = shared
            .begin_ingest(&res, Duration::ZERO)
            .expect("first campaign has fresh findings");
        let mut plan = plan;
        plan.validate(&res);
        let delta = shared.finish_ingest(plan, &res, None);
        assert!(!delta.new_bugs.is_empty());
        // Identical findings again: absorbed without a plan.
        assert!(
            shared.begin_ingest(&res, Duration::from_secs(1)).is_none(),
            "all-duplicate campaign must take the fast path"
        );
        let ledger = shared.into_ledger();
        assert_eq!(ledger.stats(), plain.stats(), "stats must not drift");
        assert_eq!(
            ledger.bugs().len(),
            plain.bugs().len(),
            "unique-bug sets must match"
        );
    }

    #[test]
    fn concurrent_ingest_of_identical_results_mints_once() {
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let seed = Seed::from_flat(&ops, 1);
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        let shared = SharedLedger::new(spec);
        let minted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (shared, res, minted) = (&shared, &res, &minted);
                scope.spawn(move || {
                    if let Some(mut plan) = shared.begin_ingest(res, Duration::ZERO) {
                        plan.validate(res);
                        let delta = shared.finish_ingest(plan, res, None);
                        minted.fetch_add(delta.new_bugs.len(), Ordering::Relaxed);
                    }
                });
            }
        });
        let ledger = shared.into_ledger();
        assert_eq!(ledger.stats().campaigns, 4);
        assert_eq!(
            minted.load(Ordering::Relaxed),
            ledger.bugs().len(),
            "every unique bug must be minted exactly once across workers"
        );
    }

    #[test]
    fn deferred_validation_verdicts_match_inline() {
        // The pipeline's contract: an IngestPlan minted on the exec thread
        // and validated + finished on a *different* thread (the validator
        // pool) must yield the same verdicts and the same minted bugs as
        // the inline path, given the same campaign result.
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let seed = Seed::from_flat(&ops, 1);
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();

        let inline = SharedLedger::new(spec);
        let mut plan = inline
            .begin_ingest(&res, Duration::ZERO)
            .expect("fresh findings");
        plan.validate(&res);
        let inline_delta = inline.finish_ingest(plan, &res, None);

        let deferred = SharedLedger::new(spec);
        let plan = deferred
            .begin_ingest(&res, Duration::ZERO)
            .expect("fresh findings");
        let deferred_delta = std::thread::scope(|scope| {
            let (deferred, res) = (&deferred, &res);
            scope
                .spawn(move || {
                    let mut plan = plan;
                    plan.validate(res);
                    deferred.finish_ingest(plan, res, None)
                })
                .join()
                .expect("validator thread")
        });

        assert_eq!(
            inline_delta.new_bugs.len(),
            deferred_delta.new_bugs.len(),
            "deferred validation must mint the same bugs"
        );
        let (a, b) = (inline.into_ledger(), deferred.into_ledger());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.bug_triples(), b.bug_triples(), "verdict triples drifted");
    }

    #[test]
    fn fast_path_counts_hangs() {
        let spec = target_spec("clevel").unwrap();
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let seed = Seed::from_flat(&[Op::Insert { key: 1, value: 1 }], 1);
        let mut res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        res.findings.hang = true;
        let shared = SharedLedger::new(spec);
        for i in 0..3u64 {
            if let Some(mut plan) = shared.begin_ingest(&res, Duration::from_millis(i)) {
                plan.validate(&res);
                let _ = shared.finish_ingest(plan, &res, None);
            }
        }
        let ledger = shared.into_ledger();
        let stats = ledger.stats();
        assert_eq!(stats.campaigns, 3);
        assert_eq!(stats.hangs, 3, "fast-path hangs must still be counted");
        assert_eq!(
            ledger
                .bugs()
                .iter()
                .filter(|b| b.kind == crate::bugs::BugKind::Hang)
                .count(),
            1
        );
    }
}

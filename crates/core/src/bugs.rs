//! Unique-bug deduplication and evaluation statistics (§6.2, §6.3).
//!
//! A *unique bug* groups detections by the store instruction that wrote the
//! non-persisted data (inter/intra) or by the synchronization variable
//! (sync), as in the paper. The [`Ledger`] ingests campaign results,
//! validates each new detection once (post-failure), and accumulates every
//! number Tables 2/3/5/6 report plus the Fig. 8 detection timeline.

use std::collections::{BTreeMap, HashSet};
use std::time::Duration;

use pmrace_api::TargetSpec;
use pmrace_runtime::report::CandidateKind;
use pmrace_runtime::site_label;

use crate::campaign::CampaignResult;
use crate::validate::{validate_inconsistency, validate_sync, Verdict};

/// Bug classification, matching Table 2's "Type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugKind {
    /// PM Inter-thread Inconsistency (PM Interleaving Concurrency Bug).
    Inter,
    /// PM Synchronization Inconsistency (PM Execution Context Bug).
    Sync,
    /// PM Intra-thread Inconsistency.
    Intra,
    /// Hang observed during fuzzing (DRAM-style concurrency bug).
    Hang,
    /// Performance issue from an extension checker.
    Perf,
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugKind::Inter => "Inter",
            BugKind::Sync => "Sync",
            BugKind::Intra => "Intra",
            BugKind::Hang => "Hang",
            BugKind::Perf => "Perf",
        };
        f.write_str(s)
    }
}

/// One deduplicated bug with its report fields (Table 2 row).
#[derive(Debug, Clone)]
pub struct UniqueBug {
    /// Classification.
    pub kind: BugKind,
    /// Target system name.
    pub target: &'static str,
    /// "Write code": label of the store that produced non-persisted data
    /// (or the sync variable / hang site).
    pub write_label: String,
    /// "Read code": label of the racy read (empty for sync/hang).
    pub read_label: String,
    /// Durable-side-effect site label (empty for sync/hang).
    pub effect_label: String,
    /// Human-readable description.
    pub description: String,
    /// Post-failure verdict that promoted this to a bug.
    pub verdict: Verdict,
    /// Fuzzing time at first detection.
    pub found_after: Duration,
    /// The seed of the campaign that first exposed the bug (rendered with
    /// [`Seed::to_text`](crate::Seed::to_text)), attached to reports so the
    /// finding can be replayed.
    pub seed_text: Option<String>,
    /// Recent PM access history at the detection point (rendered), the
    /// report's stack-trace analog. Empty when unavailable.
    pub trace_text: String,
}

impl std::fmt::Display for UniqueBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}][{}] {} (write: {}, read: {}, effect: {}; {:?} after {:?})",
            self.target,
            self.kind,
            self.description,
            self.write_label,
            self.read_label,
            self.effect_label,
            self.verdict,
            self.found_after,
        )
    }
}

/// What one [`Ledger::ingest`] call added: the *new* unique findings of
/// that campaign, after deduplication. The fuzzer's record hook uses this
/// to auto-record a repro artifact exactly once per unique bug.
#[derive(Debug, Clone, Default)]
pub struct IngestDelta {
    /// Unique bugs first seen in this campaign.
    pub new_bugs: Vec<UniqueBug>,
    /// Candidate `(write label, read label)` pairs first seen in this
    /// campaign. Candidates never promoted to inconsistencies are findings
    /// in their own right (the paper's "Other" pool, e.g. P-CLHT's
    /// redundant PM write), so repros cover them too.
    pub new_candidates: Vec<(String, String)>,
}

impl IngestDelta {
    /// `true` when the campaign contributed nothing new.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_bugs.is_empty() && self.new_candidates.is_empty()
    }
}

/// Pending work between [`Ledger::begin_ingest`] and
/// [`Ledger::finish_ingest`]: which of a campaign's deduplicated new
/// detections still need post-failure validation.
///
/// Ingestion is split into three phases so the expensive part — recovery
/// executions — runs *outside* whatever lock guards the ledger:
/// `begin_ingest` (under the lock) dedupes and reserves index slots,
/// [`IngestPlan::validate`] (lock-free) runs recovery, and `finish_ingest`
/// (under the lock) applies verdicts in input order, keeping bug minting
/// deterministic regardless of validation concurrency.
#[derive(Debug)]
pub struct IngestPlan {
    spec: TargetSpec,
    elapsed: Duration,
    /// Indices into `result.findings.inconsistencies` needing validation.
    incons: Vec<usize>,
    /// Indices into `result.findings.sync_updates` needing validation.
    syncs: Vec<usize>,
    /// Verdicts for `incons[..incons_verdicts.len()]`.
    incons_verdicts: Vec<Verdict>,
    /// Verdicts for `syncs[..sync_verdicts.len()]`.
    sync_verdicts: Vec<Verdict>,
    new_candidates: Vec<(String, String)>,
}

impl IngestPlan {
    /// `true` while some planned record still lacks a verdict; when false,
    /// [`Ledger::finish_ingest`] is pure bookkeeping and callers can skip
    /// the unlocked validation window entirely.
    #[must_use]
    pub fn needs_validation(&self) -> bool {
        self.incons_verdicts.len() < self.incons.len()
            || self.sync_verdicts.len() < self.syncs.len()
    }

    /// Phase 2 of ingestion: run post-failure validation for every planned
    /// record. Requires no ledger access, so callers may drop the ledger
    /// lock around it; `result` must be the same campaign result the plan
    /// was created from. Idempotent — already-validated records are
    /// skipped.
    pub fn validate(&mut self, result: &CampaignResult) {
        while self.incons_verdicts.len() < self.incons.len() {
            let rec = &result.findings.inconsistencies[self.incons[self.incons_verdicts.len()]];
            self.incons_verdicts
                .push(validate_inconsistency(&self.spec, rec));
        }
        while self.sync_verdicts.len() < self.syncs.len() {
            let upd = &result.findings.sync_updates[self.syncs[self.sync_verdicts.len()]];
            self.sync_verdicts.push(validate_sync(&self.spec, upd));
        }
    }
}

/// Aggregate detection statistics — the raw material of Tables 3 and 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionStats {
    /// Unique PM Inter-thread Inconsistency Candidates.
    pub inter_candidates: usize,
    /// Unique PM Intra-thread Inconsistency Candidates.
    pub intra_candidates: usize,
    /// Unique PM Inter-thread Inconsistencies (pre-failure detections).
    pub inter: usize,
    /// Unique PM Intra-thread Inconsistencies.
    pub intra: usize,
    /// Inter/intra false positives filtered by post-failure validation.
    pub validated_fp: usize,
    /// Inter/intra false positives filtered by the whitelist.
    pub whitelisted_fp: usize,
    /// Sync-var annotations present on the target.
    pub annotations: usize,
    /// Unique PM Synchronization Inconsistencies detected.
    pub sync: usize,
    /// Sync false positives filtered by post-failure validation.
    pub sync_validated_fp: usize,
    /// Campaigns that ended in a hang.
    pub hangs: usize,
    /// Extension-checker performance issues (unique).
    pub perf_issues: usize,
    /// Campaigns ingested.
    pub campaigns: usize,
}

/// Deduplicating bug ledger for one target.
#[derive(Debug)]
pub struct Ledger {
    spec: TargetSpec,
    stats: DetectionStats,
    cand_index: HashSet<(String, String, CandidateKind)>,
    incons_index: HashSet<(String, String, String)>,
    sync_index: HashSet<String>,
    perf_index: HashSet<(String, String)>,
    hang_seen: bool,
    bugs: BTreeMap<String, UniqueBug>,
    inter_times: Vec<Duration>,
    bug_triples: Vec<(String, String, String)>,
}

impl Ledger {
    /// Empty ledger for a target.
    #[must_use]
    pub fn new(spec: TargetSpec) -> Self {
        Ledger {
            spec,
            stats: DetectionStats::default(),
            cand_index: HashSet::new(),
            incons_index: HashSet::new(),
            sync_index: HashSet::new(),
            perf_index: HashSet::new(),
            hang_seen: false,
            bugs: BTreeMap::new(),
            inter_times: Vec::new(),
            bug_triples: Vec::new(),
        }
    }

    /// The target this ledger tracks.
    #[must_use]
    pub fn target(&self) -> &'static str {
        self.spec.name
    }

    /// Ingest one campaign's findings: dedupe, validate new detections,
    /// update statistics. `elapsed` is total fuzzing time at campaign end
    /// (for the Fig. 8 timeline). Returns what was *new* in this campaign.
    pub fn ingest(&mut self, result: &CampaignResult, elapsed: Duration) -> IngestDelta {
        self.ingest_with_seed(result, elapsed, None)
    }

    /// [`Ledger::ingest`] with the campaign's seed attached: new unique
    /// bugs carry it in their reports for replay.
    pub fn ingest_with_seed(
        &mut self,
        result: &CampaignResult,
        elapsed: Duration,
        seed: Option<&crate::Seed>,
    ) -> IngestDelta {
        let plan = self.begin_ingest(result, elapsed);
        self.finish_ingest(plan, result, seed)
    }

    /// Phase 1 of ingestion: dedupe the campaign's findings against the
    /// ledger's indices and plan which new detections need post-failure
    /// validation. Cheap (no recovery executions) — designed to run under
    /// the lock guarding the ledger. Reserving dedup-index slots here means
    /// a concurrent worker holding an identical detection will not validate
    /// it a second time.
    pub fn begin_ingest(&mut self, result: &CampaignResult, elapsed: Duration) -> IngestPlan {
        let mut plan = IngestPlan {
            spec: self.spec,
            elapsed,
            incons: Vec::new(),
            syncs: Vec::new(),
            incons_verdicts: Vec::new(),
            sync_verdicts: Vec::new(),
            new_candidates: Vec::new(),
        };
        self.stats.campaigns += 1;
        self.stats.annotations = self.stats.annotations.max(result.annotations.len());

        for cand in &result.findings.candidates {
            let w = site_label(cand.write_site).to_owned();
            let r = site_label(cand.read_site).to_owned();
            let key = (w.clone(), r.clone(), cand.kind);
            if self.cand_index.insert(key) {
                match cand.kind {
                    CandidateKind::Inter => self.stats.inter_candidates += 1,
                    CandidateKind::Intra => self.stats.intra_candidates += 1,
                }
                plan.new_candidates.push((w, r));
            }
        }

        for (i, rec) in result.findings.inconsistencies.iter().enumerate() {
            let w = site_label(rec.candidate.write_site).to_owned();
            let r = site_label(rec.candidate.read_site).to_owned();
            let e = site_label(rec.effect_site).to_owned();
            if !self.incons_index.insert((w, r, e)) {
                continue;
            }
            match rec.candidate.kind {
                CandidateKind::Inter => {
                    self.stats.inter += 1;
                    self.inter_times.push(elapsed);
                }
                CandidateKind::Intra => self.stats.intra += 1,
            }
            plan.incons.push(i);
        }

        for (i, upd) in result.findings.sync_updates.iter().enumerate() {
            if !self.sync_index.insert(upd.var_name.clone()) {
                continue;
            }
            self.stats.sync += 1;
            plan.syncs.push(i);
        }
        plan
    }

    /// Phase 3 of ingestion: apply the plan's verdicts (in input order, so
    /// the outcome is independent of validation concurrency), mint new
    /// unique bugs, and fold in perf/hang findings. Runs validation itself
    /// for anything [`IngestPlan::validate`] has not covered yet, so
    /// `begin_ingest` + `finish_ingest` alone is equivalent to
    /// [`Ledger::ingest`]. `result` must be the same campaign result the
    /// plan was created from.
    pub fn finish_ingest(
        &mut self,
        mut plan: IngestPlan,
        result: &CampaignResult,
        seed: Option<&crate::Seed>,
    ) -> IngestDelta {
        plan.validate(result); // no-op when already validated off-lock
        let elapsed = plan.elapsed;
        let mut delta = IngestDelta {
            new_bugs: Vec::new(),
            new_candidates: std::mem::take(&mut plan.new_candidates),
        };
        let seed_text = seed.map(crate::Seed::to_text);
        // Write sites that published via CAS (lock-free targets): their
        // reports call out the publication mechanism, since the racy window
        // sits between the successful CAS and the missing flush.
        let cas_writers: HashSet<u32> = result
            .shared
            .iter()
            .flat_map(|e| e.cas_sites.iter().map(|&(s, _)| s.id()))
            .collect();

        for (&i, &verdict) in plan.incons.iter().zip(&plan.incons_verdicts) {
            let rec = &result.findings.inconsistencies[i];
            let w = site_label(rec.candidate.write_site).to_owned();
            let r = site_label(rec.candidate.read_site).to_owned();
            let e = site_label(rec.effect_site).to_owned();
            match verdict {
                Verdict::ValidatedFp => self.stats.validated_fp += 1,
                Verdict::WhitelistedFp => self.stats.whitelisted_fp += 1,
                Verdict::Bug | Verdict::Unvalidated => {
                    self.bug_triples.push((w.clone(), r.clone(), e.clone()));
                    let kind = match rec.candidate.kind {
                        CandidateKind::Inter => BugKind::Inter,
                        CandidateKind::Intra => BugKind::Intra,
                    };
                    // Unique bugs group by the writing store instruction.
                    let bug_key = format!("{kind}:{w}");
                    if !self.bugs.contains_key(&bug_key) {
                        let trace_text = pmrace_runtime::trace::render_trace(&rec.trace);
                        let bug = UniqueBug {
                            kind,
                            target: self.spec.name,
                            write_label: w.clone(),
                            read_label: r.clone(),
                            effect_label: e.clone(),
                            description: format!(
                                "read non-persisted data {}written at {w}, durable side effect ({}) at {e}",
                                if cas_writers.contains(&rec.candidate.write_site.id()) {
                                    "CAS-published "
                                } else {
                                    ""
                                },
                                rec.kind
                            ),
                            verdict,
                            found_after: elapsed,
                            seed_text: seed_text.clone(),
                            trace_text,
                        };
                        delta.new_bugs.push(bug.clone());
                        self.bugs.insert(bug_key, bug);
                    }
                }
            }
        }

        for (&i, &verdict) in plan.syncs.iter().zip(&plan.sync_verdicts) {
            let upd = &result.findings.sync_updates[i];
            match verdict {
                Verdict::ValidatedFp => self.stats.sync_validated_fp += 1,
                Verdict::WhitelistedFp => self.stats.sync_validated_fp += 1,
                Verdict::Bug | Verdict::Unvalidated => {
                    let bug_key = format!("Sync:{}", upd.var_name);
                    let desc = format!(
                        "persistent sync var '{}' not restored to {} after recovery",
                        upd.var_name, upd.expected_init
                    );
                    if !self.bugs.contains_key(&bug_key) {
                        let bug = UniqueBug {
                            kind: BugKind::Sync,
                            target: self.spec.name,
                            write_label: upd.var_name.clone(),
                            read_label: String::new(),
                            effect_label: site_label(upd.store_site).to_owned(),
                            description: desc,
                            verdict,
                            found_after: elapsed,
                            seed_text: seed_text.clone(),
                            trace_text: String::new(),
                        };
                        delta.new_bugs.push(bug.clone());
                        self.bugs.insert(bug_key, bug);
                    }
                }
            }
        }

        for issue in &result.findings.perf_issues {
            let key = (issue.checker.to_owned(), site_label(issue.site).to_owned());
            if self.perf_index.insert(key) {
                self.stats.perf_issues += 1;
                let bug_key = format!("Perf:{}:{}", issue.checker, site_label(issue.site));
                if !self.bugs.contains_key(&bug_key) {
                    let bug = UniqueBug {
                        kind: BugKind::Perf,
                        target: self.spec.name,
                        write_label: site_label(issue.site).to_owned(),
                        read_label: String::new(),
                        effect_label: String::new(),
                        description: issue.what.clone(),
                        verdict: Verdict::Bug,
                        found_after: elapsed,
                        seed_text: seed_text.clone(),
                        trace_text: String::new(),
                    };
                    delta.new_bugs.push(bug.clone());
                    self.bugs.insert(bug_key, bug);
                }
            }
        }

        if result.findings.hang {
            self.stats.hangs += 1;
            if !self.hang_seen {
                self.hang_seen = true;
                let bug = UniqueBug {
                    kind: BugKind::Hang,
                    target: self.spec.name,
                    write_label: String::new(),
                    read_label: String::new(),
                    effect_label: String::new(),
                    description: "campaign hang: threads blocked past the deadline \
                                  (lock leak or missing signal)"
                        .to_owned(),
                    verdict: Verdict::Bug,
                    found_after: elapsed,
                    seed_text: seed_text.clone(),
                    trace_text: String::new(),
                };
                delta.new_bugs.push(bug.clone());
                self.bugs.insert("Hang".to_owned(), bug);
            }
        }
        delta
    }

    /// Fold in campaigns that a concurrent front
    /// ([`SharedLedger`](crate::fleet::SharedLedger)) absorbed without
    /// routing them through `begin_ingest`: campaigns whose findings were
    /// all already-known signatures. Their only ledger-visible effects are
    /// the campaign/hang tallies and the annotation high-water mark, which
    /// this applies in one shot at fleet shutdown.
    pub fn absorb_fast_path(&mut self, campaigns: usize, hangs: usize, annotations: usize) {
        self.stats.campaigns += campaigns;
        self.stats.hangs += hangs;
        self.stats.annotations = self.stats.annotations.max(annotations);
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DetectionStats {
        self.stats
    }

    /// All unique bugs, ordered by dedup key.
    #[must_use]
    pub fn bugs(&self) -> Vec<&UniqueBug> {
        self.bugs.values().collect()
    }

    /// Unique-bug count per kind (Table 5 columns).
    #[must_use]
    pub fn bug_counts(&self) -> BTreeMap<BugKind, usize> {
        let mut out = BTreeMap::new();
        for b in self.bugs.values() {
            *out.entry(b.kind).or_insert(0) += 1;
        }
        out
    }

    /// Unique candidate pairs `(write label, read label)` that never grew a
    /// durable side effect — the pool the paper's "Other" findings (e.g.
    /// P-CLHT's redundant PM write) are drawn from.
    #[must_use]
    pub fn candidate_only_pairs(&self) -> Vec<(String, String)> {
        self.cand_index
            .iter()
            .filter(|(w, r, _)| {
                !self
                    .incons_index
                    .iter()
                    .any(|(iw, ir, _)| iw == w && ir == r)
            })
            .map(|(w, r, _)| (w.clone(), r.clone()))
            .collect()
    }

    /// Fuzzing times at which each new unique inter-thread inconsistency
    /// was first identified (Fig. 8 series).
    #[must_use]
    pub fn inter_detection_times(&self) -> &[Duration] {
        &self.inter_times
    }

    /// All `(write, read, effect)` label triples that survived validation
    /// as bugs — the raw material for mapping findings onto the paper's
    /// Table 2 rows.
    #[must_use]
    pub fn bug_triples(&self) -> &[(String, String, String)] {
        &self.bug_triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::seed::Seed;
    use pmrace_targets::{target_spec, Op};

    #[test]
    fn ledger_dedups_across_campaigns() {
        let spec = target_spec("clevel").unwrap();
        let mut ledger = Ledger::new(spec);
        let seed = Seed::from_flat(&[Op::Insert { key: 1, value: 1 }], 1);
        for i in 0..3 {
            let res = run_campaign(&spec, &seed, &CampaignConfig::default(), None, None).unwrap();
            ledger.ingest(&res, Duration::from_millis(i * 10));
        }
        let s = ledger.stats();
        assert_eq!(s.campaigns, 3);
        // Construction inconsistencies are whitelisted and counted once.
        assert!(s.whitelisted_fp >= 1);
        assert!(
            ledger.bugs().is_empty(),
            "clevel has no bugs: {:?}",
            ledger.bugs()
        );
    }

    #[test]
    fn pclht_resize_workload_yields_intra_bug_and_sync_split() {
        let spec = target_spec("P-CLHT").unwrap();
        let mut ledger = Ledger::new(spec);
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let seed = Seed::from_flat(&ops, 1);
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        ledger.ingest(&res, Duration::from_secs(1));
        let s = ledger.stats();
        assert_eq!(s.annotations, 4);
        assert!(s.sync >= 2, "resize path touches several sync vars: {s:?}");
        assert!(s.sync_validated_fp >= 1, "global locks reinit: {s:?}");
        let counts = ledger.bug_counts();
        assert!(
            counts.get(&BugKind::Intra).copied().unwrap_or(0) >= 1,
            "{counts:?}"
        );
        assert!(
            counts.get(&BugKind::Sync).copied().unwrap_or(0) >= 1,
            "{counts:?}"
        );
    }

    #[test]
    fn ingest_delta_reports_only_new_findings() {
        let spec = target_spec("P-CLHT").unwrap();
        let mut ledger = Ledger::new(spec);
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &Seed::from_flat(&ops, 1), &cfg, None, None).unwrap();
        let first = ledger.ingest(&res, Duration::ZERO);
        assert!(!first.new_bugs.is_empty(), "resize workload finds bugs");
        assert!(!first.new_candidates.is_empty());
        // Re-ingesting the identical findings adds nothing.
        let second = ledger.ingest(&res, Duration::from_secs(1));
        assert!(second.is_empty(), "{second:?}");
    }

    #[test]
    fn candidate_only_pairs_exclude_inconsistent_ones() {
        let spec = target_spec("P-CLHT").unwrap();
        let mut ledger = Ledger::new(spec);
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &Seed::from_flat(&ops, 1), &cfg, None, None).unwrap();
        ledger.ingest(&res, Duration::ZERO);
        for (w, r) in ledger.candidate_only_pairs() {
            assert!(
                !ledger
                    .incons_index
                    .contains(&(w.clone(), r.clone(), String::new())),
                "pair ({w}, {r}) leaked"
            );
        }
    }
}

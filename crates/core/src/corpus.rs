//! On-disk seed corpus (the AFL-style queue directory).
//!
//! Coverage-improving seeds are written as replayable text files; a later
//! run (or another machine, for the paper's concurrent fuzzing with seed
//! dispatching) can start from them instead of from scratch.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

use crate::seed::Seed;

/// A directory of seed files.
#[derive(Debug, Clone)]
pub struct CorpusDir {
    dir: PathBuf,
}

impl CorpusDir {
    /// Open (creating if needed) a corpus directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CorpusDir { dir })
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn file_for(&self, seed: &Seed) -> PathBuf {
        let mut h = DefaultHasher::new();
        seed.hash(&mut h);
        self.dir.join(format!("seed-{:016x}.txt", h.finish()))
    }

    /// Persist a seed (idempotent: content-hashed file names). Returns the
    /// path, or `None` if an identical seed was already stored.
    ///
    /// Safe under concurrent savers (fleet workers, or whole processes
    /// sharing a corpus directory): the seed is written to a private temp
    /// file and *published* with an atomic link to the final name, so a
    /// reader never observes a half-written seed and two racing savers of
    /// the same seed resolve to one writer plus one dedup hit — never a
    /// clobber.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, seed: &Seed) -> std::io::Result<Option<PathBuf>> {
        let path = self.file_for(seed);
        if path.exists() {
            return Ok(None); // fast path; the link below re-checks atomically
        }
        // The temp name must not end in `.txt` (a concurrent `load_all`
        // could read it mid-write) and must be unique per call (two fleet
        // workers saving the same seed must not share one temp file).
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&tmp, seed.to_text())?;
        // `hard_link` fails with `AlreadyExists` instead of replacing, which
        // is exactly the create-exclusive publish we need (`rename` would
        // silently clobber a concurrent winner's file mid-read).
        let published = match std::fs::hard_link(&tmp, &path) {
            Ok(()) => Ok(Some(path)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        };
        let _ = std::fs::remove_file(&tmp);
        published
    }

    /// Load every parsable seed in the directory (unparsable files are
    /// skipped; a corpus survives format drift).
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors.
    pub fn load_all(&self) -> std::io::Result<Vec<Seed>> {
        let mut out = Vec::new();
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "txt"))
            .collect();
        entries.sort();
        for path in entries {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(seed) = Seed::parse(&text) {
                    out.push(seed);
                }
            }
        }
        Ok(out)
    }

    /// Number of stored seed files.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors.
    pub fn len(&self) -> std::io::Result<usize> {
        Ok(std::fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "txt"))
            .count())
    }

    /// `true` when no seeds are stored. Returns on the first `.txt` entry
    /// instead of counting the whole directory — on a campaign-scale corpus
    /// (thousands of seeds) the difference matters for callers probing
    /// emptiness in a loop.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            if entry.path().extension().is_some_and(|x| x == "txt") {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutator::OpMutator;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmrace-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip_preserves_seeds() {
        let dir = tmpdir("roundtrip");
        let corpus = CorpusDir::open(&dir).unwrap();
        let mut m = OpMutator::new(3, 4, 8);
        let seeds: Vec<_> = (0..5).map(|_| m.generate()).collect();
        for s in &seeds {
            assert!(corpus.save(s).unwrap().is_some());
        }
        assert_eq!(corpus.len().unwrap(), 5);
        let loaded = corpus.load_all().unwrap();
        assert_eq!(loaded.len(), 5);
        for s in &seeds {
            assert!(loaded.contains(s), "seed missing after reload");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saving_a_duplicate_is_a_noop() {
        let dir = tmpdir("dup");
        let corpus = CorpusDir::open(&dir).unwrap();
        let seed = OpMutator::new(3, 2, 4).generate();
        assert!(corpus.save(&seed).unwrap().is_some());
        assert!(corpus.save(&seed).unwrap().is_none());
        assert_eq!(corpus.len().unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_saves_of_one_seed_yield_one_file_and_one_winner() {
        let dir = tmpdir("race");
        let corpus = CorpusDir::open(&dir).unwrap();
        let seed = OpMutator::new(7, 2, 4).generate();
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (corpus, seed, winners) = (&corpus, &seed, &winners);
                scope.spawn(move || {
                    if corpus.save(seed).unwrap().is_some() {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            winners.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "exactly one saver may claim the write"
        );
        assert_eq!(corpus.len().unwrap(), 1);
        // No temp litter: the directory holds only the published seed.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(corpus.load_all().unwrap(), vec![seed]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn is_empty_tracks_published_seeds_only() {
        let dir = tmpdir("empty");
        let corpus = CorpusDir::open(&dir).unwrap();
        assert!(corpus.is_empty().unwrap());
        // Non-seed litter (e.g. an abandoned temp file) does not count.
        std::fs::write(dir.join("seed-dead.tmp.1.2"), "partial").unwrap();
        assert!(corpus.is_empty().unwrap());
        corpus.save(&OpMutator::new(9, 2, 4).generate()).unwrap();
        assert!(!corpus.is_empty().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparsable_files_are_skipped() {
        let dir = tmpdir("junk");
        let corpus = CorpusDir::open(&dir).unwrap();
        std::fs::write(dir.join("junk.txt"), "not a seed").unwrap();
        let seed = OpMutator::new(3, 2, 4).generate();
        corpus.save(&seed).unwrap();
        assert_eq!(corpus.load_all().unwrap().len(), 1);
        assert!(!corpus.is_empty().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

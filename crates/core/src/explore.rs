//! The three exploration tiers (§4.2.3).
//!
//! - **Execution tier** — rerun the same seed + interleaving plan while
//!   coverage grows (interleavings are nondeterministic; repeats pay off).
//! - **Interleaving tier** — when executions stop helping, fetch the next
//!   entry from the shared-access priority queue and force that
//!   interleaving with the Fig. 6 scheduler.
//! - **Seed tier** — when no interleaving helps either, evolve a new seed
//!   with the operation mutator and rebuild the queue.
//!
//! Ablation flags disable the interleaving tier (*w/o IE*) or the seed tier
//! (*w/o SE*) for the Fig. 9 experiment.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmrace_api::TargetSpec;
use pmrace_runtime::coverage::CoverageMap;
use pmrace_runtime::strategy::InterleaveStrategy;
use pmrace_runtime::{site_label, RtError, Site};
use pmrace_sched::{
    AccessQueue, DelayStrategy, PmraceStrategy, RecordingStrategy, ScheduleLog, SkipStore,
    SyncPlan, SyncTuning, SystematicStrategy,
};
use pmrace_telemetry as telemetry;

use crate::campaign::{run_campaign, CampaignConfig, CampaignResult, StrategyKind};
use crate::checkpoint::Checkpoint;
use crate::fleet::SharedCorpus;
use crate::mutator::OpMutator;
use crate::schedule::{EventCapture, PlanCapture, ScheduleCapture, StrategyCapture};
use crate::seed::Seed;

/// Which tier produced a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Re-execution of the current seed/interleaving.
    Execution,
    /// A freshly fetched interleaving plan.
    Interleaving,
    /// A freshly evolved seed.
    Seed,
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Interleaving scheme.
    pub strategy: StrategyKind,
    /// Enable the interleaving tier (disable for *w/o IE*).
    pub enable_interleaving_tier: bool,
    /// Enable the seed tier (disable for *w/o SE*).
    pub enable_seed_tier: bool,
    /// Executions per interleaving plan before fetching the next.
    pub execs_per_interleaving: usize,
    /// Interleaving plans per seed before evolving a new seed.
    pub interleavings_per_seed: usize,
    /// Campaign execution parameters.
    pub campaign: CampaignConfig,
    /// Start campaigns from an in-memory checkpoint.
    pub use_checkpoint: bool,
    /// Fig. 6 scheduler timing knobs.
    pub tuning: SyncTuning,
    /// Operations each driver thread issues per campaign.
    pub ops_per_thread: usize,
    /// Extra seeds to start the corpus from (e.g. loaded from a
    /// [`CorpusDir`](crate::corpus::CorpusDir)).
    pub initial_corpus: Vec<Seed>,
    /// Capture each campaign's nondeterminism frontier (strategy RNG seeds,
    /// realized skips, released access order) into
    /// [`StepOutcome::capture`] so bugs can be turned into repro artifacts.
    pub record_schedules: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: StrategyKind::Pmrace,
            enable_interleaving_tier: true,
            enable_seed_tier: true,
            execs_per_interleaving: 2,
            interleavings_per_seed: 6,
            campaign: CampaignConfig::default(),
            use_checkpoint: true,
            tuning: SyncTuning::default(),
            ops_per_thread: 24,
            initial_corpus: Vec::new(),
            record_schedules: false,
        }
    }
}

/// Result of one exploration step.
#[derive(Debug)]
pub struct StepOutcome {
    /// The campaign's findings and coverage.
    pub result: CampaignResult,
    /// The seed the campaign executed (attached to bug reports).
    pub seed: Seed,
    /// The tier that produced it.
    pub tier: Tier,
    /// New PM alias pairs contributed to this explorer's coverage.
    pub new_alias: usize,
    /// New branches contributed.
    pub new_branch: usize,
    /// The campaign's captured schedule, when
    /// [`ExploreConfig::record_schedules`] is on.
    pub capture: Option<ScheduleCapture>,
}

/// Stateful three-tier explorer for one target.
pub struct Explorer {
    spec: TargetSpec,
    cfg: ExploreConfig,
    mutator: OpMutator,
    corpus: Vec<Seed>,
    seed: Seed,
    queue: AccessQueue,
    skip_store: Arc<SkipStore>,
    plan: Option<SyncPlan>,
    execs_on_plan: usize,
    plans_on_seed: usize,
    /// Coverage frontier novelty is judged against. Always worker-local:
    /// campaign maps merge into it every exec, and in a fleet it syncs with
    /// the shared [`FleetLink::frontier`] on *epoch boundaries* (every
    /// `FRONTIER_EPOCH` execs, or immediately when this worker found new
    /// coverage) rather than per exec — the sibling workers' bits still
    /// arrive, just batched, so the shared map is touched O(1/epoch) times
    /// instead of twice per campaign.
    coverage: Arc<CoverageMap>,
    /// Cross-worker seed pool this explorer publishes to / imports from.
    fleet: Option<FleetLink>,
    checkpoint: Option<Checkpoint>,
    rng: StdRng,
    campaigns: usize,
    stalled_seeds: usize,
    populate_done: bool,
}

/// Execs between frontier epoch syncs: how stale a worker's view of the
/// sibling workers' coverage may get before the next publish/pull. Novelty
/// judged against a ≤16-exec-stale frontier occasionally re-admits a seed a
/// sibling already found — a few redundant corpus entries, dedup'd at the
/// next sync — in exchange for taking the shared map off the per-exec path.
const FRONTIER_EPOCH: usize = 16;

/// An explorer's membership in a fleet: the shared pool, its worker index,
/// and the import cursor (last pool epoch this explorer has seen).
struct FleetLink {
    pool: Arc<SharedCorpus>,
    worker: usize,
    cursor: u64,
    /// Freshest sibling seed imported in the latest batch; the next
    /// seed-tier switch steals it (evolves from it directly) instead of
    /// drawing from the mixed corpus, so cross-worker discoveries propagate
    /// within one seed cycle.
    stolen: Option<Seed>,
    /// The fleet-wide coverage frontier, synced on epoch boundaries.
    frontier: Arc<CoverageMap>,
    /// Execs since the last frontier publish/pull.
    execs_since_sync: usize,
}

impl std::fmt::Debug for Explorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explorer")
            .field("target", &self.spec.name)
            .field("campaigns", &self.campaigns)
            .field("corpus", &self.corpus.len())
            .finish_non_exhaustive()
    }
}

impl Explorer {
    /// Create an explorer with a fresh mutator-generated seed.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-creation (target init) errors.
    pub fn new(spec: TargetSpec, cfg: ExploreConfig, rng_seed: u64) -> Result<Self, RtError> {
        Self::build(spec, cfg, rng_seed, Arc::new(CoverageMap::new()), None)
    }

    /// Create a fleet-member explorer: campaign coverage merges into a
    /// worker-local map every exec and syncs with the shared `frontier` on
    /// epoch boundaries (`FRONTIER_EPOCH` execs, or immediately on new
    /// coverage), so "new" means new fleet-wide up to one epoch of
    /// staleness; coverage-improving seeds are exchanged through `pool`,
    /// publishing to stripe `worker` and importing from the sibling
    /// stripes. The RNG stream is untouched by fleet membership: imports
    /// change *which* seeds get evolved, never how this worker's `StdRng`
    /// draws, and a single-worker fleet has no sibling stripes and is the
    /// frontier's only contributor, so `workers=1` runs are byte-identical
    /// to a standalone explorer.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-creation (target init) errors.
    pub fn with_fleet(
        spec: TargetSpec,
        cfg: ExploreConfig,
        rng_seed: u64,
        frontier: Arc<CoverageMap>,
        pool: Arc<SharedCorpus>,
        worker: usize,
    ) -> Result<Self, RtError> {
        let link = FleetLink {
            pool,
            worker,
            cursor: 0,
            stolen: None,
            frontier,
            execs_since_sync: 0,
        };
        Self::build(
            spec,
            cfg,
            rng_seed,
            Arc::new(CoverageMap::new()),
            Some(link),
        )
    }

    /// Publish this worker's coverage to the fleet frontier and pull the
    /// siblings' accumulated bits back. Called on epoch boundaries during
    /// [`step`](Self::step) and once more by the fleet driver before the
    /// worker retires, so the frontier ends complete.
    pub fn sync_frontier(&mut self) {
        if let Some(link) = &mut self.fleet {
            link.frontier.merge_from(&self.coverage);
            self.coverage.merge_from(&link.frontier);
            link.execs_since_sync = 0;
        }
    }

    fn build(
        spec: TargetSpec,
        cfg: ExploreConfig,
        rng_seed: u64,
        coverage: Arc<CoverageMap>,
        fleet: Option<FleetLink>,
    ) -> Result<Self, RtError> {
        let mut mutator = OpMutator::with_hints(
            rng_seed,
            cfg.campaign.threads,
            cfg.ops_per_thread,
            spec.hints,
        );
        let seed = mutator.generate();
        // The corpus starts with a populate seed too: the insert flood that
        // triggers resize/split mechanisms (§4.5) — plus any seeds carried
        // over from a previous run's corpus directory.
        let mut corpus = vec![seed.clone(), mutator.populate()];
        corpus.extend(cfg.initial_corpus.iter().cloned());
        let checkpoint = if cfg.use_checkpoint {
            Some(Checkpoint::create(&spec)?)
        } else {
            None
        };
        Ok(Explorer {
            spec,
            cfg,
            mutator,
            corpus,
            seed,
            queue: AccessQueue::new(),
            skip_store: Arc::new(SkipStore::new()),
            plan: None,
            execs_on_plan: 0,
            plans_on_seed: 0,
            coverage,
            fleet,
            checkpoint,
            rng: StdRng::seed_from_u64(rng_seed ^ 0xABCD),
            campaigns: 0,
            stalled_seeds: 0,
            populate_done: false,
        })
    }

    /// Campaigns run so far.
    #[must_use]
    pub fn campaigns(&self) -> usize {
        self.campaigns
    }

    /// Coverage counters `(alias_pairs, branches)` of the frontier this
    /// explorer judges novelty against — its own map standalone, the shared
    /// fleet frontier under [`Explorer::with_fleet`].
    #[must_use]
    pub fn coverage_counts(&self) -> (usize, usize) {
        (self.coverage.alias_pairs(), self.coverage.branches())
    }

    /// Pull everything siblings published since the last look into the
    /// local corpus and remember the freshest import as a steal candidate.
    fn import_from_fleet(&mut self) {
        let imports = match self.fleet.as_mut() {
            Some(link) => {
                let (imports, cursor) = link.pool.import_since(link.worker, link.cursor);
                link.cursor = cursor;
                if imports.is_empty() {
                    return;
                }
                link.stolen = imports.last().cloned();
                imports
            }
            None => return,
        };
        crate::fleet::note_imports(imports.len());
        for seed in imports {
            if !self.corpus.contains(&seed) {
                self.corpus.push(seed);
                if self.corpus.len() > 16 {
                    self.corpus.remove(0);
                }
            }
        }
    }

    fn next_seed(&mut self) {
        let _span = telemetry::span(telemetry::Phase::SeedGen);
        self.import_from_fleet();
        let has_stolen = self.fleet.as_ref().is_some_and(|f| f.stolen.is_some());
        if !self.populate_done || self.stalled_seeds >= 2 {
            // The first seed switch (and any coverage stall) runs the
            // populate phase (§4.5): an insert flood with spread keys that
            // reliably drives resize/split/doubling/eviction mechanisms.
            self.populate_done = true;
            self.seed = self.mutator.populate();
            self.stalled_seeds = 0;
            telemetry::add(telemetry::Counter::SeedPopulated, 1);
        } else if has_stolen && self.rng.random_ratio(1, 2) {
            // Work-stealing: evolve straight from the freshest sibling
            // discovery instead of the mixed corpus, so a seed that
            // unlocked coverage on another worker is being mutated here
            // within one seed cycle.
            let stolen = self
                .fleet
                .as_mut()
                .and_then(|f| f.stolen.take())
                .expect("checked above");
            let (seed, _strategy) = self.mutator.evolve(std::slice::from_ref(&stolen));
            self.seed = seed;
            crate::fleet::note_steal();
            telemetry::add(telemetry::Counter::SeedEvolved, 1);
        } else if self.rng.random_ratio(1, 3) {
            // Fresh generator seeds keep diversity up: pure corpus
            // evolution orbits its ancestors and can miss behaviours none
            // of them trigger.
            self.seed = self.mutator.generate();
            telemetry::add(telemetry::Counter::SeedGenerated, 1);
        } else {
            let (seed, _strategy) = self.mutator.evolve(&self.corpus);
            self.seed = seed;
            telemetry::add(telemetry::Counter::SeedEvolved, 1);
        }
        self.queue.reset_explored();
        self.skip_store = Arc::new(SkipStore::new());
        self.plan = None;
        self.execs_on_plan = 0;
        self.plans_on_seed = 0;
    }

    fn build_strategy(&mut self) -> (Option<Arc<dyn InterleaveStrategy>>, Tier, PendingCapture) {
        let record = self.cfg.record_schedules;
        match self.cfg.strategy {
            StrategyKind::None => (None, Tier::Execution, PendingCapture::none()),
            StrategyKind::Delay { max_delay_us } => {
                let rng_seed: u64 = self.rng.random();
                (
                    Some(Arc::new(DelayStrategy::new(
                        Duration::from_micros(max_delay_us),
                        rng_seed,
                    ))),
                    Tier::Execution,
                    PendingCapture::plain(StrategyCapture::Delay {
                        max_delay_us,
                        rng_seed,
                    }),
                )
            }
            StrategyKind::Systematic => {
                let start: u32 = self.rng.random();
                (
                    Some(Arc::new(SystematicStrategy::new(
                        self.cfg.campaign.threads,
                        4,
                        start,
                    ))),
                    Tier::Execution,
                    PendingCapture::plain(StrategyCapture::Systematic { quantum: 4, start }),
                )
            }
            StrategyKind::Pmrace => {
                if !self.cfg.enable_interleaving_tier {
                    return (None, Tier::Execution, PendingCapture::none());
                }
                let mut tier = Tier::Execution;
                if self.plan.is_none() || self.execs_on_plan >= self.cfg.execs_per_interleaving {
                    if let Some(entry) = self.queue.pop_unexplored() {
                        self.plan = Some(SyncPlan::from(&entry));
                        self.execs_on_plan = 0;
                        self.plans_on_seed += 1;
                        tier = Tier::Interleaving;
                        telemetry::add(telemetry::Counter::PlanPlanned, 1);
                    } else {
                        self.plan = None;
                    }
                }
                match &self.plan {
                    Some(plan) => {
                        let rng_seed: u64 = self.rng.random();
                        let strategy = Arc::new(PmraceStrategy::new(
                            plan.clone(),
                            self.cfg.campaign.threads,
                            Arc::clone(&self.skip_store),
                            self.cfg.tuning,
                            rng_seed,
                        ));
                        if record {
                            // The realized skips and the plan must be read
                            // off the concrete strategy *before* type
                            // erasure; the released-access order is only
                            // known after the campaign, so the shared log
                            // travels in the pending capture.
                            let skips = strategy
                                .initial_skips()
                                .iter()
                                .map(|&(s, n)| (site_label(Site::from_id(s)).to_owned(), n))
                                .collect();
                            let log = Arc::new(ScheduleLog::new(plan.off));
                            let pending = PendingCapture {
                                strategy: Some(StrategyCapture::Pmrace {
                                    plan: PlanCapture {
                                        off: plan.off,
                                        load_sites: labels_of(&plan.load_sites),
                                        store_sites: labels_of(&plan.store_sites),
                                        cas_sites: labels_of(&plan.cas_sites),
                                    },
                                    rng_seed,
                                    skips,
                                    events: Vec::new(),
                                    truncated: false,
                                }),
                                log: Some(Arc::clone(&log)),
                            };
                            let recording = RecordingStrategy::new(strategy, log);
                            (Some(Arc::new(recording)), tier, pending)
                        } else {
                            (Some(strategy), tier, PendingCapture::none())
                        }
                    }
                    None => (None, Tier::Execution, PendingCapture::none()),
                }
            }
        }
    }

    /// Finish a pending capture after the campaign ran: drain the schedule
    /// log (if any) into the strategy capture and wrap the campaign's
    /// execution parameters around it.
    fn finish_capture(&self, pending: PendingCapture) -> Option<ScheduleCapture> {
        if !self.cfg.record_schedules {
            return None;
        }
        let mut strategy = pending.strategy.unwrap_or(StrategyCapture::None);
        if let (
            StrategyCapture::Pmrace {
                events, truncated, ..
            },
            Some(log),
        ) = (&mut strategy, &pending.log)
        {
            let (recorded, was_truncated) = log.snapshot();
            *events = recorded
                .iter()
                .map(|e| EventCapture {
                    is_load: e.is_load,
                    site: site_label(e.site).to_owned(),
                    tid: e.tid,
                })
                .collect();
            *truncated = was_truncated;
        }
        Some(ScheduleCapture {
            strategy,
            threads: self.cfg.campaign.threads,
            tuning: self.cfg.tuning,
            eviction_interval_us: self.cfg.campaign.eviction_interval_us,
            eadr: self.cfg.campaign.eadr,
            deadline: self.cfg.campaign.deadline,
            extra_whitelist: self.cfg.campaign.extra_whitelist.clone(),
        })
    }

    /// Run one exploration step (one campaign).
    ///
    /// # Errors
    ///
    /// Propagates target-construction errors from the campaign.
    pub fn step(&mut self) -> Result<StepOutcome, RtError> {
        // Seed-tier switch when the current seed is exhausted: its
        // interleaving budget is spent (the priority queue rarely drains —
        // every campaign contributes fresh shared addresses — so the budget,
        // not queue emptiness, bounds the time spent per seed).
        let seed_exhausted = match self.cfg.strategy {
            StrategyKind::Pmrace if self.cfg.enable_interleaving_tier => {
                self.plans_on_seed >= self.cfg.interleavings_per_seed
            }
            _ => {
                self.campaigns > 0
                    && self.campaigns.is_multiple_of(
                        self.cfg.execs_per_interleaving * self.cfg.interleavings_per_seed,
                    )
            }
        };
        let mut tier = Tier::Execution;
        if seed_exhausted && self.cfg.enable_seed_tier {
            self.next_seed();
            tier = Tier::Seed;
        }

        let (strategy, strategy_tier, pending) = self.build_strategy();
        if tier == Tier::Execution {
            tier = strategy_tier;
        }
        self.execs_on_plan += 1;

        // The very first campaign runs without the checkpoint so the
        // target's *construction* path executes under the checkers once
        // (clevel's Fig. 7 inconsistencies live there).
        let checkpoint = if self.campaigns == 0 {
            None
        } else {
            self.checkpoint.as_ref()
        };
        let result = run_campaign(
            &self.spec,
            &self.seed,
            &self.cfg.campaign,
            strategy,
            checkpoint,
        )?;
        self.campaigns += 1;
        self.queue.merge(&result.shared);
        if telemetry::enabled() {
            // Worker-local depth; with several workers the last writer
            // wins, which is fine for a level gauge.
            telemetry::metrics::gauge_set(
                telemetry::Gauge::QueueDepth,
                self.queue.unexplored() as u64,
            );
        }
        let (new_alias, new_branch) = self.coverage.merge_from(&result.coverage);
        let sync_now = match &mut self.fleet {
            Some(link) => {
                link.execs_since_sync += 1;
                // Novelty goes out immediately (siblings should stop
                // chasing it); otherwise the shared map is only touched
                // once an epoch.
                new_alias + new_branch > 0 || link.execs_since_sync >= FRONTIER_EPOCH
            }
            None => false,
        };
        if sync_now {
            self.sync_frontier();
        }
        if new_alias + new_branch > 0 {
            self.stalled_seeds = 0;
            if !self.corpus.contains(&self.seed) {
                self.corpus.push(self.seed.clone());
                if self.corpus.len() > 16 {
                    self.corpus.remove(0);
                }
            }
            // Frontier-advancing seeds are fleet property: publish so the
            // sibling workers can evolve them too.
            if let Some(link) = &self.fleet {
                link.pool.publish(link.worker, &self.seed);
            }
        } else if tier == Tier::Seed {
            self.stalled_seeds += 1;
        }
        // Expire the plan early when it stopped contributing.
        if new_alias == 0 && self.execs_on_plan >= 2 {
            self.execs_on_plan = self.cfg.execs_per_interleaving;
        }
        let capture = self.finish_capture(pending);
        Ok(StepOutcome {
            result,
            seed: self.seed.clone(),
            tier,
            new_alias,
            new_branch,
            capture,
        })
    }
}

/// What `build_strategy` knows before the campaign runs; completed into a
/// [`ScheduleCapture`] afterwards (the event log fills during execution).
struct PendingCapture {
    strategy: Option<StrategyCapture>,
    log: Option<Arc<ScheduleLog>>,
}

impl PendingCapture {
    fn none() -> Self {
        PendingCapture {
            strategy: None,
            log: None,
        }
    }

    fn plain(strategy: StrategyCapture) -> Self {
        PendingCapture {
            strategy: Some(strategy),
            log: None,
        }
    }
}

fn labels_of(sites: &std::collections::HashSet<u32>) -> Vec<String> {
    let mut labels: Vec<String> = sites
        .iter()
        .map(|&s| site_label(Site::from_id(s)).to_owned())
        .collect();
    labels.sort_unstable();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_targets::target_spec;

    fn fast_cfg(strategy: StrategyKind) -> ExploreConfig {
        ExploreConfig {
            strategy,
            campaign: CampaignConfig {
                threads: 2,
                deadline: Duration::from_millis(250),
                ..CampaignConfig::default()
            },
            execs_per_interleaving: 2,
            interleavings_per_seed: 2,
            use_checkpoint: true,
            tuning: SyncTuning {
                reader_poll: Duration::from_micros(50),
                writer_wait: Duration::from_micros(500),
                all_block_iters: 10,
                disable_iters: 100,
                skip_jitter: 2,
            },
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn explorer_accumulates_coverage_over_steps() {
        let spec = target_spec("CCEH").unwrap();
        let mut ex = Explorer::new(spec, fast_cfg(StrategyKind::Pmrace), 11).unwrap();
        let mut saw_interleaving = false;
        for _ in 0..6 {
            let out = ex.step().unwrap();
            if out.tier == Tier::Interleaving {
                saw_interleaving = true;
            }
        }
        let (_, branches) = ex.coverage_counts();
        assert!(branches > 0);
        assert_eq!(ex.campaigns(), 6);
        assert!(
            saw_interleaving,
            "pmrace strategy must reach the interleaving tier"
        );
    }

    #[test]
    fn delay_strategy_never_uses_interleaving_tier() {
        let spec = target_spec("clevel").unwrap();
        let mut ex =
            Explorer::new(spec, fast_cfg(StrategyKind::Delay { max_delay_us: 50 }), 12).unwrap();
        for _ in 0..4 {
            let out = ex.step().unwrap();
            assert_ne!(out.tier, Tier::Interleaving);
        }
    }

    #[test]
    fn recording_attaches_schedule_captures() {
        let spec = target_spec("P-CLHT").unwrap();
        let mut cfg = fast_cfg(StrategyKind::Pmrace);
        cfg.record_schedules = true;
        let mut ex = Explorer::new(spec, cfg, 21).unwrap();
        let mut saw_pmrace_capture = false;
        for _ in 0..6 {
            let out = ex.step().unwrap();
            let cap = out.capture.expect("recording on: every step captures");
            assert_eq!(cap.threads, 2);
            if let StrategyCapture::Pmrace { plan, skips, .. } = &cap.strategy {
                assert!(
                    !plan.load_sites.is_empty() || !plan.cas_sites.is_empty(),
                    "a plan needs at least one load or CAS sync point"
                );
                assert_eq!(skips.len(), plan.load_sites.len());
                saw_pmrace_capture = true;
            }
        }
        assert!(
            saw_pmrace_capture,
            "pmrace steps with a plan must capture it"
        );
    }

    #[test]
    fn seed_tier_can_be_disabled() {
        let spec = target_spec("clevel").unwrap();
        let mut cfg = fast_cfg(StrategyKind::None);
        cfg.enable_seed_tier = false;
        let mut ex = Explorer::new(spec, cfg, 13).unwrap();
        let first_seed = ex.seed.clone();
        for _ in 0..5 {
            let _ = ex.step().unwrap();
        }
        assert_eq!(ex.seed, first_seed, "w/o SE must keep the initial seed");
    }
}

//! The top-level fuzzer: a fleet of exploration workers over a shared
//! wait-free coverage frontier, a sharded cross-worker seed pool, and a
//! signature-striped bug ledger (see [`crate::fleet`]). Workers exchange
//! discoveries but share no locks on the campaign hot path: coverage
//! merges are atomic, duplicate findings are absorbed by striped filters,
//! and timelines accumulate in per-worker buffers merged at shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pmrace_api::TargetSpec;
use pmrace_runtime::coverage::CoverageMap;
use pmrace_runtime::RtError;
use pmrace_sched::SyncTuning;
use pmrace_telemetry as telemetry;

use crate::bugs::{DetectionStats, IngestDelta, IngestPlan, UniqueBug};
use crate::campaign::{CampaignConfig, StrategyKind};
use crate::corpus::CorpusDir;
use crate::explore::{ExploreConfig, Explorer, StepOutcome};
use crate::fleet::{SharedCorpus, SharedLedger};
use crate::pipeline::{HandoffQueue, ValidationJob};

/// Callback the fuzzer fires when a campaign contributes *new* unique
/// findings, with the step's full outcome (seed, captured schedule) and the
/// ledger delta. This is how the `pmrace-replay` crate auto-records repro
/// artifacts without the core depending on it.
#[derive(Clone)]
pub struct RecordSink(Arc<RecordFn>);

type RecordFn = dyn Fn(&StepOutcome, &IngestDelta) + Send + Sync;

impl RecordSink {
    /// Wrap a callback.
    pub fn new(f: impl Fn(&StepOutcome, &IngestDelta) + Send + Sync + 'static) -> Self {
        RecordSink(Arc::new(f))
    }

    /// Invoke the callback.
    pub fn call(&self, out: &StepOutcome, delta: &IngestDelta) {
        (self.0)(out, delta);
    }
}

impl std::fmt::Debug for RecordSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecordSink(..)")
    }
}

/// Fuzzer configuration (defaults follow §6.1 scaled to simulator time).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Target system name (Table 1).
    pub target: String,
    /// Interleaving-exploration scheme.
    pub strategy: StrategyKind,
    /// Driver threads per campaign (paper: 4).
    pub threads: usize,
    /// Operations each driver thread issues per campaign.
    pub ops_per_thread: usize,
    /// Stop after this many campaigns.
    pub max_campaigns: usize,
    /// Stop after this much wall-clock time.
    pub wall_budget: Duration,
    /// Concurrent fuzzing worker threads (paper: 13).
    pub workers: usize,
    /// Use in-memory pool checkpoints (§5).
    pub use_checkpoint: bool,
    /// Enable the interleaving tier (disable for *w/o IE*).
    pub enable_interleaving_tier: bool,
    /// Enable the seed tier (disable for *w/o SE*).
    pub enable_seed_tier: bool,
    /// Per-campaign deadline (hang detection).
    pub campaign_deadline: Duration,
    /// Scheduler timing knobs.
    pub tuning: SyncTuning,
    /// Run under the eADR failure model (§6.6). Disables checkpoints.
    pub eadr: bool,
    /// Persist coverage-improving seeds here and reload them on the next
    /// run (AFL-style queue directory).
    pub corpus_dir: Option<std::path::PathBuf>,
    /// Extra whitelist rules (§4.4) beyond the default PMDK/checksum ones.
    pub extra_whitelist: Vec<String>,
    /// Cache-eviction agitator interval in µs (0 = off); see
    /// [`CampaignConfig::eviction_interval_us`].
    pub eviction_interval_us: u64,
    /// RNG seed for deterministic runs.
    pub rng_seed: u64,
    /// Memoize post-failure validation verdicts across campaigns (see
    /// [`crate::validate::set_validation_cache`]). On by default; verdicts
    /// are pure functions of their cache key, so this changes recovery
    /// volume, never the reported bug set.
    pub validation_cache: bool,
    /// Fired with the step outcome and ledger delta whenever a campaign
    /// finds something new; turning it on also enables schedule capture in
    /// the explorers (see
    /// [`ExploreConfig::record_schedules`](crate::explore::ExploreConfig)).
    pub record: Option<RecordSink>,
    /// Turn the telemetry registry on and write `telemetry.json` +
    /// `trace.jsonl` into this directory when the run finishes (see
    /// `docs/OBSERVABILITY.md` for the schema).
    pub telemetry_dir: Option<std::path::PathBuf>,
    /// Print a human-readable progress line to stderr at this interval
    /// (also turns the telemetry registry on).
    pub progress_interval: Option<Duration>,
    /// Run the validation pipeline even with a single worker. Multi-worker
    /// fleets always pipeline (exec workers hand completed campaigns to a
    /// validator pool instead of running recovery sessions inline); a
    /// single worker defaults to the inline path, whose campaign-by-
    /// campaign ordering is the determinism baseline. Forcing the pipeline
    /// at one worker keeps the bug set byte-identical — one validator
    /// draining a FIFO queue applies verdicts in exactly submission order —
    /// and exists so tests can prove that equivalence.
    pub force_pipeline: bool,
}

impl FuzzConfig {
    /// Sensible fast defaults for `target`.
    #[must_use]
    pub fn new(target: &str) -> Self {
        FuzzConfig {
            target: target.to_owned(),
            strategy: StrategyKind::Pmrace,
            threads: 4,
            ops_per_thread: 24,
            max_campaigns: 60,
            wall_budget: Duration::from_secs(30),
            workers: 1,
            use_checkpoint: true,
            enable_interleaving_tier: true,
            enable_seed_tier: true,
            campaign_deadline: Duration::from_millis(600),
            tuning: SyncTuning::default(),
            eadr: false,
            corpus_dir: None,
            extra_whitelist: Vec::new(),
            eviction_interval_us: 0,
            rng_seed: 0xC0FFEE,
            validation_cache: true,
            record: None,
            telemetry_dir: None,
            progress_interval: None,
            force_pipeline: false,
        }
    }
}

/// One sample of the coverage timeline (Fig. 9 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageSample {
    /// Fuzzing time of the sample.
    pub at: Duration,
    /// Cumulative PM alias pairs.
    pub alias_pairs: usize,
    /// Cumulative branches.
    pub branches: usize,
}

/// Final report of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Target name.
    pub target: &'static str,
    /// Detection statistics (Tables 3/6 raw material).
    pub stats: DetectionStats,
    /// Unique bugs found (Table 2/5 raw material).
    pub bugs: Vec<UniqueBug>,
    /// Candidate pairs that never grew side effects ("Other" pool).
    pub candidate_only: Vec<(String, String)>,
    /// Bug-verdict `(write, read, effect)` triples for Table 2 mapping.
    pub bug_triples: Vec<(String, String, String)>,
    /// Campaigns executed.
    pub campaigns: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Campaigns per second (Fig. 10 metric).
    pub execs_per_sec: f64,
    /// Total instrumented PM events across all campaigns.
    pub pm_accesses: u64,
    /// Instrumented PM events per second (the hot-path throughput meter:
    /// execs/sec conflates campaign setup with instrumentation speed, this
    /// isolates the latter).
    pub accesses_per_sec: f64,
    /// Coverage over time (Fig. 9 series).
    pub coverage_timeline: Vec<CoverageSample>,
    /// Times at which new unique inter-thread inconsistencies were found
    /// (Fig. 8 series).
    pub inter_times: Vec<Duration>,
    /// Final global alias-pair count.
    pub alias_pairs: usize,
    /// Final global branch count.
    pub branches: usize,
    /// Coverage-improving seeds that failed to persist to the corpus
    /// directory (every failure is counted; a silently shrinking corpus
    /// would corrupt later runs' starting points).
    pub corpus_save_errors: usize,
    /// First corpus-save failure message, when any occurred.
    pub corpus_error: Option<String>,
}

/// PM-aware coverage-guided fuzzer (the `pmrace` entry point).
#[derive(Debug)]
pub struct Fuzzer {
    cfg: FuzzConfig,
    spec: TargetSpec,
}

impl Fuzzer {
    /// Build a fuzzer for the configured target, resolving `cfg.target`
    /// through the process-global registry
    /// ([`pmrace_api::resolve_target`]). Built-in targets must have been
    /// registered first (`pmrace_targets::register_builtins()`); plugin
    /// targets resolve the same way after
    /// [`pmrace_api::register_target`].
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownTarget`] — whose message lists the names
    /// that *are* registered — if the target name does not resolve.
    pub fn new(cfg: FuzzConfig) -> Result<Self, RtError> {
        let spec = pmrace_api::resolve_target_or_err(&cfg.target)?;
        Ok(Fuzzer { cfg, spec })
    }

    /// Build a fuzzer directly from a spec, bypassing the registry —
    /// for harnesses that construct [`TargetSpec`]s programmatically.
    /// `cfg.target` is ignored in favor of `spec.name`.
    #[must_use]
    pub fn with_spec(mut cfg: FuzzConfig, spec: TargetSpec) -> Self {
        cfg.target = spec.name.to_owned();
        Fuzzer { cfg, spec }
    }

    fn explore_config(&self) -> ExploreConfig {
        ExploreConfig {
            strategy: self.cfg.strategy,
            enable_interleaving_tier: self.cfg.enable_interleaving_tier,
            enable_seed_tier: self.cfg.enable_seed_tier,
            execs_per_interleaving: 2,
            interleavings_per_seed: 6,
            campaign: CampaignConfig {
                threads: self.cfg.threads,
                deadline: self.cfg.campaign_deadline,
                eadr: self.cfg.eadr,
                extra_whitelist: self.cfg.extra_whitelist.clone(),
                eviction_interval_us: self.cfg.eviction_interval_us,
                ..CampaignConfig::default()
            },
            use_checkpoint: self.cfg.use_checkpoint && !self.cfg.eadr,
            tuning: self.cfg.tuning,
            ops_per_thread: self.cfg.ops_per_thread,
            initial_corpus: Vec::new(),
            record_schedules: self.cfg.record.is_some(),
        }
    }

    /// Run to budget exhaustion and report.
    ///
    /// # Errors
    ///
    /// Propagates target-construction failures from workers.
    pub fn run(&self) -> Result<FuzzReport, RtError> {
        let start = Instant::now();
        if self.cfg.telemetry_dir.is_some() || self.cfg.progress_interval.is_some() {
            telemetry::set_enabled(true);
        }
        crate::validate::set_validation_cache(self.cfg.validation_cache);
        telemetry::metrics::gauge_set(
            telemetry::Gauge::FuzzWorkers,
            self.cfg.workers.max(1) as u64,
        );
        let corpus_dir = match &self.cfg.corpus_dir {
            Some(dir) => Some(
                CorpusDir::open(dir)
                    .map_err(|e| RtError::Io(format!("corpus dir {}: {e}", dir.display())))?,
            ),
            None => None,
        };
        let loaded_corpus = match &corpus_dir {
            Some(c) => c
                .load_all()
                .map_err(|e| RtError::Io(format!("corpus load: {e}")))?,
            None => Vec::new(),
        };
        let worker_count = self.cfg.workers.max(1);
        // Fleet state: no campaign-hot-path locks. The frontier is merged
        // into atomically by the explorers themselves, the seed pool is
        // striped per worker, and the ledger front absorbs all-duplicate
        // campaigns under signature-stripe locks.
        let ledger = SharedLedger::new(self.spec);
        let frontier = Arc::new(CoverageMap::new());
        let pool = Arc::new(SharedCorpus::new(worker_count));
        let campaigns = AtomicUsize::new(0);
        let pm_accesses = std::sync::atomic::AtomicU64::new(0);
        let first_err = Mutex::new(None::<RtError>);
        let corpus_save_errors = AtomicUsize::new(0);
        let corpus_error = Mutex::new(None::<String>);
        let record = self.cfg.record.clone();
        let reporter_stop = std::sync::atomic::AtomicBool::new(false);
        // Pipelined execution (off at one worker unless forced): exec
        // workers run phase 1 of ingestion (striped signature dedup, so
        // first-seen ordering is fixed at campaign completion) and hand the
        // plan + outcome to a validator pool over this bounded queue;
        // validators run the recovery sessions and apply verdicts. The
        // queue is small on purpose — when validators fall behind, exec
        // workers validate inline rather than queueing unboundedly.
        let pipeline: Option<Arc<HandoffQueue<ValidationJob>>> = (worker_count > 1
            || self.cfg.force_pipeline)
            .then(|| Arc::new(HandoffQueue::new(worker_count * 2)));
        // Single-worker determinism mode: hand jobs across threads but wait
        // for each before the next campaign (see `HandoffQueue::wait_idle`).
        let sync_handoff = worker_count == 1;

        // Per-worker timeline buffers, merged (and time-sorted) after the
        // scope joins — the workers never contend on a timeline lock.
        let mut timeline: Vec<CoverageSample> = Vec::new();
        std::thread::scope(|scope| {
            // The progress reporter lives alongside the workers and is told
            // to stop only after every worker has been joined, so its last
            // line reflects the final counter values.
            let reporter = self.cfg.progress_interval.map(|every| {
                let stop = &reporter_stop;
                let campaigns = &campaigns;
                scope.spawn(move || progress_loop(start, every, stop, campaigns))
            });
            // Validator pool: one validator absorbs the validation load of
            // about four exec workers (validation is a few percent of
            // campaign CPU); exactly one validator when forced at a single
            // worker, so verdicts land in FIFO submission order and the
            // run stays byte-identical to the inline path.
            let mut validators = Vec::new();
            if let Some(queue) = &pipeline {
                for _ in 0..worker_count.div_ceil(4) {
                    let queue = Arc::clone(queue);
                    let ledger = &ledger;
                    let record = &record;
                    validators.push(scope.spawn(move || {
                        while let Some(job) = queue.pop() {
                            telemetry::metrics::gauge_set(
                                telemetry::Gauge::ValidateQueueDepth,
                                queue.depth() as u64,
                            );
                            telemetry::metrics::record_duration(
                                telemetry::Histogram::PipelineQueueNs,
                                job.enqueued_at.elapsed(),
                            );
                            let ValidationJob { plan, out, .. } = job;
                            validate_and_finish(ledger, plan, &out, record.as_ref());
                            queue.job_done();
                        }
                    }));
                }
            }
            let mut workers = Vec::new();
            for w in 0..worker_count {
                let ledger = &ledger;
                let frontier = Arc::clone(&frontier);
                let pool = Arc::clone(&pool);
                let campaigns = &campaigns;
                let pm_accesses = &pm_accesses;
                let first_err = &first_err;
                let corpus_save_errors = &corpus_save_errors;
                let corpus_error = &corpus_error;
                let record = &record;
                let pipeline = &pipeline;
                let mut cfg = self.explore_config();
                cfg.initial_corpus = loaded_corpus.clone();
                let corpus_dir = &corpus_dir;
                let spec = self.spec;
                let rng_seed = self.cfg.rng_seed ^ (w as u64).wrapping_mul(0x9E37_79B9);
                let max_campaigns = self.cfg.max_campaigns;
                let wall_budget = self.cfg.wall_budget;
                workers.push(scope.spawn(move || {
                    let mut local_timeline = Vec::<CoverageSample>::new();
                    let frontier_view = Arc::clone(&frontier);
                    let mut explorer =
                        match Explorer::with_fleet(spec, cfg, rng_seed, frontier, pool, w) {
                            Ok(e) => e,
                            Err(e) => {
                                *first_err.lock() = Some(e);
                                return local_timeline;
                            }
                        };
                    loop {
                        if campaigns.load(Ordering::Relaxed) >= max_campaigns
                            || start.elapsed() >= wall_budget
                        {
                            // Flush the last (possibly partial) frontier
                            // epoch so the fleet totals end complete.
                            explorer.sync_frontier();
                            return local_timeline;
                        }
                        match explorer.step() {
                            Ok(out) => {
                                campaigns.fetch_add(1, Ordering::Relaxed);
                                pm_accesses.fetch_add(out.result.pm_accesses, Ordering::Relaxed);
                                telemetry::metrics::worker_exec(w);
                                let elapsed = start.elapsed();
                                // The explorer publishes novelty to the
                                // shared frontier immediately and batches
                                // no-news merges on epoch boundaries; the
                                // frontier counters are a racy-but-monotone
                                // fleet-wide snapshot for the sample and
                                // gauges.
                                let (alias, branches) = frontier_view.counts();
                                telemetry::metrics::gauge_set(
                                    telemetry::Gauge::CovAliasPairs,
                                    alias as u64,
                                );
                                telemetry::metrics::gauge_set(
                                    telemetry::Gauge::CovBranches,
                                    branches as u64,
                                );
                                if out.new_alias + out.new_branch > 0 {
                                    telemetry::add(telemetry::Counter::FleetFrontierHits, 1);
                                    // Corpus persistence stays on the exec
                                    // thread: save failures must be
                                    // attributed before the outcome moves
                                    // into a validation job.
                                    if let Some(corpus) = &corpus_dir {
                                        if let Err(e) = corpus.save(&out.seed) {
                                            corpus_save_errors.fetch_add(1, Ordering::Relaxed);
                                            telemetry::add(telemetry::Counter::CorpusSaveErrors, 1);
                                            let mut slot = corpus_error.lock();
                                            if slot.is_none() {
                                                *slot = Some(e.to_string());
                                            }
                                        } else {
                                            telemetry::add(telemetry::Counter::CorpusSaved, 1);
                                        }
                                    }
                                }
                                local_timeline.push(CoverageSample {
                                    at: elapsed,
                                    alias_pairs: alias,
                                    branches,
                                });
                                // Three-phase ingest: dedup under signature
                                // stripes on the exec thread (all-duplicate
                                // campaigns never touch the global ledger
                                // lock), then recovery executions and
                                // verdict application — the expensive part —
                                // handed to the validator pool; inline only
                                // when the pipeline is down or its queue is
                                // full (backpressure).
                                if let Some(plan) = ledger.begin_ingest(&out.result, elapsed) {
                                    match pipeline {
                                        Some(queue) => {
                                            let job = ValidationJob {
                                                plan,
                                                out,
                                                enqueued_at: Instant::now(),
                                            };
                                            match queue.push(job) {
                                                Ok(()) => {
                                                    telemetry::add(
                                                        telemetry::Counter::PipelineDeferred,
                                                        1,
                                                    );
                                                    telemetry::metrics::gauge_set(
                                                        telemetry::Gauge::ValidateQueueDepth,
                                                        queue.depth() as u64,
                                                    );
                                                    if sync_handoff {
                                                        // Forced pipeline at
                                                        // one worker: don't
                                                        // overlap validation
                                                        // with the next
                                                        // campaign, so the
                                                        // run stays byte-
                                                        // identical to the
                                                        // inline path.
                                                        queue.wait_idle();
                                                    }
                                                }
                                                Err(job) => {
                                                    telemetry::add(
                                                        telemetry::Counter::PipelineBackpressure,
                                                        1,
                                                    );
                                                    telemetry::add(
                                                        telemetry::Counter::PipelineInline,
                                                        1,
                                                    );
                                                    validate_and_finish(
                                                        ledger,
                                                        job.plan,
                                                        &job.out,
                                                        record.as_ref(),
                                                    );
                                                }
                                            }
                                        }
                                        None => {
                                            telemetry::add(telemetry::Counter::PipelineInline, 1);
                                            validate_and_finish(
                                                ledger,
                                                plan,
                                                &out,
                                                record.as_ref(),
                                            );
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                *first_err.lock() = Some(e);
                                explorer.sync_frontier();
                                return local_timeline;
                            }
                        }
                    }
                }));
            }
            for h in workers {
                if let Ok(local) = h.join() {
                    timeline.extend(local);
                }
            }
            // Exec workers are done: close the hand-off queue so the
            // validator pool drains every pending job and exits, *then*
            // tear down the ledger — the drain guarantees no in-flight
            // verdict is lost at budget exhaustion.
            if let Some(queue) = &pipeline {
                queue.close();
            }
            for h in validators {
                let _ = h.join();
            }
            reporter_stop.store(true, Ordering::Release);
            if let Some(h) = reporter {
                let _ = h.join();
            }
        });
        timeline.sort_by_key(|s| s.at);

        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
        let elapsed = start.elapsed();
        let emit_span = telemetry::span(telemetry::Phase::ReportEmit);
        let ledger = ledger.into_ledger();
        let total = campaigns.load(Ordering::Relaxed);
        let total_accesses = pm_accesses.load(Ordering::Relaxed);
        let report = FuzzReport {
            target: self.spec.name,
            stats: ledger.stats(),
            bugs: ledger.bugs().into_iter().cloned().collect(),
            candidate_only: ledger.candidate_only_pairs(),
            bug_triples: ledger.bug_triples().to_vec(),
            campaigns: total,
            elapsed,
            execs_per_sec: total as f64 / elapsed.as_secs_f64().max(1e-9),
            pm_accesses: total_accesses,
            accesses_per_sec: total_accesses as f64 / elapsed.as_secs_f64().max(1e-9),
            coverage_timeline: timeline,
            inter_times: ledger.inter_detection_times().to_vec(),
            alias_pairs: frontier.alias_pairs(),
            branches: frontier.branches(),
            corpus_save_errors: corpus_save_errors.load(Ordering::Relaxed),
            corpus_error: corpus_error.into_inner(),
        };
        // Close the span before snapshotting so the report_emit phase shows
        // up in its own telemetry.json.
        drop(emit_span);
        if let Some(dir) = &self.cfg.telemetry_dir {
            let resolve = |id: u32| {
                let site = pmrace_runtime::Site::from_id(id);
                let label = pmrace_runtime::site_label(site);
                (label != "<unknown site>")
                    .then(|| format!("{label} ({})", pmrace_runtime::site_location(site)))
            };
            telemetry::snapshot::write_snapshot(dir, &resolve)
                .map_err(|e| RtError::Io(format!("telemetry dir {}: {e}", dir.display())))?;
            telemetry::snapshot::write_trace_jsonl(dir)
                .map_err(|e| RtError::Io(format!("telemetry dir {}: {e}", dir.display())))?;
        }
        Ok(report)
    }
}

/// Phases 2+3 of campaign ingestion: run the recovery-session validations
/// the plan calls for (no locks held), fold verdicts into the ledger, and
/// fire the record sink on fresh findings. Shared by the validator pool
/// and the inline fallback paths, so both produce identical ledger state
/// for a given submission order.
fn validate_and_finish(
    ledger: &SharedLedger,
    mut plan: IngestPlan,
    out: &StepOutcome,
    record: Option<&RecordSink>,
) {
    plan.validate(&out.result);
    let delta = ledger.finish_ingest(plan, &out.result, Some(&out.seed));
    if !delta.is_empty() {
        if let Some(sink) = record {
            sink.call(out, &delta);
        }
    }
}

/// Periodic human-readable progress line (one per
/// [`FuzzConfig::progress_interval`] tick), rendered from the telemetry
/// registry onto stderr. Multi-worker runs get a second line with the
/// per-worker execs/s split so a stalled or starved worker is visible.
fn progress_loop(
    start: Instant,
    every: Duration,
    stop: &std::sync::atomic::AtomicBool,
    campaigns: &AtomicUsize,
) {
    use telemetry::metrics::{counter, gauge};
    use telemetry::{Counter as C, Gauge as G};
    let every = every.max(Duration::from_millis(10));
    let poll = Duration::from_millis(10).min(every);
    let mut next = start + every;
    loop {
        while Instant::now() < next {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(poll);
        }
        next += every;
        let elapsed = start.elapsed().as_secs_f64();
        let done = campaigns.load(Ordering::Relaxed);
        eprintln!(
            "[pmrace] {elapsed:7.1}s  campaigns {done} ({:.1}/s)  cov {} alias / {} branches  \
             plans {}/{} fired  inconsistencies {}  validations {} ({} bugs)",
            done as f64 / elapsed.max(1e-9),
            gauge(G::CovAliasPairs),
            gauge(G::CovBranches),
            counter(C::PlanAlternationsFired),
            counter(C::PlanPlanned),
            counter(C::CheckerInconsistencies),
            counter(C::ValidateRuns),
            counter(C::ValidateBugs),
        );
        let per_worker = telemetry::metrics::worker_execs();
        if per_worker.len() > 1 {
            use std::fmt::Write as _;
            let mut parts = String::new();
            for (w, execs) in per_worker {
                let _ = write!(parts, " w{w} {:.1}/s", execs as f64 / elapsed.max(1e-9));
            }
            eprintln!(
                "[pmrace] per-worker execs/s:{parts}  steals {}  shared seeds {}",
                counter(C::FleetSteals),
                counter(C::FleetSharedSeeds),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register() {
        pmrace_targets::register_builtins();
    }

    #[test]
    fn unknown_target_is_rejected_with_a_listing_error() {
        register();
        let err = Fuzzer::new(FuzzConfig::new("nope")).unwrap_err();
        let RtError::UnknownTarget(msg) = &err else {
            panic!("expected UnknownTarget, got {err:?}");
        };
        assert!(msg.contains("\"nope\""), "{msg}");
        assert!(
            msg.contains("P-CLHT"),
            "error lists registered names: {msg}"
        );
    }

    #[test]
    fn with_spec_bypasses_the_registry() {
        register();
        let spec = pmrace_targets::target_spec("clevel").unwrap();
        let fuzzer = Fuzzer::with_spec(FuzzConfig::new("ignored"), spec);
        assert_eq!(fuzzer.cfg.target, "clevel");
        assert_eq!(fuzzer.spec.name, "clevel");
    }

    #[test]
    fn short_run_produces_a_report() {
        register();
        let mut cfg = FuzzConfig::new("clevel");
        cfg.max_campaigns = 4;
        cfg.wall_budget = Duration::from_secs(20);
        cfg.campaign_deadline = Duration::from_millis(200);
        cfg.threads = 2;
        let report = Fuzzer::new(cfg).unwrap().run().unwrap();
        assert_eq!(report.target, "clevel");
        assert!(report.campaigns >= 1);
        assert!(report.branches > 0);
        assert_eq!(report.coverage_timeline.len(), report.campaigns);
        assert!(report.execs_per_sec > 0.0);
        assert!(report.pm_accesses > 0);
        assert!(report.accesses_per_sec > 0.0);
    }

    #[test]
    fn record_sink_fires_with_captures_on_new_findings() {
        register();
        let mut cfg = FuzzConfig::new("P-CLHT");
        cfg.max_campaigns = 4;
        cfg.workers = 1;
        cfg.threads = 2;
        cfg.wall_budget = Duration::from_secs(20);
        cfg.campaign_deadline = Duration::from_millis(300);
        let fired = Arc::new(AtomicUsize::new(0));
        let captured = Arc::new(AtomicUsize::new(0));
        let (f, c) = (Arc::clone(&fired), Arc::clone(&captured));
        cfg.record = Some(RecordSink::new(move |out, delta| {
            assert!(!delta.is_empty(), "sink must only fire on new findings");
            f.fetch_add(1, Ordering::Relaxed);
            if out.capture.is_some() {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }));
        let report = Fuzzer::new(cfg).unwrap().run().unwrap();
        assert!(report.campaigns >= 1);
        let fired = fired.load(Ordering::Relaxed);
        assert!(fired >= 1, "P-CLHT campaigns surface new candidates");
        assert_eq!(
            fired,
            captured.load(Ordering::Relaxed),
            "record mode must attach a schedule capture to every outcome"
        );
    }

    #[test]
    fn corpus_open_failure_carries_the_io_cause() {
        register();
        let file = std::env::temp_dir().join(format!("pmrace-not-a-dir-{}", std::process::id()));
        std::fs::write(&file, "occupied").unwrap();
        let mut cfg = FuzzConfig::new("clevel");
        cfg.corpus_dir = Some(file.clone());
        let err = Fuzzer::new(cfg).unwrap().run().unwrap_err();
        match err {
            RtError::Io(msg) => assert!(msg.contains("corpus dir"), "{msg}"),
            other => panic!("expected RtError::Io, got {other:?}"),
        }
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn corpus_save_failures_surface_in_the_report() {
        register();
        let mut cfg = FuzzConfig::new("clevel");
        cfg.max_campaigns = 2;
        cfg.workers = 1;
        cfg.threads = 2;
        cfg.wall_budget = Duration::from_secs(20);
        cfg.campaign_deadline = Duration::from_millis(200);
        // /proc exists (so the corpus opens and lists cleanly) but rejects
        // file creation: every attempted save must fail and be counted
        // instead of silently dropped.
        cfg.corpus_dir = Some(std::path::PathBuf::from("/proc"));
        let report = Fuzzer::new(cfg).unwrap().run().unwrap();
        assert!(report.corpus_save_errors >= 1, "{report:?}");
        assert!(report.corpus_error.is_some());
    }

    #[test]
    fn forced_pipeline_is_byte_identical_to_inline_at_one_worker() {
        register();
        // Single-threaded campaigns are fully deterministic (no natural
        // races to discover), so any divergence between the two runs can
        // only come from the validation pipeline itself. 300 ops crosses
        // P-CLHT's resize threshold, which mints a real validated bug —
        // the comparison covers Bug and ValidatedFp verdicts, not just
        // empty ledgers.
        let run = |force_pipeline: bool| {
            let mut cfg = FuzzConfig::new("P-CLHT");
            cfg.max_campaigns = 8;
            cfg.workers = 1;
            cfg.threads = 1;
            cfg.ops_per_thread = 300;
            cfg.wall_budget = Duration::from_secs(60);
            cfg.campaign_deadline = Duration::from_secs(2);
            cfg.rng_seed = 0xD15C;
            cfg.force_pipeline = force_pipeline;
            Fuzzer::new(cfg).unwrap().run().unwrap()
        };
        let inline = run(false);
        let piped = run(true);
        // One worker + one validator draining a FIFO queue must reproduce
        // the inline path exactly: same campaigns, same coverage, same
        // verdicts in the same order.
        assert_eq!(inline.campaigns, piped.campaigns);
        assert_eq!(inline.bug_triples, piped.bug_triples, "bug triples drifted");
        assert_eq!(inline.stats, piped.stats, "detection stats drifted");
        assert_eq!(inline.alias_pairs, piped.alias_pairs);
        assert_eq!(inline.branches, piped.branches);
        assert!(
            !piped.bug_triples.is_empty(),
            "the run must mint a validated bug for the comparison to bite"
        );
    }

    #[test]
    fn concurrent_workers_share_the_ledger() {
        register();
        let mut cfg = FuzzConfig::new("clevel");
        cfg.max_campaigns = 6;
        cfg.workers = 3;
        cfg.threads = 2;
        cfg.wall_budget = Duration::from_secs(30);
        cfg.campaign_deadline = Duration::from_millis(200);
        let report = Fuzzer::new(cfg).unwrap().run().unwrap();
        assert!(report.campaigns >= 3, "campaigns {}", report.campaigns);
        assert!(report.stats.campaigns >= 3);
    }
}

//! Captured nondeterminism frontier of one campaign.
//!
//! A campaign's outcome depends on the seed (deterministic, text-serialized)
//! plus a small set of scheduling decisions: which interleaving plan was
//! forced, which RNG seeds the strategies drew, which skip counts the sync
//! points started with, and — for the PMRace scheduler — the order in which
//! gated accesses to the watched granule were actually released. This module
//! defines the in-process snapshot of all of that: [`ScheduleCapture`].
//!
//! Everything is label-based, not id-based: [`Site`](pmrace_runtime::Site)
//! ids are dense, process-local, and registration-order dependent, while
//! labels are stable across processes and builds. The `pmrace-replay` crate
//! serializes captures into versioned repro artifacts and re-enforces them
//! with [`ReplayStrategy`](pmrace_sched::ReplayStrategy).

use std::time::Duration;

use pmrace_sched::SyncTuning;

/// The interleaving plan that was forced, by site label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCapture {
    /// Target granule byte offset.
    pub off: u64,
    /// Labels of the gated load (sync-point) sites, sorted.
    pub load_sites: Vec<String>,
    /// Labels of the signalling store sites, sorted.
    pub store_sites: Vec<String>,
    /// Labels of the CAS sites whose failed attempts are stalled as retry
    /// decision points, sorted.
    pub cas_sites: Vec<String>,
}

/// One released access to the watched granule (label-based
/// [`AccessEvent`](pmrace_sched::AccessEvent)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventCapture {
    /// `true` for a load, `false` for a store.
    pub is_load: bool,
    /// Site label of the access.
    pub site: String,
    /// Executing driver thread.
    pub tid: u32,
}

/// The scheduling decisions of one campaign, per strategy kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyCapture {
    /// No strategy was active (plain execution).
    None,
    /// Random delay injection with the drawn RNG seed.
    Delay {
        /// Upper bound of the injected delay, in microseconds.
        max_delay_us: u64,
        /// The seed the delay RNG was constructed with.
        rng_seed: u64,
    },
    /// Round-robin serialization with its drawn starting point.
    Systematic {
        /// Accesses per turn.
        quantum: u32,
        /// The drawn thread the rotation starts from.
        start: u32,
    },
    /// The Fig. 6 conditional-wait scheduler, fully pinned.
    Pmrace {
        /// The forced interleaving plan.
        plan: PlanCapture,
        /// The seed the strategy RNG was constructed with.
        rng_seed: u64,
        /// Realized initial skip count per load-site label (learned
        /// pitfall-3 base + drawn jitter) — pinning these reproduces *which*
        /// dynamic occurrence of each sync point blocked.
        skips: Vec<(String, u32)>,
        /// Released access order on the watched granule.
        events: Vec<EventCapture>,
        /// Whether the event log overflowed
        /// [`MAX_RECORDED_EVENTS`](pmrace_sched::MAX_RECORDED_EVENTS).
        truncated: bool,
    },
}

/// Everything needed to re-run one campaign's schedule deterministically
/// (pair it with the seed text from the same
/// [`StepOutcome`](crate::explore::StepOutcome)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleCapture {
    /// Per-strategy decisions.
    pub strategy: StrategyCapture,
    /// Driver threads of the campaign.
    pub threads: usize,
    /// Scheduler timing knobs in effect.
    pub tuning: SyncTuning,
    /// Cache-eviction agitator interval (µs, 0 = off).
    pub eviction_interval_us: u64,
    /// Whether the campaign ran under the eADR failure model.
    pub eadr: bool,
    /// Campaign deadline (hang detection).
    pub deadline: Duration,
    /// Extra whitelist rules in effect.
    pub extra_whitelist: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_compare_structurally() {
        let a = ScheduleCapture {
            strategy: StrategyCapture::Pmrace {
                plan: PlanCapture {
                    off: 64,
                    load_sites: vec!["l".to_owned()],
                    store_sites: vec!["s".to_owned()],
                    cas_sites: Vec::new(),
                },
                rng_seed: 7,
                skips: vec![("l".to_owned(), 2)],
                events: vec![EventCapture {
                    is_load: false,
                    site: "s".to_owned(),
                    tid: 0,
                }],
                truncated: false,
            },
            threads: 2,
            tuning: SyncTuning::default(),
            eviction_interval_us: 0,
            eadr: false,
            deadline: Duration::from_millis(400),
            extra_whitelist: Vec::new(),
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(
            ScheduleCapture {
                strategy: StrategyCapture::None,
                ..b
            },
            a
        );
    }
}

//! PMRace fuzzer core: PM-aware coverage-guided fuzzing for concurrent PM
//! programs (the paper's primary contribution, §4).
//!
//! The pipeline, end to end:
//!
//! 1. [`mutator`] generates structured operation seeds (§4.5): sequences of
//!    valid store operations distributed over driver threads, evolved with
//!    the five strategies (mutation, addition, deletion, shuffling,
//!    merging), similar-key prioritization, and an insert-population
//!    fallback that triggers resizing. [`textgen`] is the AFL++-style byte
//!    mutator baseline for the Table 4 comparison.
//! 2. [`campaign`] executes one fuzz campaign: a fresh (or
//!    checkpoint-restored, [`checkpoint`]) pool, a
//!    [`Session`](pmrace_runtime::Session) with checkers armed, four driver
//!    threads issuing the seed's operations through the target, an
//!    interleaving strategy installed.
//! 3. [`explore`] drives the three exploration tiers (§4.2.3): repeat
//!    executions while coverage grows, then switch interleaving (one entry
//!    of the shared-access priority queue at a time, Fig. 6 scheduling),
//!    then switch seed.
//! 4. [`validate`] re-runs the target's recovery against the crash image
//!    captured at each detection point and classifies findings as bugs or
//!    false positives (§4.4).
//! 5. [`bugs`] deduplicates findings into unique bugs (per writing store
//!    instruction / sync variable) and accumulates every statistic the
//!    evaluation tables report.
//! 6. [`fuzzer`] ties it together, including concurrent fuzzing workers
//!    (§5) and the timelines behind Figs. 8–10; [`fleet`] is the plumbing
//!    those workers share — the wait-free coverage frontier, the sharded
//!    cross-worker seed pool, and the signature-striped ledger front.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bugs;
pub mod campaign;
pub mod checkpoint;
pub mod corpus;
pub mod explore;
pub mod fleet;
pub mod fuzzer;
pub mod mutator;
pub mod pipeline;
pub mod report_io;
pub mod schedule;
pub mod seed;
pub mod textgen;
pub mod validate;

pub use bugs::{BugKind, DetectionStats, IngestDelta, IngestPlan, Ledger, UniqueBug};
pub use campaign::{run_campaign, CampaignConfig, CampaignResult, StrategyKind};
pub use fleet::{SharedCorpus, SharedLedger};
pub use fuzzer::{FuzzConfig, FuzzReport, Fuzzer, RecordSink};
pub use mutator::OpMutator;
pub use schedule::{EventCapture, PlanCapture, ScheduleCapture, StrategyCapture};
pub use seed::Seed;
pub use validate::{set_validation_cache, validation_cache_enabled, Verdict};

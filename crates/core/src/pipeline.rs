//! Pipelined campaign execution: the bounded hand-off queue between exec
//! workers and the validator pool.
//!
//! Post-failure validation (§4.3's recovery-and-recheck sessions) is the
//! only stage of a campaign that is *work the fuzzer does about results*
//! rather than work that produces them. Running it inline on the exec
//! thread serializes recovery sessions with the next campaign's schedule
//! exploration; handing completed campaigns to a small validator pool lets
//! exec threads go straight back to fuzzing while verdicts are computed
//! concurrently — the same split the paper gets for free by validating in
//! a separate process.
//!
//! The queue is deliberately *bounded* and its producer side *non-blocking*:
//! an exec worker that finds the queue full validates inline (counted as
//! `pipeline.backpressure`) instead of stalling. Validators can therefore
//! never be a new bottleneck — the pipeline degrades to exactly the old
//! inline behaviour under overload, and is bypassed entirely (no queue, no
//! threads) when the fleet has a single worker and determinism matters.

use std::collections::VecDeque;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::bugs::IngestPlan;
use crate::explore::StepOutcome;

/// A completed campaign whose fresh findings await validation: the ingest
/// plan minted by [`SharedLedger::begin_ingest`](crate::fleet::SharedLedger)
/// (dedup already done, signatures already claimed) plus the full step
/// outcome the verdicts will be folded back against.
#[derive(Debug)]
pub struct ValidationJob {
    /// Phase-1 ingest plan; the validator runs phase 2 (`validate`) and
    /// phase 3 (`finish_ingest`).
    pub plan: IngestPlan,
    /// The campaign outcome the plan was minted from.
    pub out: StepOutcome,
    /// When the exec worker enqueued the job (feeds `pipeline.queue_ns`).
    pub enqueued_at: Instant,
}

/// Bounded multi-producer/multi-consumer hand-off queue.
///
/// Hand-rolled on `parking_lot` instead of `std::sync::mpsc` because the
/// producer side must be non-blocking *with item give-back* (a full queue
/// returns the job so the exec worker can validate it inline) and the
/// consumer side must drain remaining items after close — `mpsc::SyncSender`
/// offers neither without cloning jobs.
#[derive(Debug)]
pub struct HandoffQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled on push and close; poppers wait on it.
    ready: Condvar,
    /// Signalled when a consumer finishes a job; [`HandoffQueue::wait_idle`]
    /// waits on it.
    idle: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct State<T> {
    buf: VecDeque<T>,
    /// Jobs popped but not yet marked done ([`HandoffQueue::job_done`]).
    in_flight: usize,
    closed: bool,
}

impl<T> HandoffQueue<T> {
    /// Queue holding at most `cap` items (minimum 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        HandoffQueue {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap),
                in_flight: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
            cap,
        }
    }

    /// Non-blocking push. Returns the item back when the queue is full or
    /// already closed — the caller then processes it inline.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        if state.closed || state.buf.len() >= self.cap {
            return Err(item);
        }
        state.buf.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop: waits until an item arrives or the queue is closed
    /// *and* drained. `None` means no item will ever arrive again.
    ///
    /// A popped item counts as *in flight* until the consumer calls
    /// [`HandoffQueue::job_done`]; [`HandoffQueue::wait_idle`] observes
    /// both the buffer and the in-flight count.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.buf.pop_front() {
                state.in_flight += 1;
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.ready.wait(&mut state);
        }
    }

    /// Mark one previously popped item as fully processed.
    pub fn job_done(&self) {
        let mut state = self.state.lock();
        state.in_flight = state.in_flight.saturating_sub(1);
        let idle = state.buf.is_empty() && state.in_flight == 0;
        drop(state);
        if idle {
            self.idle.notify_all();
        }
    }

    /// Block until the queue is empty *and* every popped item has been
    /// marked done. This is the single-worker determinism mode: the exec
    /// worker pushes one job and waits for the validator to finish it, so
    /// validation still crosses threads (exercising the deferred path) but
    /// never overlaps the next campaign's execution — run results stay
    /// byte-identical to the inline path.
    pub fn wait_idle(&self) {
        let mut state = self.state.lock();
        while !(state.buf.is_empty() && state.in_flight == 0) {
            self.idle.wait(&mut state);
        }
    }

    /// Close the queue: pushes start failing, poppers drain what is left
    /// and then observe `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (racy level gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_is_preserved() {
        let q = HandoffQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.depth(), 5);
        let got: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_gives_the_item_back() {
        let q = HandoffQueue::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert_eq!(q.push('c'), Err('c'), "over capacity: inline fallback");
        assert_eq!(q.pop(), Some('a'));
        q.push('c').unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = HandoffQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue rejects new work");
        assert_eq!(q.pop(), Some(1), "queued work survives close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed: consumers exit");
    }

    #[test]
    fn wait_idle_covers_in_flight_jobs() {
        let q = std::sync::Arc::new(HandoffQueue::<u32>::new(4));
        let finished = std::sync::Arc::new(AtomicUsize::new(0));
        let consumer = {
            let (q, finished) = (std::sync::Arc::clone(&q), std::sync::Arc::clone(&finished));
            std::thread::spawn(move || {
                while let Some(v) = q.pop() {
                    // Simulate validation work after the pop: wait_idle
                    // must not return while this is still running.
                    std::thread::sleep(std::time::Duration::from_millis(u64::from(v)));
                    finished.fetch_add(1, Ordering::SeqCst);
                    q.job_done();
                }
            })
        };
        for _ in 0..3 {
            q.push(5).unwrap();
            q.wait_idle();
            assert_eq!(q.depth(), 0);
        }
        assert_eq!(
            finished.load(Ordering::SeqCst),
            3,
            "wait_idle returned with a job still in flight"
        );
        q.close();
        consumer.join().unwrap();
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = std::sync::Arc::new(HandoffQueue::<u32>::new(4));
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (q, done) = (std::sync::Arc::clone(&q), std::sync::Arc::clone(&done));
                std::thread::spawn(move || {
                    while q.pop().is_some() {}
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        q.push(7).unwrap();
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 3, "every consumer unblocked");
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PER_PRODUCER: usize = 500;
        let q = std::sync::Arc::new(HandoffQueue::<usize>::new(4));
        let consumed = std::sync::Arc::new(AtomicUsize::new(0));
        let inline = std::sync::Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let (q, consumed) = (std::sync::Arc::clone(&q), std::sync::Arc::clone(&consumed));
                std::thread::spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..3)
            .map(|_| {
                let (q, inline) = (std::sync::Arc::clone(&q), std::sync::Arc::clone(&inline));
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        if q.push(i).is_err() {
                            // Backpressure: the producer handles it itself.
                            inline.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(
            consumed.load(Ordering::SeqCst) + inline.load(Ordering::SeqCst),
            3 * PER_PRODUCER,
            "every item either consumed or handled inline"
        );
    }
}

//! Post-failure validation (§4.4).
//!
//! Each detected inconsistency carries a crash image capturing its crash
//! point: the durable side effect persisted, the dependent non-persisted
//! data lost. Validation restarts the target on that image, runs its
//! recovery code under a fresh session, and checks whether recovery healed
//! the state:
//!
//! - *Inter/intra inconsistency*: benign iff **all** bytes of the recorded
//!   durable side effect were overwritten during recovery (e.g. memcached's
//!   index rebuild rewriting `next`/`prev`).
//! - *Sync inconsistency*: benign iff the annotated variable was restored
//!   to its annotated initial value.
//!
//! Whitelisted detections (PMDK transactional allocation, checksum-guarded
//! regions) are classified without running recovery.
//!
//! # Verdict memoization
//!
//! Recovery executions dominate validation cost, and campaigns keep
//! re-detecting the same inconsistency at the same crash state. Verdicts
//! are therefore memoized in a process-global striped cache keyed by the
//! validation inputs: the target, the record's effect identity, and the
//! crash image's content key (base-image id + overlay hash — equal keys
//! imply identical surviving bytes). A cache hit skips the recovery
//! execution entirely; since a verdict is a pure function of its key, the
//! cache can never change *which* bugs are reported, only how often
//! recovery runs ([`set_validation_cache`] turns it off for A/B tests).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;
use pmrace_api::TargetSpec;
use pmrace_pmem::Pool;
use pmrace_runtime::report::{InconsistencyRecord, SyncUpdateRecord};
use pmrace_runtime::whitelist::Whitelist;
use pmrace_runtime::{RtError, Session, SessionConfig};
use pmrace_telemetry as telemetry;

/// Classification of a detected inconsistency after validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Survived validation: reported as a bug.
    Bug,
    /// Recovery healed the state: false positive (automatically filtered).
    ValidatedFp,
    /// A whitelist rule matched: false positive by declaration.
    WhitelistedFp,
    /// No crash image was captured (budget); cannot be validated.
    Unvalidated,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Bug => "bug",
            Verdict::ValidatedFp => "validated false positive",
            Verdict::WhitelistedFp => "whitelisted false positive",
            Verdict::Unvalidated => "unvalidated",
        };
        f.write_str(s)
    }
}

/// Whether verdict memoization is active (default: on).
static CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable the process-global validation verdict cache.
///
/// Verdicts are deterministic in their cache key, so toggling this changes
/// recovery-execution volume but never the reported bug set
/// (`tests/determinism.rs` pins that contract).
pub fn set_validation_cache(enabled: bool) {
    CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the validation verdict cache is currently enabled.
#[must_use]
pub fn validation_cache_enabled() -> bool {
    CACHE_ENABLED.load(Ordering::Relaxed)
}

const CACHE_STRIPES: usize = 16;
/// Per-stripe entry bound; a full stripe is cleared (verdicts are
/// recomputable, so eviction is only a perf event, never a correctness
/// one).
const CACHE_STRIPE_CAPACITY: usize = 4096;

/// Exact validation inputs (no lossy hashing: a key collision could
/// otherwise return the wrong verdict and silently change the bug set).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    Incons {
        target: &'static str,
        effect_off: u64,
        effect_len: usize,
        image: (u64, u64),
    },
    Sync {
        target: &'static str,
        var_off: u64,
        expected_init: u64,
        image: (u64, u64),
    },
}

struct VerdictCache {
    stripes: Vec<Mutex<HashMap<CacheKey, Verdict>>>,
}

fn cache() -> &'static VerdictCache {
    static CACHE: OnceLock<VerdictCache> = OnceLock::new();
    CACHE.get_or_init(|| VerdictCache {
        stripes: (0..CACHE_STRIPES).map(|_| Mutex::default()).collect(),
    })
}

fn stripe_of(key: &CacheKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % CACHE_STRIPES as u64) as usize
}

/// Look up a memoized verdict, counting the hit/miss.
fn cache_get(key: &CacheKey) -> Option<Verdict> {
    let hit = cache().stripes[stripe_of(key)].lock().get(key).copied();
    telemetry::add(
        match hit {
            Some(_) => telemetry::Counter::ValidateCacheHit,
            None => telemetry::Counter::ValidateCacheMiss,
        },
        1,
    );
    hit
}

fn cache_put(key: CacheKey, verdict: Verdict) {
    let mut stripe = cache().stripes[stripe_of(&key)].lock();
    if stripe.len() >= CACHE_STRIPE_CAPACITY {
        stripe.clear();
    }
    stripe.insert(key, verdict);
}

fn recovery_session(pool: Arc<Pool>) -> Arc<Session> {
    Session::new(
        pool,
        SessionConfig {
            deadline: Duration::from_millis(500),
            capture_crash_images: false,
            max_crash_images: 0,
            whitelist: Whitelist::empty(),
            trace_depth: 0,
            ..SessionConfig::default()
        },
    )
}

/// Record a validation run and its verdict in the telemetry registry.
fn tally(verdict: Verdict) -> Verdict {
    use telemetry::Counter as C;
    telemetry::add(C::ValidateRuns, 1);
    let per_verdict = match verdict {
        Verdict::Bug => C::ValidateBugs,
        Verdict::ValidatedFp => C::ValidateFps,
        Verdict::WhitelistedFp => C::ValidateWhitelistedFps,
        Verdict::Unvalidated => C::ValidateUnvalidated,
    };
    telemetry::add(per_verdict, 1);
    verdict
}

/// Validate one inter-/intra-thread inconsistency.
///
/// Consults the verdict cache first: a hit skips the recovery execution
/// (`validate.cache_hit`); only misses run recovery and count toward
/// `validate.runs`. Whitelisted and image-less records bypass the cache —
/// they are already O(1) to classify.
#[must_use]
pub fn validate_inconsistency(spec: &TargetSpec, rec: &InconsistencyRecord) -> Verdict {
    let _span = telemetry::span(telemetry::Phase::Validation);
    let key = (validation_cache_enabled() && !rec.whitelisted && rec.effect_len != 0)
        .then_some(rec.crash_image.as_deref())
        .flatten()
        .map(|img| CacheKey::Incons {
            target: spec.name,
            effect_off: rec.effect_off,
            effect_len: rec.effect_len,
            image: img.cache_key(),
        });
    if let Some(key) = &key {
        if let Some(verdict) = cache_get(key) {
            return verdict;
        }
    }
    let verdict = tally(validate_inconsistency_impl(spec, rec));
    if let Some(key) = key {
        cache_put(key, verdict);
    }
    verdict
}

fn validate_inconsistency_impl(spec: &TargetSpec, rec: &InconsistencyRecord) -> Verdict {
    if rec.whitelisted {
        return Verdict::WhitelistedFp;
    }
    let Some(img) = rec.crash_image.as_deref() else {
        return Verdict::Unvalidated;
    };
    if rec.effect_len == 0 {
        // External output: nothing recovery could overwrite.
        return Verdict::Bug;
    }
    let Ok(pool) = Pool::from_crash_image(img) else {
        return Verdict::Unvalidated;
    };
    let session = recovery_session(Arc::new(pool));
    match (spec.recover)(&session) {
        Ok(_) => {}
        Err(RtError::Timeout | RtError::Halted) => return Verdict::Bug, // recovery hangs
        Err(_) => return Verdict::Bug, // recovery cannot proceed from this image
    }
    let stored = session.stored_granules();
    let first = rec.effect_off / 8 * 8;
    let last = (rec.effect_off + rec.effect_len as u64 - 1) / 8 * 8;
    let mut g = first;
    while g <= last {
        if !stored.contains(&g) {
            return Verdict::Bug;
        }
        g += 8;
    }
    Verdict::ValidatedFp
}

/// Validate one synchronization inconsistency.
///
/// Cache-assisted like [`validate_inconsistency`]; only records carrying a
/// crash image are memoizable.
#[must_use]
pub fn validate_sync(spec: &TargetSpec, rec: &SyncUpdateRecord) -> Verdict {
    let _span = telemetry::span(telemetry::Phase::Validation);
    let key = validation_cache_enabled()
        .then_some(rec.crash_image.as_deref())
        .flatten()
        .map(|img| CacheKey::Sync {
            target: spec.name,
            var_off: rec.var_off,
            expected_init: rec.expected_init,
            image: img.cache_key(),
        });
    if let Some(key) = &key {
        if let Some(verdict) = cache_get(key) {
            return verdict;
        }
    }
    let verdict = tally(validate_sync_impl(spec, rec));
    if let Some(key) = key {
        cache_put(key, verdict);
    }
    verdict
}

fn validate_sync_impl(spec: &TargetSpec, rec: &SyncUpdateRecord) -> Verdict {
    let Some(img) = rec.crash_image.as_deref() else {
        return Verdict::Unvalidated;
    };
    let Ok(pool) = Pool::from_crash_image(img) else {
        return Verdict::Unvalidated;
    };
    let pool = Arc::new(pool);
    let session = recovery_session(Arc::clone(&pool));
    match (spec.recover)(&session) {
        Ok(_) => {}
        Err(RtError::Timeout | RtError::Halted) => return Verdict::Bug,
        Err(_) => return Verdict::Bug,
    }
    match pool.load_u64(rec.var_off) {
        Ok((v, _)) if v == rec.expected_init => Verdict::ValidatedFp,
        Ok(_) => Verdict::Bug,
        Err(_) => Verdict::Unvalidated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::seed::Seed;
    use pmrace_targets::{target_spec, Op};

    /// P-CLHT resize produces the Bug 3 intra inconsistency; its durable
    /// side effect (the GC log) is not overwritten during recovery.
    #[test]
    fn pclht_gc_log_inconsistency_is_a_bug() {
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let seed = Seed::from_flat(&ops, 1);
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        let rec = res
            .findings
            .inconsistencies
            .iter()
            .find(|i| pmrace_runtime::site_label(i.effect_site).contains("gc_log"))
            .expect("bug 3 must be detected by a resize-heavy workload");
        assert_eq!(validate_inconsistency(&spec, rec), Verdict::Bug);
    }

    /// P-CLHT's resize_lock is reinitialized by recovery: validated FP.
    /// The bucket lock is not: bug 2.
    #[test]
    fn pclht_sync_validation_separates_fp_from_bug() {
        let spec = target_spec("P-CLHT").unwrap();
        let ops: Vec<Op> = (1..=130u64)
            .map(|k| Op::Insert { key: k, value: k })
            .collect();
        let seed = Seed::from_flat(&ops, 1);
        let cfg = CampaignConfig {
            threads: 1,
            deadline: Duration::from_secs(5),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        let resize = res
            .findings
            .sync_updates
            .iter()
            .find(|u| u.var_name == "clht.resize_lock")
            .expect("resize lock update recorded");
        assert_eq!(validate_sync(&spec, resize), Verdict::ValidatedFp);
        let bucket = res
            .findings
            .sync_updates
            .iter()
            .find(|u| u.var_name == "clht.bucket_lock")
            .expect("bucket lock update recorded");
        assert_eq!(validate_sync(&spec, bucket), Verdict::Bug);
    }

    /// memcached's recovery rebuilds LRU links, validating link-field
    /// inconsistencies as false positives.
    #[test]
    fn memkv_link_field_effects_are_validated_fps() {
        let spec = target_spec("memcached-pmem").unwrap();
        // Interleave hot-key sets and gets over 4 threads so LRU link
        // stores race with link reads.
        let ops: Vec<Op> = (0..60)
            .map(|i| {
                if i % 3 == 0 {
                    Op::Insert {
                        key: 1 + i % 5,
                        value: i,
                    }
                } else {
                    Op::Get { key: 1 + i % 5 }
                }
            })
            .collect();
        let seed = Seed::from_flat(&ops, 4);
        let mut fp = 0;
        let mut checked = 0;
        for round in 0..8 {
            let _ = round;
            let res = run_campaign(&spec, &seed, &CampaignConfig::default(), None, None).unwrap();
            for rec in &res.findings.inconsistencies {
                let label = pmrace_runtime::site_label(rec.effect_site);
                if label.contains("store_p_next") || label.contains("store_n_prev") {
                    checked += 1;
                    if validate_inconsistency(&spec, rec) == Verdict::ValidatedFp {
                        fp += 1;
                    }
                }
            }
            if checked > 0 {
                break;
            }
        }
        if checked > 0 {
            assert!(
                fp > 0,
                "at least one link-field inconsistency validates as FP"
            );
        }
    }

    #[test]
    fn whitelisted_records_skip_recovery() {
        let spec = target_spec("clevel").unwrap();
        let seed = Seed::from_flat(&[Op::Insert { key: 1, value: 1 }], 1);
        let res = run_campaign(&spec, &seed, &CampaignConfig::default(), None, None).unwrap();
        let rec = res
            .findings
            .inconsistencies
            .iter()
            .find(|i| i.whitelisted)
            .expect("clevel construction raises whitelisted inconsistencies");
        assert_eq!(validate_inconsistency(&spec, rec), Verdict::WhitelistedFp);
    }
}
